"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to this legacy path (``--no-use-pep517``
implied when wheel metadata preparation is unavailable); all real
configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
