"""Exact-math tests of the ExperimentResults derivations using a
hand-built results object (no simulation involved)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentResults
from repro.experiments.figures import (
    figure3_error_by_benchmark,
    figure4_good_skeletons,
    figure7_baselines,
)


@pytest.fixture
def results():
    """Two benchmarks, one skeleton size, two scenarios — numbers
    chosen so every derived quantity is computable by hand."""
    return ExperimentResults(
        config={
            "benchmarks": ["aa", "bb"],
            "skeleton_targets": [2.0],
            "klass": "B",
            "nprocs": 4,
        },
        scenario_names=["s1", "s2"],
        apps={
            "aa": {
                "dedicated": 100.0,
                "mpi_percent": 10.0,
                "compute_percent": 90.0,
                "scenarios": {"s1": 150.0, "s2": 200.0},
            },
            "bb": {
                "dedicated": 50.0,
                "mpi_percent": 40.0,
                "compute_percent": 60.0,
                "scenarios": {"s1": 100.0, "s2": 50.0},
            },
        },
        skeletons={
            # aa skeleton: dedicated 2.0 -> ratio 50; probes chosen to
            # give exact predictions.
            "aa": {
                "2": {
                    "K": 50.0, "threshold": 0.0, "compression_ratio": 10.0,
                    "dedicated": 2.0, "mpi_percent": 10.0,
                    "compute_percent": 90.0, "min_good": 1.0,
                    "flagged": False,
                    "scenarios": {"s1": 3.3, "s2": 4.0},
                },
            },
            "bb": {
                "2": {
                    "K": 25.0, "threshold": 0.05, "compression_ratio": 5.0,
                    "dedicated": 2.5, "mpi_percent": 42.0,
                    "compute_percent": 58.0, "min_good": 3.0,
                    "flagged": True,
                    "scenarios": {"s1": 5.0, "s2": 2.4},
                },
            },
        },
        class_s={
            "aa": {"dedicated": 1.0, "scenarios": {"s1": 1.2, "s2": 4.0}},
            "bb": {"dedicated": 0.5, "scenarios": {"s1": 1.5, "s2": 0.5}},
        },
    )


class TestSkeletonErrorMath:
    def test_exact_prediction_zero_error(self, results):
        # aa: ratio = 100/2 = 50; prediction s2 = 4.0*50 = 200 = actual.
        assert results.skeleton_error("aa", 2.0, "s2") == pytest.approx(0.0)

    def test_known_error(self, results):
        # aa s1: prediction = 3.3*50 = 165 vs actual 150 -> 10%.
        assert results.skeleton_error("aa", 2.0, "s1") == pytest.approx(10.0)

    def test_bb_errors(self, results):
        # bb: ratio = 50/2.5 = 20; s1: 5*20=100 = actual -> 0%;
        # s2: 2.4*20=48 vs 50 -> 4%.
        assert results.skeleton_error("bb", 2.0, "s1") == pytest.approx(0.0)
        assert results.skeleton_error("bb", 2.0, "s2") == pytest.approx(4.0)

    def test_avg_error(self, results):
        assert results.skeleton_avg_error("aa", 2.0) == pytest.approx(5.0)


class TestBaselineMath:
    def test_class_s_error(self, results):
        # aa: ratio = 100/1 = 100; s1: 1.2*100=120 vs 150 -> 20%.
        assert results.class_s_error("aa", "s1") == pytest.approx(20.0)
        # s2: 4*100=400 vs 200 -> 100%.
        assert results.class_s_error("aa", "s2") == pytest.approx(100.0)

    def test_average_prediction_error(self, results):
        # s1 slowdowns: aa 1.5, bb 2.0 -> mean 1.75.
        # aa prediction: 100*1.75=175 vs 150 -> 16.667%.
        assert results.average_prediction_error("aa", "s1") == pytest.approx(
            100 * 25 / 150
        )
        # bb prediction: 50*1.75=87.5 vs 100 -> 12.5%.
        assert results.average_prediction_error("bb", "s1") == pytest.approx(12.5)


class TestFigureBuilders:
    def test_fig3_numbers(self, results):
        table = figure3_error_by_benchmark(results)
        rows = {row[0]: row[1:] for row in table.rows}
        assert rows["AA"][0] == pytest.approx(5.0)
        assert rows["BB"][0] == pytest.approx(2.0)
        assert rows["Average"][0] == pytest.approx(3.5)

    def test_fig4_flags(self, results):
        table = figure4_good_skeletons(results)
        rows = {row[0]: row for row in table.rows}
        assert rows["AA"][2] == "-"        # min_good 1.0 < target 2.0
        assert "2 s" in rows["BB"][2]      # min_good 3.0 > target 2.0

    def test_fig7_rows(self, results):
        table = figure7_baselines(results, scenario="s2")
        methods = [row[0] for row in table.rows]
        assert methods == ["2 s skeleton", "Class S", "Average"]
        skel_row = table.rows[0]
        # errors: aa 0%, bb 4% -> min 0, avg 2, max 4.
        assert skel_row[1] == pytest.approx(0.0)
        assert skel_row[2] == pytest.approx(2.0)
        assert skel_row[3] == pytest.approx(4.0)

    def test_round_trip_serialisation(self, results):
        loaded = ExperimentResults.from_json(results.to_json())
        assert loaded.apps == results.apps
        assert loaded.skeleton_error("aa", 2.0, "s1") == pytest.approx(10.0)
