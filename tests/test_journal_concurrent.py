"""Concurrent-writer safety of the campaign journal.

Multiple processes appending to one journal file must never interleave
bytes mid-line (each entry goes out in a single ``write`` on an
``O_APPEND`` descriptor), and a subsequent load must recover the union
of everything all writers recorded.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.experiments.journal import CampaignJournal

N_WRITERS = 4
N_ENTRIES = 200


def _writer(path: str, writer_id: int, n_entries: int) -> None:
    journal = CampaignJournal(path)
    # A long filler value makes entries span several pipe/page sizes,
    # so torn writes would be caught if they could happen.
    filler = f"w{writer_id}" * 200
    for i in range(n_entries):
        journal.record(
            f"writer-{writer_id}::entry::{i}",
            {"status": "ok", "writer": writer_id, "i": i, "filler": filler},
        )
    journal.close()


@pytest.fixture(scope="module")
def hammered_journal(tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "campaign.jsonl"
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    procs = [
        ctx.Process(target=_writer, args=(str(path), w, N_ENTRIES))
        for w in range(N_WRITERS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    return path


class TestConcurrentWriters:
    def test_every_line_is_valid_json(self, hammered_journal):
        lines = hammered_journal.read_text().splitlines()
        assert len(lines) == N_WRITERS * N_ENTRIES
        for line in lines:
            obj = json.loads(line)  # raises on any torn/interleaved line
            assert obj["status"] == "ok"

    def test_load_recovers_the_union(self, hammered_journal):
        entries = CampaignJournal(hammered_journal).load()
        assert len(entries) == N_WRITERS * N_ENTRIES
        for w in range(N_WRITERS):
            for i in range(N_ENTRIES):
                entry = entries[f"writer-{w}::entry::{i}"]
                assert entry["writer"] == w
                assert entry["i"] == i


class TestJournalSemantics:
    def test_last_entry_wins(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.record("k", {"status": "failed"})
        journal.record("k", {"status": "ok"})
        journal.close()
        assert journal.load()["k"]["status"] == "ok"

    def test_corrupt_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.record("good", {"status": "ok"})
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn", "status"')  # kill mid-write
        entries = CampaignJournal(path).load()
        assert set(entries) == {"good"}

    def test_two_handles_same_file_append(self, tmp_path):
        path = tmp_path / "j.jsonl"
        a, b = CampaignJournal(path), CampaignJournal(path)
        a.record("a", {"status": "ok"})
        b.record("b", {"status": "ok"})
        a.record("a2", {"status": "ok"})
        a.close()
        b.close()
        assert set(CampaignJournal(path).load()) == {"a", "b", "a2"}
