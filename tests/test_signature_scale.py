"""Signature data-model and scaling (§3.3) tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scale import ScaledSignature, naive_comm_scaler, scale_signature
from repro.core.signature import (
    EventStats,
    LoopNode,
    RankSignature,
    Signature,
)
from repro.errors import SignatureError, SkeletonError


def leaf(call="MPI_Send", peer=1, nbytes=1000.0, gap=0.01, tag=0):
    return EventStats(
        call=call, peer=peer, tag=tag, nreqs=0,
        mean_bytes=nbytes, mean_gap=gap, mean_duration=1e-4,
        count=1, gap_samples=[gap],
    )


def sig_with(nodes, nranks=1):
    ranks = [RankSignature(rank=r, nodes=list(nodes)) for r in range(nranks)]
    return Signature(
        program_name="t", nranks=nranks, ranks=ranks,
        threshold=0.0, compression_ratio=1.0, trace_events=10,
    )


class TestSignatureModel:
    def test_loop_requires_positive_count(self):
        with pytest.raises(SignatureError):
            LoopNode(body=[leaf()], count=0)

    def test_loop_requires_body(self):
        with pytest.raises(SignatureError):
            LoopNode(body=[], count=3)

    def test_expanded_length(self):
        loop = LoopNode(body=[leaf(), leaf()], count=5)
        rank = RankSignature(rank=0, nodes=[leaf(), loop])
        assert rank.expanded_length() == 1 + 10
        assert rank.n_leaves() == 3

    def test_total_time_multiplies_counts(self):
        loop = LoopNode(body=[leaf(gap=0.1)], count=4)
        rank = RankSignature(rank=0, nodes=[loop], tail_gap=0.5)
        assert rank.total_time() == pytest.approx(4 * (0.1 + 1e-4) + 0.5)

    def test_iter_loops_reports_total_reps(self):
        inner = LoopNode(body=[leaf()], count=3)
        outer = LoopNode(body=[inner], count=5)
        rank = RankSignature(rank=0, nodes=[outer])
        reps = {id(l): r for l, r in rank.iter_loops()}
        assert reps[id(outer)] == 5
        assert reps[id(inner)] == 15

    def test_merge_incompatible_leaves_rejected(self):
        with pytest.raises(SignatureError):
            leaf(peer=1).merged_with(leaf(peer=2))

    def test_merge_weighted_average(self):
        a, b = leaf(nbytes=100.0, gap=0.1), leaf(nbytes=300.0, gap=0.3)
        b.count = 3
        b.gap_samples = [0.3, 0.3, 0.3]
        m = a.merged_with(b)
        assert m.count == 4
        assert m.mean_bytes == pytest.approx((100 + 3 * 300) / 4)
        assert m.mean_gap == pytest.approx((0.1 + 3 * 0.3) / 4)

    def test_rank_count_mismatch_rejected(self):
        with pytest.raises(SignatureError):
            Signature(
                program_name="t", nranks=2,
                ranks=[RankSignature(rank=0)],
                threshold=0.0, compression_ratio=1.0, trace_events=1,
            )


class TestScaling:
    def test_k_below_one_rejected(self):
        with pytest.raises(SkeletonError):
            scale_signature(sig_with([leaf()]), 0.5)

    def test_loop_division_exact(self):
        """n divisible by K: count just divides, no remainder ops."""
        loop = LoopNode(body=[leaf()], count=100)
        scaled = scale_signature(sig_with([loop]), 10.0)
        nodes = scaled.ranks[0].nodes
        assert len(nodes) == 1
        assert isinstance(nodes[0], LoopNode)
        assert nodes[0].count == 10

    def test_loop_division_with_remainder(self):
        """n = 25, K = 10 -> loop of 2 plus a 0.5-scale remainder copy."""
        loop = LoopNode(body=[leaf(nbytes=1000.0, gap=0.2)], count=25)
        scaled = scale_signature(sig_with([loop]), 10.0)
        nodes = scaled.ranks[0].nodes
        assert isinstance(nodes[0], LoopNode) and nodes[0].count == 2
        rem = nodes[1]
        assert isinstance(rem, EventStats)
        assert rem.mean_bytes == pytest.approx(500.0)
        assert rem.mean_gap == pytest.approx(0.1)

    def test_loop_smaller_than_k_fully_scaled(self):
        loop = LoopNode(body=[leaf(nbytes=1000.0, gap=0.4)], count=4)
        scaled = scale_signature(sig_with([loop]), 8.0)
        nodes = scaled.ranks[0].nodes
        assert len(nodes) == 1
        assert isinstance(nodes[0], EventStats)
        assert nodes[0].mean_gap == pytest.approx(0.4 * 4 / 8)

    def test_singleton_ops_scaled_down(self):
        """Unreduced single ops: compute /K and bytes /K (§3.3 step 3)."""
        scaled = scale_signature(sig_with([leaf(nbytes=8000.0, gap=0.8)]), 8.0)
        node = scaled.ranks[0].nodes[0]
        assert node.mean_bytes == pytest.approx(1000.0)
        assert node.mean_gap == pytest.approx(0.1)

    def test_identical_run_group_collapse(self):
        """Step 2: m identical unreduced ops with m = q*K + r become q
        full ops plus one r/K-scale op."""
        leaves = [leaf(nbytes=100.0, gap=0.1) for _ in range(7)]
        scaled = scale_signature(sig_with(leaves), 3.0)
        nodes = scaled.ranks[0].nodes
        # 7 = 2*3 + 1 -> two full + one 1/3 scale.
        assert len(nodes) == 3
        assert nodes[0].mean_bytes == pytest.approx(100.0)
        assert nodes[1].mean_bytes == pytest.approx(100.0)
        assert nodes[2].mean_bytes == pytest.approx(100.0 / 3)

    def test_total_work_scales_by_k(self):
        """The scaled signature's serial time estimate is ~1/K of the
        original when K divides the counts."""
        loop = LoopNode(body=[leaf(gap=0.05), leaf(gap=0.02, peer=2)], count=200)
        original = sig_with([loop])
        K = 20.0
        scaled = scale_signature(original, K)
        assert scaled.estimate == pytest.approx(
            original.ranks[0].total_time() / K, rel=1e-6
        )

    def test_tail_gap_scaled(self):
        sig = sig_with([leaf()])
        sig.ranks[0].tail_gap = 1.0
        scaled = scale_signature(sig, 4.0)
        assert scaled.ranks[0].tail_gap == pytest.approx(0.25)

    def test_nested_loops_kept_per_iteration(self):
        inner = LoopNode(body=[leaf()], count=7)
        outer = LoopNode(body=[inner, leaf(peer=2)], count=50)
        scaled = scale_signature(sig_with([outer]), 10.0)
        out_loop = scaled.ranks[0].nodes[0]
        assert out_loop.count == 5
        # The inner loop still runs 7 times per outer iteration.
        assert out_loop.body[0].count == 7

    def test_custom_comm_scaler_applied(self):
        calls = []

        def scaler(lf, fraction):
            calls.append(fraction)
            return 42.0

        scaled = scale_signature(sig_with([leaf(nbytes=1000.0)]), 4.0,
                                 comm_scaler=scaler)
        assert scaled.ranks[0].nodes[0].mean_bytes == 42.0
        assert calls == [0.25]


@settings(max_examples=60, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=500),
    K=st.integers(min_value=1, max_value=100),
)
def test_scaled_loop_mass_conserved(count, K):
    """For any loop count and integer K, the scaled loop represents
    count/K iterations' worth of work (within the dropped-dust
    tolerance)."""
    loop = LoopNode(body=[leaf(gap=1.0)], count=count)
    original = sig_with([loop])
    scaled = scale_signature(original, float(K))
    expected = original.ranks[0].total_time() / K
    assert scaled.ranks[0].total_time() == pytest.approx(expected, rel=1e-6)
