"""Dendrogram-search equivalence pins (the byte-identity contract).

The dendrogram threshold search exists purely as an execution strategy:
for every trace and every option set it must pick the same threshold
and produce the same signature — byte-identical through the store's
canonical JSON encoding — as the paper-literal linear sweep. These
tests pin that contract on all six NAS Class S workloads and on
hand-built edge-case traces; tests/test_compress_property.py fuzzes it
(tier2).
"""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.core.compress import CompressionOptions, compress_trace
from repro.core.sigio import signature_to_dict
from repro.store import canonical_json
from repro.trace import trace_program
from repro.trace.records import Trace, TraceRecord
from repro.workloads import get_program

NAS_BENCHMARKS = ("bt", "cg", "is", "lu", "mg", "sp")

#: Targets spanning "trivially met at threshold 0" through "sweep runs
#: to patience / the threshold cap".
TARGET_RATIOS = (2.0, 8.0, 1e9)


def canonical(sig) -> str:
    """The store's canonical encoding of a signature (byte identity)."""
    return canonical_json(signature_to_dict(sig))


def both_searches(trace, target_ratio, **option_kwargs):
    legacy = compress_trace(
        trace,
        target_ratio,
        CompressionOptions(search="linear", **option_kwargs),
    )
    fast = compress_trace(
        trace,
        target_ratio,
        CompressionOptions(search="dendrogram", **option_kwargs),
    )
    return legacy, fast


@pytest.fixture(scope="module")
def nas_traces():
    cluster = paper_testbed()
    traces = {}
    for name in NAS_BENCHMARKS:
        trace, _ = trace_program(get_program(name, "S", 4), cluster)
        traces[name] = trace
    return traces


class TestNASByteIdentity:
    @pytest.mark.parametrize("name", NAS_BENCHMARKS)
    def test_signature_byte_identical(self, nas_traces, name):
        trace = nas_traces[name]
        for target in TARGET_RATIOS:
            legacy, fast = both_searches(trace, target)
            assert canonical(fast) == canonical(legacy), (
                f"{name} at Q={target}: dendrogram search diverged from "
                f"the linear sweep"
            )

    @pytest.mark.parametrize("name", NAS_BENCHMARKS)
    def test_chosen_threshold_and_ratio_match(self, nas_traces, name):
        """Spot-check the fields the campaign consumes directly (also
        covered by byte identity; kept for a readable failure)."""
        legacy, fast = both_searches(nas_traces[name], 1e9)
        assert fast.threshold == legacy.threshold
        assert fast.compression_ratio == legacy.compression_ratio
        assert fast.trace_events == legacy.trace_events
        assert fast.n_leaves() == legacy.n_leaves()


def varying_size_trace(sizes, nranks=1):
    trace = Trace(program_name="var", scenario_name="d", nranks=nranks)
    finish = []
    for rank in range(nranks):
        t = 0.0
        recs = []
        for s in sizes:
            recs.append(
                TraceRecord(
                    "MPI_Send", {"peer": 1, "bytes": s, "tag": 0},
                    t + 0.01, t + 0.011,
                )
            )
            t += 0.011
        trace.records[rank] = recs
        finish.append(t)
    trace.finish_times = finish
    return trace


class TestEdgeCaseEquivalence:
    def test_patience_path(self):
        """A sweep that stops on patience, mid-plateau."""
        trace = varying_size_trace([100, 200] * 10)
        legacy, fast = both_searches(
            trace, 1e9, threshold_step=0.01, patience=3, max_threshold=0.25
        )
        assert canonical(fast) == canonical(legacy)

    def test_threshold_cap_path(self):
        """A sweep that runs all the way to max_threshold."""
        trace = varying_size_trace([10 ** (i % 7) for i in range(20)])
        legacy, fast = both_searches(
            trace, 1000.0, max_threshold=0.2, patience=100
        )
        assert canonical(fast) == canonical(legacy)
        assert fast.threshold <= 0.2

    def test_nonzero_start_threshold(self):
        """The alignment-repair loop restarts the search above zero."""
        trace = varying_size_trace(
            [10_000, 9_800, 10_100, 9_900, 10_050, 9_950] * 5
        )
        legacy, fast = both_searches(
            trace, 10.0, start_threshold=0.03, max_threshold=0.25
        )
        assert canonical(fast) == canonical(legacy)

    def test_dense_merge_thresholds(self):
        """Sizes spread so nearly every grid step lands in a new band
        (worst case for the dendrogram: probes ≈ steps)."""
        sizes = [1000 + 7 * i for i in range(40)]
        trace = varying_size_trace(sizes)
        legacy, fast = both_searches(trace, 1e9, patience=30)
        assert canonical(fast) == canonical(legacy)

    def test_tight_fold_budget(self):
        """Budget-exhausted folding must stay identical too (the hash
        filter charges the legacy cost model)."""
        trace = varying_size_trace([100, 150, 100, 150, 200] * 8)
        legacy, fast = both_searches(trace, 1e9, work_budget=64)
        assert canonical(fast) == canonical(legacy)

    def test_unknown_search_rejected(self):
        from repro.errors import SignatureError

        trace = varying_size_trace([1, 2, 3])
        with pytest.raises(SignatureError):
            compress_trace(
                trace, 1.0, CompressionOptions(search="bisect")
            )
