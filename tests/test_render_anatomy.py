"""Tests for signature rendering and the error-anatomy experiment."""

from __future__ import annotations

import pytest

from repro.cluster import Scenario, cpu_one_node, paper_testbed
from repro.core import compress_trace, render_rank_signature, render_signature
from repro.core.signature import EventStats, LoopNode, RankSignature, Signature
from repro.experiments import analyze_error_sources
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce


def leaf(call="MPI_Send", peer=1, nbytes=2048.0, gap=0.01, count=1):
    return EventStats(
        call=call, peer=peer, tag=0, nreqs=0,
        mean_bytes=nbytes, mean_gap=gap, mean_duration=0.0,
        count=count, gap_samples=[gap] * count,
    )


class TestRender:
    def test_leaf_formatting(self):
        rank_sig = RankSignature(rank=0, nodes=[leaf(count=3)])
        out = render_rank_signature(rank_sig)
        assert "Send" in out
        assert "peer=1" in out
        assert "2.0KB" in out
        assert "avg of 3" in out

    def test_loop_nesting_indented(self):
        inner = LoopNode(body=[leaf()], count=2)
        outer = LoopNode(body=[inner, leaf(peer=2)], count=3)
        out = render_rank_signature(RankSignature(rank=0, nodes=[outer]))
        assert "loop x3:" in out
        assert "  loop x2:" in out.replace("\n", "\n")

    def test_depth_cap_elides(self):
        node = leaf()
        for _ in range(8):
            node = LoopNode(body=[node], count=2)
        out = render_rank_signature(RankSignature(rank=0, nodes=[node]),
                                    max_depth=3)
        assert "..." in out

    def test_full_signature_header(self, cg_s_trace):
        trace, _ = cg_s_trace
        sig = compress_trace(trace, target_ratio=2.0)
        out = render_signature(sig, ranks=2)
        assert "cg.S.4" in out
        assert out.count("rank ") == 2

    def test_megabyte_formatting(self):
        out = render_rank_signature(
            RankSignature(rank=0, nodes=[leaf(nbytes=5 * 1024 * 1024)])
        )
        assert "5.0MB" in out


class TestAnatomy:
    @pytest.fixture(scope="class")
    def anatomy(self):
        cluster = paper_testbed()
        program = bsp_allreduce(supersteps=150, compute_secs=0.01)
        return analyze_error_sources(
            program,
            cluster,
            steady_scenario=cpu_one_node(steady=True),
            bursty_scenario=cpu_one_node(),
            target_seconds=0.4,
            n_probes=4,
            seed=1,
        )

    def test_replay_is_nearly_exact(self, anatomy):
        assert anatomy.replay_error < 3.0

    def test_construction_error_small_when_steady(self, anatomy):
        assert anatomy.construction_error < 10.0

    def test_render_contains_all_sources(self, anatomy):
        out = anatomy.render()
        for needle in ("trace replay", "construction", "single probe",
                       "multi-probe"):
            assert needle in out

    def test_environment_noise_is_visible(self, anatomy):
        """Under bursty contention the probe samples a different window
        than the application: its error exceeds the steady-state
        construction error."""
        assert anatomy.single_probe_error > anatomy.construction_error
