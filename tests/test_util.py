"""Tests for repro.util (timebase, rng, stats, tables)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    ErrorSummary,
    format_duration,
    geometric_mean,
    mean,
    percent_error,
    quantize_us,
    relative_error,
    summarize_errors,
    weighted_mean,
)
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import Table, render_table


class TestTimebase:
    def test_quantize_microseconds(self):
        assert quantize_us(1.2345678) == pytest.approx(1.234568)

    def test_quantize_idempotent(self):
        assert quantize_us(quantize_us(0.1)) == quantize_us(0.1)

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_quantize_within_half_microsecond(self, t):
        assert abs(quantize_us(t) - t) <= 5e-7 + 1e-12 * t

    def test_format_microseconds(self):
        assert format_duration(823e-6) == "823 us"

    def test_format_milliseconds(self):
        assert format_duration(0.0142) == "14.2 ms"

    def test_format_seconds(self):
        assert format_duration(3.5) == "3.50 s"

    def test_format_minutes(self):
        assert format_duration(123.0) == "2 m 03 s"

    def test_format_negative(self):
        assert format_duration(-3.5) == "-3.50 s"


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_paths_do_not_collide_by_concatenation(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_make_rng_streams_independent(self):
        a = make_rng(7, "x").random(4)
        b = make_rng(7, "y").random(4)
        assert list(a) != list(b)

    def test_make_rng_reproducible(self):
        assert list(make_rng(7, "x").random(4)) == list(make_rng(7, "x").random(4))


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_mean_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_weighted_mean_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_relative_error_rejects_zero_actual(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_percent_error(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)

    def test_summarize_errors(self):
        s = summarize_errors([3.0, 1.0, 2.0])
        assert s == ErrorSummary(minimum=1.0, average=2.0, maximum=3.0, count=3)
        assert s.as_row() == (1.0, 2.0, 3.0)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_errors([])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1))
    def test_summary_ordering_invariant(self, values):
        s = summarize_errors(values)
        # Tolerate 1-ULP float-mean wobble on identical inputs.
        eps = 1e-9 * max(1.0, s.maximum)
        assert s.minimum <= s.average + eps
        assert s.average <= s.maximum + eps


class TestTables:
    def test_row_arity_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_contains_cells(self):
        t = Table("My Title", ["name", "value"])
        t.add_row("alpha", 1.25)
        out = t.render()
        assert "My Title" in out
        assert "alpha" in out
        assert "1.25" in out

    def test_small_floats_use_scientific(self):
        out = render_table("", ["x"], [[0.00001]])
        assert "e-05" in out

    def test_columns_aligned(self):
        t = Table("t", ["col"])
        t.add_row("short")
        t.add_row("much-longer-cell")
        lines = t.render().splitlines()
        assert len(lines[-1]) >= len("much-longer-cell")
