"""Extension-module tests (latency-aware scaling, distribution gaps,
memory model, retargeting)."""

from __future__ import annotations

import pytest

from repro.cluster import NetworkSpec, paper_testbed
from repro.core import build_skeleton
from repro.core.signature import EventStats
from repro.errors import ReproError, SkeletonError
from repro.ext import (
    MemoryHierarchy,
    distribution_gap_model,
    effective_speed,
    make_latency_aware_scaler,
    retarget_skeleton,
)
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads.synthetic import bsp_allreduce, stencil2d


def leaf(nbytes=100_000.0, gaps=(0.1,)):
    return EventStats(
        call="MPI_Send", peer=1, tag=0, nreqs=0,
        mean_bytes=nbytes, mean_gap=sum(gaps) / len(gaps),
        mean_duration=0.0, count=len(gaps), gap_samples=list(gaps),
    )


class TestLatencyAwareScaler:
    def setup_method(self):
        self.net = NetworkSpec(latency=1e-3, bandwidth=1e6)
        self.scaler = make_latency_aware_scaler(self.net)

    def test_compensates_for_latency(self):
        """Scaled bytes must make the message *time* scale by f, so the
        payload shrinks more than linearly."""
        lf = leaf(nbytes=1e6)  # time = 1e-3 + 1.0 ~ 1.001 s
        f = 0.5
        scaled = self.scaler(lf, f)
        scaled_time = self.net.latency + scaled / self.net.bandwidth
        full_time = self.net.latency + lf.mean_bytes / self.net.bandwidth
        assert scaled_time == pytest.approx(f * full_time)
        assert scaled < lf.mean_bytes * f  # stronger reduction than naive

    def test_latency_floor_clamps_to_zero(self):
        lf = leaf(nbytes=100.0)  # time ~ latency (1e-3) + 1e-4
        scaled = self.scaler(lf, 0.01)
        assert scaled == 0.0

    def test_zero_bytes_stay_zero(self):
        assert self.scaler(leaf(nbytes=0.0), 0.5) == 0.0

    def test_improves_prediction_under_throttling(self):
        """Ablation in miniature: with a heavily-throttled link and a
        small skeleton, the latency-aware scale-down gets closer to the
        naive-scaled skeleton's own target time."""
        cluster = paper_testbed()
        trace, ded = trace_program(
            stencil2d(iterations=64, halo_bytes=256 * 1024), cluster
        )
        K = 32.0
        naive = build_skeleton(trace, scaling_factor=K, warn=False)
        aware = build_skeleton(
            trace, scaling_factor=K, warn=False,
            comm_scaler=make_latency_aware_scaler(cluster.network),
        )
        t_naive = run_program(naive.program, cluster).elapsed
        t_aware = run_program(aware.program, cluster).elapsed
        target = ded.elapsed / K
        assert abs(t_aware - target) <= abs(t_naive - target) + 1e-6


class TestDistributionGapModel:
    def test_empty_samples_fall_back_to_mean(self):
        lf = leaf(gaps=(0.3,))
        lf.gap_samples = []
        assert distribution_gap_model(lf, 0) == pytest.approx(lf.mean_gap)

    def test_single_sample(self):
        lf = leaf(gaps=(0.25,))
        assert distribution_gap_model(lf, 5) == pytest.approx(0.25)

    def test_sweeps_whole_distribution(self):
        gaps = tuple(0.01 * i for i in range(10))
        lf = leaf(gaps=gaps)
        seen = {distribution_gap_model(lf, i) for i in range(10)}
        assert seen == set(gaps)

    def test_deterministic(self):
        lf = leaf(gaps=(0.1, 0.2, 0.3))
        a = [distribution_gap_model(lf, i) for i in range(6)]
        b = [distribution_gap_model(lf, i) for i in range(6)]
        assert a == b

    def test_skeleton_with_distribution_model_runs(self, cluster):
        from repro.ext.distribution import distribution_gap_model as dgm

        trace, ded = trace_program(
            stencil2d(iterations=40, jitter=0.3, seed=9), cluster
        )
        bundle = build_skeleton(trace, scaling_factor=8.0, warn=False,
                                gap_model=dgm)
        result = run_program(bundle.program, cluster)
        assert result.elapsed == pytest.approx(ded.elapsed / 8.0, rel=0.4)


class TestMemoryModel:
    def test_fits_in_cache_full_speed(self):
        h = MemoryHierarchy(cache_bytes=1 << 20)
        assert effective_speed(h, 1 << 18) == pytest.approx(1.0)

    def test_spills_to_memory_slows(self):
        h = MemoryHierarchy(cache_bytes=1 << 20, miss_speed=0.25)
        s = effective_speed(h, 1 << 24)
        assert 0.25 < s < 0.35

    def test_monotone_in_working_set(self):
        h = MemoryHierarchy(cache_bytes=1 << 20)
        speeds = [effective_speed(h, 1 << k) for k in range(16, 28)]
        assert speeds == sorted(speeds, reverse=True)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            MemoryHierarchy(cache_bytes=0)
        with pytest.raises(ReproError):
            MemoryHierarchy(cache_bytes=1024, miss_speed=2.0)


class TestRetarget:
    def test_retarget_changes_k(self, cluster):
        trace, ded = trace_program(bsp_allreduce(supersteps=60), cluster)
        bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
        smaller = retarget_skeleton(
            bundle, target_seconds=ded.elapsed / 12.0,
            app_dedicated_seconds=ded.elapsed, warn=False,
        )
        assert smaller.K == pytest.approx(12.0, rel=1e-6)
        t = run_program(smaller.program, cluster).elapsed
        assert t == pytest.approx(ded.elapsed / 12.0, rel=0.35)

    def test_retarget_rejects_bad_target(self, cluster):
        trace, _ = trace_program(bsp_allreduce(supersteps=10), cluster)
        bundle = build_skeleton(trace, scaling_factor=2.0, warn=False)
        with pytest.raises(SkeletonError):
            retarget_skeleton(bundle, target_seconds=0.0)
