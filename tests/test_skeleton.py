"""Executable-skeleton construction and alignment checking."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.core import build_skeleton, check_alignment, compress_trace
from repro.core.scale import ScaledSignature, scale_signature
from repro.core.signature import EventStats, LoopNode, RankSignature
from repro.core.skeleton import skeleton_program
from repro.errors import SkeletonError
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce, stencil2d


def leaf(call, peer, nbytes=100.0, gap=0.001, tag=0, nreqs=0, src=-1):
    return EventStats(
        call=call, peer=peer, tag=tag, nreqs=nreqs,
        mean_bytes=nbytes, mean_gap=gap, mean_duration=1e-5,
        count=1, src=src, gap_samples=[gap],
    )


def scaled_from(rank_nodes: dict, K=1.0):
    ranks = [
        RankSignature(rank=r, nodes=nodes) for r, nodes in sorted(rank_nodes.items())
    ]
    return ScaledSignature(
        base_name="hand", nranks=len(ranks), K=K, K_int=max(1, int(K)),
        ranks=ranks,
    )


class TestSkeletonExecution:
    def test_hand_built_pair_runs(self, cluster):
        scaled = scaled_from({
            0: [leaf("MPI_Send", 1, tag=3)],
            1: [leaf("MPI_Recv", 0, tag=3)],
        })
        prog = skeleton_program(scaled)
        result = run_program(prog, cluster)
        assert result.n_messages == 1

    def test_gap_replayed_as_compute(self, cluster):
        scaled = scaled_from({
            0: [leaf("MPI_Send", 1, gap=0.25, tag=1)],
            1: [leaf("MPI_Recv", 0, gap=0.0, tag=1)],
        })
        result = run_program(skeleton_program(scaled), cluster)
        assert result.finish_times[0] >= 0.25

    def test_loop_replays_count_times(self, cluster):
        body0 = [leaf("MPI_Send", 1, tag=1)]
        body1 = [leaf("MPI_Recv", 0, tag=1)]
        scaled = scaled_from({
            0: [LoopNode(body=body0, count=9)],
            1: [LoopNode(body=body1, count=9)],
        })
        result = run_program(skeleton_program(scaled), cluster)
        assert result.n_messages == 9

    def test_nonblocking_requests_reconnected(self, cluster):
        """Irecv/Isend followed by Waitall(count) reproduces overlap."""
        nodes = {
            0: [
                leaf("MPI_Irecv", 1, tag=2),
                leaf("MPI_Isend", 1, tag=2),
                leaf("MPI_Waitall", -1, nreqs=2),
            ],
            1: [
                leaf("MPI_Irecv", 0, tag=2),
                leaf("MPI_Isend", 0, tag=2),
                leaf("MPI_Waitall", -1, nreqs=2),
            ],
        }
        result = run_program(skeleton_program(scaled_from(nodes)), cluster)
        assert result.n_messages == 2

    def test_collective_leaf_regenerated(self, cluster):
        nodes = {
            r: [leaf("MPI_Allreduce", -1, nbytes=64.0)] for r in range(4)
        }
        result = run_program(skeleton_program(scaled_from(nodes)), cluster)
        assert result.elapsed > 0

    def test_unknown_call_rejected(self, cluster):
        scaled = scaled_from({0: [leaf("MPI_Bogus", -1)]})
        with pytest.raises(SkeletonError):
            run_program(skeleton_program(scaled), cluster)

    def test_alltoallv_uniform_reconstruction(self, cluster):
        nodes = {
            r: [leaf("MPI_Alltoallv", -1, nbytes=4000.0)] for r in range(4)
        }
        result = run_program(skeleton_program(scaled_from(nodes)), cluster)
        assert result.elapsed > 0


class TestAlignment:
    def test_aligned_pair_passes(self):
        scaled = scaled_from({
            0: [leaf("MPI_Send", 1, tag=1)],
            1: [leaf("MPI_Recv", 0, tag=1)],
        })
        check_alignment(scaled)  # no exception

    def test_missing_receive_detected(self):
        scaled = scaled_from({
            0: [leaf("MPI_Send", 1, tag=1), leaf("MPI_Send", 1, tag=1)],
            1: [leaf("MPI_Recv", 0, tag=1)],
        })
        with pytest.raises(SkeletonError, match="sends vs"):
            check_alignment(scaled)

    def test_collective_count_mismatch_detected(self):
        scaled = scaled_from({
            0: [leaf("MPI_Allreduce", -1)],
            1: [leaf("MPI_Allreduce", -1), leaf("MPI_Allreduce", -1)],
        })
        with pytest.raises(SkeletonError, match="performs"):
            check_alignment(scaled)

    def test_loop_multiplicity_counted(self):
        scaled = scaled_from({
            0: [LoopNode(body=[leaf("MPI_Send", 1, tag=1)], count=3)],
            1: [LoopNode(body=[leaf("MPI_Recv", 0, tag=1)], count=2)],
        })
        with pytest.raises(SkeletonError):
            check_alignment(scaled)

    def test_sendrecv_counts_both_sides(self):
        scaled = scaled_from({
            0: [leaf("MPI_Sendrecv", 1, tag=1, src=1)],
            1: [leaf("MPI_Sendrecv", 0, tag=1, src=0)],
        })
        check_alignment(scaled)


class TestEndToEndSkeletons:
    @pytest.mark.parametrize("bench", ["cg", "is", "mg", "lu", "bt", "sp"])
    def test_class_s_skeleton_roundtrip(self, bench):
        """Every Class S benchmark's skeleton builds, aligns, and runs;
        its dedicated time lands near the target."""
        cluster = paper_testbed()
        trace, result = trace_program(get_program(bench, "S", 4), cluster)
        target = result.elapsed / 4.0
        bundle = build_skeleton(trace, target_seconds=target, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed == pytest.approx(target, rel=0.35)

    def test_skeleton_of_stencil(self, cluster):
        trace, result = trace_program(
            stencil2d(iterations=40, jitter=0.1, seed=3), cluster
        )
        bundle = build_skeleton(trace, scaling_factor=8.0, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed == pytest.approx(result.elapsed / 8.0, rel=0.3)

    def test_skeleton_shorter_than_app(self, cluster):
        trace, result = trace_program(bsp_allreduce(supersteps=50), cluster)
        bundle = build_skeleton(trace, scaling_factor=10.0, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed < result.elapsed / 5
