"""Clustering tests, including the paper's own grouping example."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (
    ClusterSpace,
    StreamDendrogram,
    cluster_stream,
)
from repro.core.distance import DimensionScales
from repro.core.events import ExecEvent, RankStream


def send(nbytes, peer=3, tag=0, gap=0.0):
    return ExecEvent("MPI_Send", peer, tag, float(nbytes), 1e-4, gap)


def stream_of(*events):
    return RankStream(rank=0, events=list(events))


class TestThresholdZero:
    def test_identical_events_share_symbol(self):
        symbols, space = cluster_stream(stream_of(send(100), send(100)), 0.0)
        assert symbols[0] == symbols[1]
        assert space.n_clusters == 1

    def test_different_sizes_split(self):
        symbols, space = cluster_stream(stream_of(send(100), send(101)), 0.0)
        assert symbols[0] != symbols[1]
        assert space.n_clusters == 2


class TestPaperExample:
    def test_similar_sends_merge_into_average(self):
        """§3.2: Send(3, 2000) + Send(3, 1800) -> Send(3, 1900)."""
        events = stream_of(send(2000), send(1800))
        symbols, space = cluster_stream(events, threshold=0.15)
        assert symbols[0] == symbols[1]
        cluster = space.clusters[0]
        assert cluster.centroid[0] == pytest.approx(1900.0)
        assert cluster.count == 2

    def test_different_primitives_never_merge(self):
        ev_send = send(1000)
        ev_isend = ExecEvent("MPI_Isend", 3, 0, 1000.0, 1e-4, 0.0)
        symbols, _ = cluster_stream(stream_of(ev_send, ev_isend), 1.0)
        assert symbols[0] != symbols[1]

    def test_different_peers_never_merge(self):
        symbols, _ = cluster_stream(
            stream_of(send(1000, peer=1), send(1000, peer=2)), 1.0
        )
        assert symbols[0] != symbols[1]

    def test_different_tags_never_merge(self):
        symbols, _ = cluster_stream(
            stream_of(send(1000, tag=1), send(1000, tag=2)), 1.0
        )
        assert symbols[0] != symbols[1]


class TestThresholdSemantics:
    def test_threshold_is_max_size_difference_fraction(self):
        """With scale = max size 1000: a 10% difference merges at
        t=0.1 but not at t=0.09."""
        events = stream_of(send(1000), send(900))
        sym_lo, _ = cluster_stream(events, threshold=0.09)
        sym_hi, _ = cluster_stream(events, threshold=0.101)
        assert sym_lo[0] != sym_lo[1]
        assert sym_hi[0] == sym_hi[1]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            cluster_stream(stream_of(send(1)), -0.1)

    def test_explicit_scales_override(self):
        events = stream_of(send(1000), send(900))
        scales = DimensionScales(nbytes=10_000, duration=1.0)
        symbols, _ = cluster_stream(events, threshold=0.02, scales=scales)
        # |1000-900|/10000 = 0.01 <= 0.02 -> merged.
        assert symbols[0] == symbols[1]


class TestPlateauCertificate:
    def test_certificate_brackets_decisions(self):
        """1000 vs 900 (scale 1000): the merge flips exactly at
        d = 0.1, so the band below is [0, 0.1) and above is [0.1, inf)."""
        events = [send(1000), send(900)]
        scales = DimensionScales(nbytes=1000, duration=1.0)
        below = ClusterSpace(threshold=0.05, scales=scales)
        for ev in events:
            below.assign(ev)
        assert below.stable_lo == 0.0
        assert below.stable_hi == pytest.approx(0.1)
        above = ClusterSpace(threshold=0.15, scales=scales)
        for ev in events:
            above.assign(ev)
        assert above.stable_lo == pytest.approx(0.1)
        assert above.stable_hi == float("inf")

    def test_any_threshold_in_band_reproduces_symbols(self):
        sizes = [1000, 940, 870, 1000, 500, 940]
        events = [send(s) for s in sizes]
        scales = DimensionScales.from_events(events)
        probe = ClusterSpace(threshold=0.08, scales=scales)
        symbols = [probe.assign(ev) for ev in events]
        for t in (probe.stable_lo, 0.08, probe.stable_hi - 1e-9):
            again = ClusterSpace(threshold=t, scales=scales)
            assert [again.assign(ev) for ev in events] == symbols


class TestStreamDendrogram:
    EVENTS = [send(s) for s in (1000, 940, 870, 1000, 500, 940, 430)]

    def test_bands_match_direct_clustering(self):
        scales = DimensionScales.from_events(self.EVENTS)
        dendro = StreamDendrogram(self.EVENTS, scales)
        for step in range(26):
            t = 0.01 * step
            band = dendro.band_at(t)
            assert band.lo <= t < band.hi
            space = ClusterSpace(threshold=t, scales=scales)
            assert band.symbols == [space.assign(ev) for ev in self.EVENTS]

    def test_probes_bounded_by_distinct_outcomes(self):
        """Walking a fine grid must reuse bands: far fewer clustering
        passes than grid points."""
        scales = DimensionScales.from_events(self.EVENTS)
        dendro = StreamDendrogram(self.EVENTS, scales)
        grid = [i * 0.002 for i in range(200)]
        outcomes = {tuple(dendro.band_at(t).symbols) for t in grid}
        assert dendro.n_bands <= len(outcomes) + 1
        assert dendro.n_bands < 20  # vs. 200 grid points

    def test_bands_are_stable_objects(self):
        """Equal thresholds inside one band resolve to the same object
        (the fold memo keys on band identity)."""
        scales = DimensionScales.from_events(self.EVENTS)
        dendro = StreamDendrogram(self.EVENTS, scales)
        assert dendro.band_at(0.0) is dendro.band_at(0.0)
        band = dendro.band_at(0.01)
        if band.hi > 0.015:
            assert dendro.band_at(0.015) is band

    def test_symbol_base_offsets_every_symbol(self):
        scales = DimensionScales.from_events(self.EVENTS)
        base = 1 << 40
        dendro = StreamDendrogram(self.EVENTS, scales, symbol_base=base)
        plain = StreamDendrogram(self.EVENTS, scales)
        assert dendro.band_at(0.0).symbols == [
            base + s for s in plain.band_at(0.0).symbols
        ]

    def test_negative_threshold_rejected(self):
        dendro = StreamDendrogram(
            self.EVENTS, DimensionScales.from_events(self.EVENTS)
        )
        with pytest.raises(ValueError):
            dendro.band_at(-0.01)

    def test_empty_stream(self):
        dendro = StreamDendrogram([], DimensionScales(nbytes=0, duration=0))
        band = dendro.band_at(0.1)
        assert band.symbols == []
        assert band.lo == 0.0 and band.hi == float("inf")


@settings(max_examples=80, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                   max_size=40),
    threshold=st.floats(min_value=0.0, max_value=1.0),
)
def test_dendrogram_band_is_exact(sizes, threshold):
    """Fuzz the certificate: re-clustering anywhere inside a returned
    band reproduces the symbols; just outside it does not claim to."""
    events = [send(s) for s in sizes]
    scales = DimensionScales.from_events(events)
    dendro = StreamDendrogram(events, scales)
    band = dendro.band_at(threshold)
    probes = [band.lo, threshold]
    if band.hi != float("inf"):
        probes.append(band.hi * (1 - 1e-12))
    for t in probes:
        if t < band.lo or t >= band.hi:
            continue
        space = ClusterSpace(threshold=t, scales=scales)
        assert [space.assign(ev) for ev in events] == band.symbols


@settings(max_examples=80, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                   max_size=40),
    threshold=st.floats(min_value=0.0, max_value=1.0),
)
def test_clustering_invariants(sizes, threshold):
    events = stream_of(*[send(s) for s in sizes])
    symbols, space = cluster_stream(events, threshold)
    # One symbol per event; symbols index real clusters.
    assert len(symbols) == len(sizes)
    assert set(symbols) <= set(range(space.n_clusters))
    # Cluster member counts add up.
    assert sum(c.count for c in space.clusters) == len(sizes)
    # Threshold 0: clusters are exact-value groups.
    if threshold == 0.0:
        by_symbol = {}
        for sym, size in zip(symbols, sizes):
            by_symbol.setdefault(sym, set()).add(size)
        for members in by_symbol.values():
            assert len(members) == 1
