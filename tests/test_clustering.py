"""Clustering tests, including the paper's own grouping example."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import ClusterSpace, cluster_stream
from repro.core.distance import DimensionScales
from repro.core.events import ExecEvent, RankStream


def send(nbytes, peer=3, tag=0, gap=0.0):
    return ExecEvent("MPI_Send", peer, tag, float(nbytes), 1e-4, gap)


def stream_of(*events):
    return RankStream(rank=0, events=list(events))


class TestThresholdZero:
    def test_identical_events_share_symbol(self):
        symbols, space = cluster_stream(stream_of(send(100), send(100)), 0.0)
        assert symbols[0] == symbols[1]
        assert space.n_clusters == 1

    def test_different_sizes_split(self):
        symbols, space = cluster_stream(stream_of(send(100), send(101)), 0.0)
        assert symbols[0] != symbols[1]
        assert space.n_clusters == 2


class TestPaperExample:
    def test_similar_sends_merge_into_average(self):
        """§3.2: Send(3, 2000) + Send(3, 1800) -> Send(3, 1900)."""
        events = stream_of(send(2000), send(1800))
        symbols, space = cluster_stream(events, threshold=0.15)
        assert symbols[0] == symbols[1]
        cluster = space.clusters[0]
        assert cluster.centroid[0] == pytest.approx(1900.0)
        assert cluster.count == 2

    def test_different_primitives_never_merge(self):
        ev_send = send(1000)
        ev_isend = ExecEvent("MPI_Isend", 3, 0, 1000.0, 1e-4, 0.0)
        symbols, _ = cluster_stream(stream_of(ev_send, ev_isend), 1.0)
        assert symbols[0] != symbols[1]

    def test_different_peers_never_merge(self):
        symbols, _ = cluster_stream(
            stream_of(send(1000, peer=1), send(1000, peer=2)), 1.0
        )
        assert symbols[0] != symbols[1]

    def test_different_tags_never_merge(self):
        symbols, _ = cluster_stream(
            stream_of(send(1000, tag=1), send(1000, tag=2)), 1.0
        )
        assert symbols[0] != symbols[1]


class TestThresholdSemantics:
    def test_threshold_is_max_size_difference_fraction(self):
        """With scale = max size 1000: a 10% difference merges at
        t=0.1 but not at t=0.09."""
        events = stream_of(send(1000), send(900))
        sym_lo, _ = cluster_stream(events, threshold=0.09)
        sym_hi, _ = cluster_stream(events, threshold=0.101)
        assert sym_lo[0] != sym_lo[1]
        assert sym_hi[0] == sym_hi[1]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            cluster_stream(stream_of(send(1)), -0.1)

    def test_explicit_scales_override(self):
        events = stream_of(send(1000), send(900))
        scales = DimensionScales(nbytes=10_000, duration=1.0)
        symbols, _ = cluster_stream(events, threshold=0.02, scales=scales)
        # |1000-900|/10000 = 0.01 <= 0.02 -> merged.
        assert symbols[0] == symbols[1]


@settings(max_examples=80, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                   max_size=40),
    threshold=st.floats(min_value=0.0, max_value=1.0),
)
def test_clustering_invariants(sizes, threshold):
    events = stream_of(*[send(s) for s in sizes])
    symbols, space = cluster_stream(events, threshold)
    # One symbol per event; symbols index real clusters.
    assert len(symbols) == len(sizes)
    assert set(symbols) <= set(range(space.n_clusters))
    # Cluster member counts add up.
    assert sum(c.count for c in space.clusters) == len(sizes)
    # Threshold 0: clusters are exact-value groups.
    if threshold == 0.0:
        by_symbol = {}
        for sym, size in zip(symbols, sizes):
            by_symbol.setdefault(sym, set()).add(size)
        for members in by_symbol.values():
            assert len(members) == 1
