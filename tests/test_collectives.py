"""Collective decompositions: correctness, termination, and timing."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkSpec
from repro.sim import (
    Allgather,
    Allreduce,
    Alltoall,
    Alltoallv,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Program,
    Reduce,
    Scatter,
    run_program,
)
from repro.sim.collectives import collective_bytes, expand
from repro.sim.ops import Recv, Send


def fast_cluster(n):
    return Cluster.uniform(
        n,
        network=NetworkSpec(
            latency=1e-4, bandwidth=1e8, intra_node_latency=0.0,
            memory_bandwidth=1e12, send_overhead=0.0,
        ),
    )


def run_collective(op, nranks):
    def gen(rank, size):
        yield op

    return run_program(Program("coll", nranks, gen), fast_cluster(nranks))


ALL_OPS = [
    Barrier(),
    Bcast(root=0, nbytes=1000),
    Bcast(root=2, nbytes=1000),
    Reduce(root=0, nbytes=1000),
    Reduce(root=1, nbytes=1000),
    Allreduce(nbytes=1000),
    Allgather(nbytes=1000),
    Alltoall(nbytes=1000),
    Gather(root=0, nbytes=1000),
    Gather(root=3, nbytes=1000),
    Scatter(root=0, nbytes=1000),
]


class TestTermination:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: repr(o))
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 8])
    def test_completes_for_any_rank_count(self, op, nranks):
        if isinstance(op, (Bcast, Reduce, Gather, Scatter)):
            if getattr(op, "root", 0) >= nranks:
                pytest.skip("root outside communicator")
        result = run_collective(op, nranks)
        assert result.elapsed >= 0.0

    @pytest.mark.parametrize("nranks", [2, 4, 6])
    def test_alltoallv_completes(self, nranks):
        op = Alltoallv(send_counts=tuple(100 * (i + 1) for i in range(nranks)))
        result = run_collective(op, nranks)
        assert result.elapsed > 0.0

    def test_alltoallv_wrong_arity_rejected(self):
        from repro.errors import ProgramError

        with pytest.raises(ProgramError):
            run_collective(Alltoallv(send_counts=(1, 2)), 4)

    def test_consecutive_collectives_do_not_cross_match(self):
        """Tag sequencing keeps back-to-back collectives separate even
        with rank skew."""

        def gen(rank, size):
            yield Compute(0.001 * rank)  # skew ranks
            for _ in range(20):
                yield Allreduce(nbytes=64)
                yield Barrier()

        run_program(Program("seq", 4, gen), fast_cluster(4))

    def test_collectives_interleave_with_p2p(self):
        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=128, tag=7)
            elif rank == 1:
                yield Recv(source=0, tag=7)
            yield Barrier()
            yield Allreduce(nbytes=8)

        run_program(Program("mix", 4, gen), fast_cluster(4))


class TestMessageCounts:
    def count_ops(self, op, nranks):
        """Total p2p sends across ranks in the decomposition."""
        total = 0
        for rank in range(nranks):
            for item in expand(op, rank, nranks, seq=0):
                name = type(item).__name__
                if name in ("Send", "Isend"):
                    total += 1
        return total

    def test_bcast_binomial_message_count(self):
        # A binomial broadcast delivers exactly p-1 messages.
        for p in (2, 4, 7, 8):
            assert self.count_ops(Bcast(root=0, nbytes=10), p) == p - 1

    def test_reduce_message_count(self):
        for p in (2, 4, 7, 8):
            assert self.count_ops(Reduce(root=0, nbytes=10), p) == p - 1

    def test_alltoall_message_count(self):
        for p in (2, 4, 8):
            assert self.count_ops(Alltoall(nbytes=10), p) == p * (p - 1)

    def test_allgather_ring_message_count(self):
        for p in (2, 4, 8):
            assert self.count_ops(Allgather(nbytes=10), p) == p * (p - 1)

    def test_gather_subtree_payload_conservation(self):
        """The root must receive exactly (p-1) ranks' worth of bytes."""
        for p in (2, 4, 7, 8):
            recv_bytes = 0
            for item in expand(Gather(root=0, nbytes=100), 0, p, seq=0):
                if type(item).__name__ == "Recv":
                    recv_bytes += item.nbytes
            assert recv_bytes == 100 * (p - 1)

    def test_scatter_mirrors_gather(self):
        for p in (2, 4, 8):
            sent = 0
            for item in expand(Scatter(root=0, nbytes=100), 0, p, seq=0):
                if type(item).__name__ == "Send":
                    sent += item.nbytes
            assert sent == 100 * (p - 1)


class TestTiming:
    def test_barrier_synchronises(self):
        """After a barrier every rank's remaining work starts together:
        total time ~ max(pre-barrier skew) + post work."""

        def gen(rank, size):
            yield Compute(0.1 * (rank + 1))
            yield Barrier()
            yield Compute(0.1)

        r = run_program(Program("b", 4, gen), fast_cluster(4))
        for t in r.finish_times:
            assert t == pytest.approx(0.4 + 0.1, rel=0.05)

    def test_larger_alltoall_takes_longer(self):
        small = run_collective(Alltoall(nbytes=10_000), 4).elapsed
        big = run_collective(Alltoall(nbytes=1_000_000), 4).elapsed
        assert big > 5 * small

    def test_allreduce_faster_than_alltoall_same_bytes(self):
        ar = run_collective(Allreduce(nbytes=100_000), 4).elapsed
        a2a = run_collective(Alltoall(nbytes=100_000), 4).elapsed
        assert ar < a2a


class TestCollectiveBytes:
    def test_barrier_is_zero(self):
        assert collective_bytes(Barrier(), 4) == 0

    def test_alltoallv_totals(self):
        assert collective_bytes(Alltoallv(send_counts=(1, 2, 3, 4)), 4) == 10

    def test_sized_ops_report_nbytes(self):
        assert collective_bytes(Bcast(root=0, nbytes=77), 4) == 77
        assert collective_bytes(Allreduce(nbytes=11), 4) == 11
