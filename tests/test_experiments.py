"""Experiment runner, caching, and figure-builder tests.

The runner tests use a tiny Class S campaign so the whole file runs in
seconds; the figure builders are additionally exercised on a synthetic
results object with known numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentResults,
    ExperimentRunner,
    figure2_activity,
    figure3_error_by_benchmark,
    figure4_good_skeletons,
    figure5_error_by_size,
    figure6_error_by_scenario,
    figure7_baselines,
)
from repro.experiments.report import full_report, overall_average_error


@pytest.fixture(scope="module")
def tiny_results(tmp_path_factory):
    """A real but tiny campaign: 2 benchmarks, class S, 2 sizes."""
    config = ExperimentConfig(
        benchmarks=("cg", "is"),
        klass="S",
        baseline_klass="S",
        skeleton_targets=(0.05, 0.01),
        steady=True,
    )
    cache = tmp_path_factory.mktemp("cache")
    runner = ExperimentRunner(config=config, cache_dir=str(cache))
    return runner.run(), runner


class TestRunner:
    def test_campaign_structure(self, tiny_results):
        results, _ = tiny_results
        assert set(results.apps) == {"cg", "is"}
        for bench in results.benchmarks():
            app = results.apps[bench]
            assert app["dedicated"] > 0
            assert set(app["scenarios"]) == set(results.scenario_names)
            assert set(results.skeletons[bench]) == {"0.05", "0.01"}
            assert results.class_s[bench]["dedicated"] > 0

    def test_cache_round_trip(self, tiny_results):
        results, runner = tiny_results
        assert runner.cache_path.exists()
        loaded = runner.load_cached()
        assert loaded is not None
        assert loaded.apps == results.apps
        assert loaded.skeletons == results.skeletons

    def test_cached_rerun_identical(self, tiny_results):
        results, runner = tiny_results
        again = runner.run()
        assert again.apps == results.apps

    def test_errors_computable(self, tiny_results):
        results, _ = tiny_results
        for bench in results.benchmarks():
            for target in results.targets():
                for scen in results.scenario_names:
                    err = results.skeleton_error(bench, target, scen)
                    assert err >= 0.0
            for scen in results.scenario_names:
                assert results.class_s_error(bench, scen) >= 0.0
                assert results.average_prediction_error(bench, scen) >= 0.0

    def test_config_key_stable_and_distinct(self):
        a = ExperimentConfig()
        b = ExperimentConfig()
        c = ExperimentConfig(environment_seed=1)
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_corrupt_cache_rejected(self, tmp_path):
        from repro.errors import ExperimentError

        config = ExperimentConfig(benchmarks=("cg",), klass="S")
        runner = ExperimentRunner(config=config, cache_dir=str(tmp_path))
        runner.cache_path.parent.mkdir(parents=True, exist_ok=True)
        runner.cache_path.write_text("{broken")
        with pytest.raises(ExperimentError):
            runner.load_cached()


class TestFigures:
    def test_every_figure_renders(self, tiny_results):
        results, _ = tiny_results
        for build in (
            figure2_activity,
            figure3_error_by_benchmark,
            figure4_good_skeletons,
            figure5_error_by_size,
        ):
            out = build(results).render()
            assert "CG" in out and "IS" in out

        fig6 = figure6_error_by_scenario(results, results.targets()[0]).render()
        assert "cpu-one-node" in fig6
        fig7 = figure7_baselines(results).render()
        assert "Class S" in fig7 and "Average" in fig7

    def test_fig2_rows_per_benchmark(self, tiny_results):
        results, _ = tiny_results
        table = figure2_activity(results)
        # app + one row per skeleton target, per benchmark.
        expected = len(results.benchmarks()) * (1 + len(results.targets()))
        assert len(table.rows) == expected
        for row in table.rows:
            compute, mpi = float(row[2]), float(row[3])
            assert compute + mpi == pytest.approx(100.0, abs=0.5)

    def test_fig3_has_average_row(self, tiny_results):
        results, _ = tiny_results
        table = figure3_error_by_benchmark(results)
        assert table.rows[-1][0] == "Average"

    def test_full_report(self, tiny_results):
        results, _ = tiny_results
        report = full_report(results)
        for marker in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                       "Figure 6", "Figure 7", "Overall average"):
            assert marker in report
        assert overall_average_error(results) >= 0.0
