"""IO chaos suite: deterministic OS-level fault injection against the
store/journal stack.

Invariants pinned here, for every fault kind the harness supports:

* the store never serves a torn or half-written object — a damaged
  artifact reads as a miss (or a quarantine case for fsck), never as
  wrong data;
* journal replay never yields a corrupt entry, whatever instant the
  fault struck;
* a campaign interrupted by an injected failure resumes to
  byte-identical results;
* an unwritable cache degrades to cache-bypass instead of killing the
  campaign;
* ``prune``/``gc`` racing a concurrent writer never deletes an
  in-flight write (the orphan grace period).

The randomized sweep at the bottom is seed-driven (``REPRO_CHAOS_SEED``)
and runs in the CI ``chaos`` job; it dumps its ``FsckReport`` to
``REPRO_CHAOS_REPORT`` for artifact upload.
"""

from __future__ import annotations

import json
import os
import time
import warnings

import pytest

from repro.errors import FaultError, StoreError
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.experiments.journal import CampaignJournal
from repro.faults import io as fio
from repro.faults.io import IO_FAULT_KINDS, IOFault, IOFaultPlan, random_plan
from repro.obs.metrics import enabled_metrics
from repro.store import ArtifactStore, fsck

TINY = ExperimentConfig(
    benchmarks=("cg",),
    klass="S",
    baseline_klass="S",
    skeleton_targets=(0.05,),
    steady=True,
)


def _put_one(store: ArtifactStore, n: int = 0):
    """Store one artifact with a blob; return its key."""
    key = store.key("trace", {"n": n})
    store.put(
        key,
        {"v": n},
        blob_writers={"data": lambda p: p.write_bytes(b"payload-%d" % n)},
    )
    return key


class TestPlans:
    def test_random_plan_is_deterministic(self):
        assert random_plan(7) == random_plan(7)
        assert random_plan(7) != random_plan(8)

    def test_json_roundtrip(self):
        plan = IOFaultPlan(
            name="demo",
            faults=(
                IOFault("torn-write", op_index=2, path_glob="*.json.tmp*"),
                IOFault("hang", op_index=1, seconds=0.5, op="fsync"),
            ),
        )
        assert IOFaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            IOFault("disk-on-fire")

    def test_describe_names_every_fault(self):
        plan = random_plan(3, n_faults=4)
        text = plan.describe()
        for f in plan.faults:
            assert f.kind in text

    def test_install_is_not_reentrant(self):
        plan = IOFaultPlan(faults=(IOFault("eio-read"),))
        with plan.install():
            with pytest.raises(FaultError):
                with plan.install():
                    pass

    def test_every_kind_is_installable(self, tmp_path):
        for kind in IO_FAULT_KINDS:
            plan = IOFaultPlan(faults=(IOFault(kind, seconds=0.0),))
            with plan.install():
                pass


class TestStoreInvariants:
    @pytest.mark.parametrize(
        "kind", ["enospc-write", "short-write", "torn-write", "rename-fail"]
    )
    def test_write_fault_never_serves_torn_object(self, tmp_path, kind):
        """A failed put is a miss, never a torn read; retry heals it."""
        store = ArtifactStore(tmp_path)
        plan = IOFaultPlan(name=kind, faults=(IOFault(kind),))
        with plan.install() as log:
            with pytest.warns(RuntimeWarning, match="cache-bypass"):
                key = _put_one(store)
            assert len(log) == 1
            assert store.get(key) is None  # torn bytes never served
        assert store.degraded
        # The plan is spent: the rewrite succeeds and verifies.
        _put_one(store)
        art = store.get(key)
        assert art is not None and art.content == {"v": 0}
        assert art.blobs["data"].read_bytes() == b"payload-0"

    def test_eio_read_is_a_miss_or_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = _put_one(store)
        with IOFaultPlan(faults=(IOFault("eio-read"),)).install():
            assert store.get(key) is None
        with IOFaultPlan(faults=(IOFault("eio-read"),)).install():
            with pytest.raises(StoreError):
                store.get(key, on_error="raise")
        assert store.get(key) is not None  # undamaged on disk

    def test_hang_delays_but_completes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        plan = IOFaultPlan(faults=(IOFault("hang", seconds=0.2, op="write"),))
        t0 = time.monotonic()
        with plan.install() as log:
            key = _put_one(store)
        assert time.monotonic() - t0 >= 0.2
        assert len(log) == 1
        assert store.get(key) is not None

    def test_unwritable_cache_degrades_to_bypass(self, tmp_path, monkeypatch):
        """A persistently unwritable cache directory never aborts the
        caller: every put becomes a warn-once no-op, counted by the
        ``store.degraded`` metric."""
        def _denied(path, text, encoding="utf-8"):
            raise PermissionError(13, f"injected unwritable cache: {path}")

        monkeypatch.setattr(fio, "write_text", _denied)
        store = ArtifactStore(tmp_path)
        with enabled_metrics() as m:
            with pytest.warns(RuntimeWarning, match="doctor"):
                key = _put_one(store)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second failure: no re-warn
                _put_one(store)
        assert store.degraded
        assert store.get(key) is None
        assert m.snapshot()["store.degraded"]["value"] == 2

    def test_campaign_survives_unwritable_cache(self, tmp_path, monkeypatch):
        """End-to-end degrade: the whole TINY campaign completes (and
        matches a cached-path run) with artifact writes failing."""
        clean = ExperimentRunner(
            TINY, cache_dir=str(tmp_path / "clean")
        ).run()

        def _denied(path, text, encoding="utf-8"):
            raise PermissionError(13, f"injected unwritable cache: {path}")

        monkeypatch.setattr(fio, "write_text", _denied)
        with pytest.warns(RuntimeWarning, match="cache-bypass"):
            degraded = ExperimentRunner(
                TINY, cache_dir=str(tmp_path / "degraded")
            ).run()
        assert not degraded.failures
        assert degraded.to_json() == clean.to_json()


class TestJournalInvariants:
    def test_short_write_loop_completes_the_line(self, tmp_path):
        """``write_fd`` may legally write a prefix; the journal's write
        loop must finish the line."""
        path = tmp_path / "journal-x.jsonl"
        j = CampaignJournal(path)
        plan = IOFaultPlan(
            faults=(IOFault("short-write", path_glob="journal-*.jsonl"),)
        )
        with plan.install() as log:
            j.record("k1", {"status": "ok", "value": 1.25})
        j.close()
        assert len(log) == 1
        assert j.load()["k1"]["value"] == 1.25

    @pytest.mark.parametrize("kind", ["enospc-write", "torn-write", "fsync-fail"])
    def test_raising_fault_never_corrupts_replay(self, tmp_path, kind):
        path = tmp_path / "journal-x.jsonl"
        j = CampaignJournal(path)
        j.record("before", {"status": "ok"})
        plan = IOFaultPlan(
            faults=(IOFault(kind, path_glob="journal-*.jsonl"),)
        )
        with plan.install():
            with pytest.raises(OSError):
                j.record("during", {"status": "ok"})
        j.close()
        entries = j.load()
        assert entries["before"]["status"] == "ok"
        # A torn line is skipped entirely; a fully-written line whose
        # fsync failed is still durable here. Either way: never corrupt.
        if "during" in entries:
            assert entries["during"]["status"] == "ok"

        # The repair path: doctor truncates a torn tail (no-op when
        # nothing tore), after which appends are safe again.
        fsck(ArtifactStore(tmp_path))
        j2 = CampaignJournal(path)
        j2.record("after", {"status": "ok"})
        j2.close()
        entries = j2.load()
        assert entries["before"]["status"] == "ok"
        assert entries["after"]["status"] == "ok"

    def test_flush_durability_never_fsyncs(self, tmp_path):
        plan = IOFaultPlan(
            faults=(IOFault("fsync-fail", path_glob="journal-*.jsonl"),)
        )
        path = tmp_path / "journal-x.jsonl"
        with plan.install() as log:
            j = CampaignJournal(path, durability="flush")
            j.record("k", {"status": "ok"})
            j.close()
        assert len(log) == 0  # no fsync issued, fault never matched
        assert j.load()["k"]["status"] == "ok"

    def test_unknown_durability_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignJournal(tmp_path / "j.jsonl", durability="yolo")


class TestCampaignResume:
    @pytest.fixture(scope="class")
    def clean_results(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("chaos-clean")
        return ExperimentRunner(TINY, cache_dir=str(cache)).run()

    @pytest.mark.parametrize("kind", ["enospc-write", "torn-write", "fsync-fail"])
    def test_resume_after_journal_fault_is_byte_identical(
        self, tmp_path, clean_results, kind
    ):
        """Kill a campaign with an injected journal fault mid-run, then
        ``--resume``: zero completed work re-runs and the final results
        are byte-identical to an undisturbed campaign."""
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path))
        plan = IOFaultPlan(
            name=f"campaign-{kind}",
            faults=(IOFault(kind, op_index=3, path_glob="journal-*.jsonl"),),
        )
        with plan.install() as log:
            with pytest.raises(OSError):
                runner.run()
        assert len(log) == 1
        assert runner.journal_path.exists()

        # Whatever the fault tore, replay must only see intact entries.
        durable = CampaignJournal(runner.journal_path).load()
        assert all("status" in e for e in durable.values())

        resumed = ExperimentRunner(TINY, cache_dir=str(tmp_path)).run(
            resume=True
        )
        assert resumed.to_json() == clean_results.to_json()

    def test_doctor_then_resume_after_torn_journal(
        self, tmp_path, clean_results
    ):
        """The belt-and-braces path: fsck truncates the torn journal
        line before the resume; results still byte-identical."""
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path))
        plan = IOFaultPlan(
            faults=(IOFault("torn-write", op_index=2,
                            path_glob="journal-*.jsonl"),),
        )
        with plan.install():
            with pytest.raises(OSError):
                runner.run()
        report = fsck(ArtifactStore(tmp_path))
        assert report.journals_scanned >= 1
        assert report.partial_lines_dropped >= 1
        resumed = ExperimentRunner(TINY, cache_dir=str(tmp_path)).run(
            resume=True
        )
        assert resumed.to_json() == clean_results.to_json()


class TestMaintenanceRaces:
    def test_prune_during_blob_write_spares_the_tmp(self, tmp_path):
        """A prune interleaved inside a writer's blob callback must not
        delete the writer's in-flight ``.tmp`` file — but must still
        collect genuinely stale garbage."""
        store = ArtifactStore(tmp_path)
        stale = store._blob_dir / "deadbeef-old.tmp999"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(b"crashed writer leftovers")
        os.utime(stale, (time.time() - 3600, time.time() - 3600))

        removed = {}

        def writer(p):
            p.write_bytes(b"fresh payload")
            removed.update(store.prune())  # the race, made deterministic

        key = store.key("trace", {"race": 1})
        assert store.put(key, {"v": 1}, blob_writers={"data": writer}) is not None
        assert removed["tmp"] == 1 and not stale.exists()
        art = store.get(key)
        assert art is not None
        assert art.blobs["data"].read_bytes() == b"fresh payload"

    def test_prune_and_gc_between_blob_publish_and_envelope_publish(
        self, tmp_path, monkeypatch
    ):
        """The widest race window: the blob is published but its
        envelope is not yet renamed in, so the blob is unreferenced.
        ``prune`` (grace) must spare it; ``gc`` must not touch it."""
        store = ArtifactStore(tmp_path)
        _put_one(store, n=99)  # pre-existing artifact for gc to chew on
        real_replace = fio.replace
        ran = {}

        def racing_replace(src, dst):
            if str(dst).endswith(".json") and "race" not in ran:
                ran["race"] = True
                ran["prune"] = store.prune()
                ran["gc"] = store.gc(max_bytes=0)
            real_replace(src, dst)

        monkeypatch.setattr(fio, "replace", racing_replace)
        key = store.key("trace", {"race": 2})
        path = store.put(
            key, {"v": 2},
            blob_writers={"data": lambda p: p.write_bytes(b"window")},
        )
        assert path is not None and ran["prune"]["blobs"] == 0
        art = store.get(key)
        assert art is not None and art.blobs["data"].read_bytes() == b"window"

    def test_prune_with_zero_grace_is_the_unsafe_baseline(self, tmp_path):
        """Documents *why* the grace period exists: with grace 0 a
        fresh unreferenced blob is treated as garbage."""
        store = ArtifactStore(tmp_path)
        blob = store._blob_dir / "cafef00d-data"
        blob.parent.mkdir(parents=True, exist_ok=True)
        blob.write_bytes(b"unreferenced")
        assert store.prune()["blobs"] == 0  # default grace spares it
        assert store.prune(grace_seconds=0.0)["blobs"] == 1


@pytest.mark.tier2
def test_randomized_chaos_sweep(tmp_path):
    """Seed-driven randomized sweep (CI ``chaos`` job): hammer the
    store and a journal under a random plan, then assert the global
    invariants and that one doctor pass reaches a clean state."""
    seed = int(os.environ.get("REPRO_CHAOS_SEED", "101"))
    plan = random_plan(seed, n_faults=6, max_op_index=40)
    store = ArtifactStore(tmp_path)
    journal = CampaignJournal(tmp_path / "journal-sweep.jsonl")
    contents = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with plan.install() as log:
            for n in range(25):
                key = _put_one(store, n)
                contents[key.digest] = n
                art = store.get(key)
                # Served artifacts are always intact, never torn.
                assert art is None or art.content == {"v": n}
                try:
                    journal.record(f"run-{n}", {"status": "ok", "n": n})
                except OSError:
                    pass
    journal.close()

    # Replay only ever yields intact entries.
    for key_name, entry in journal.load().items():
        assert entry["status"] == "ok"

    report = fsck(store, repair=True)
    report_path = os.environ.get("REPRO_CHAOS_REPORT")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(
                {"seed": seed, "plan": json.loads(plan.to_json()),
                 "injected": log.events, "fsck": report.to_dict()},
                fh, indent=1,
            )
    second = fsck(store, repair=True)
    assert second.clean, second.render()
    # Everything still present after repair verifies end to end.
    for digest, n in contents.items():
        art = store.get(digest)
        assert art is None or art.content == {"v": n}
