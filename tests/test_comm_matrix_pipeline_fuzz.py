"""Communication-matrix analysis and full-pipeline fuzzing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.cluster import Cluster, paper_testbed
from repro.core import build_skeleton
from repro.sim import run_program
from repro.trace import trace_program
from repro.trace.analysis import communication_matrix, render_communication_matrix
from repro.workloads import get_program

from tests.test_engine_fuzz import NRANKS, build_program, phase_strategy


class TestCommunicationMatrix:
    def test_lu_neighbours_only(self):
        """LU's 2x2 decomposition exchanges only with grid neighbours;
        the diagonal-opposite pair (0,3) and (1,2) must be silent."""
        cluster = paper_testbed()
        trace, _ = trace_program(get_program("lu", "S", 4), cluster)
        matrix = communication_matrix(trace)
        assert matrix[0][3] == 0 and matrix[3][0] == 0
        assert matrix[1][2] == 0 and matrix[2][1] == 0
        assert matrix[0][1] > 0 and matrix[0][2] > 0

    def test_diagonal_zero(self, cg_s_trace):
        trace, _ = cg_s_trace
        matrix = communication_matrix(trace)
        for r in range(trace.nranks):
            assert matrix[r][r] == 0

    def test_render(self, cg_s_trace):
        trace, _ = cg_s_trace
        out = render_communication_matrix(trace)
        assert "src\\dst" in out
        assert out.count("\n") == trace.nranks

    def test_cg_symmetry(self, cg_s_trace):
        """CG's exchanges are symmetric pairs."""
        trace, _ = cg_s_trace
        matrix = communication_matrix(trace)
        for a in range(4):
            for b in range(4):
                assert matrix[a][b] == pytest.approx(matrix[b][a], rel=0.05)


class TestCliValidate:
    def test_validate_command(self, capsys):
        rc = main(["validate", "mg", "--klass", "S",
                   "--targets", "0.05", "0.01"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Skeleton validation" in out
        assert "average error" in out


@settings(max_examples=12, deadline=None)
@given(st.lists(phase_strategy(), min_size=3, max_size=8))
def test_pipeline_fuzz_skeletons_run(phases):
    """Full-pipeline fuzz: any random phase program's trace must yield
    a skeleton that aligns and runs, with dedicated time within a loose
    band of T/K (random programs can be tiny, so the band is wide)."""
    # Ensure there is at least one communication phase.
    if not any(p[0] != "compute" for p in phases):
        phases = list(phases) + [("coll", "barrier", 0)]
    cluster = Cluster.uniform(NRANKS)
    program = build_program(phases)
    trace, ded = trace_program(program, cluster)
    if ded.elapsed <= 0:
        return
    bundle = build_skeleton(trace, scaling_factor=2.0, warn=False)
    skel = run_program(bundle.program, cluster)
    assert skel.elapsed <= ded.elapsed * 1.5
    assert skel.elapsed >= 0.0
