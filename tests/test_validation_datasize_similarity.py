"""Tests for the validation API, data-size projection, and trace
similarity metrics."""

from __future__ import annotations

import pytest

from repro.cluster import Scenario, paper_testbed
from repro.core import build_skeleton
from repro.core.compress import compress_trace
from repro.core.scale import scale_signature
from repro.core.skeleton import skeleton_program
from repro.errors import ReproError, SkeletonError, TraceError
from repro.ext import project_datasize
from repro.predict import validate_skeletons
from repro.sim import run_program
from repro.trace import (
    call_mix_distance,
    skeleton_similarity,
    trace_program,
    traffic_profile_distance,
)
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce, stencil2d


class TestValidation:
    @pytest.fixture(scope="class")
    def report(self):
        cluster = paper_testbed()
        program = get_program("mg", "S", 4)
        scenarios = [
            Scenario(name="cpu", competing={0: 2}),
            Scenario(name="net", nic_caps={0: 2.5e6}),
        ]
        return validate_skeletons(
            program, cluster, targets=(0.05, 0.01), scenarios=scenarios
        )

    def test_cells_complete(self, report):
        assert len(report.cells) == 4  # 2 targets x 2 scenarios
        for cell in report.cells:
            assert cell.predicted_seconds > 0
            assert cell.actual_seconds > 0
            assert cell.error_percent >= 0

    def test_summary_accessors(self, report):
        assert report.average_error() >= 0
        worst = report.worst()
        assert worst.error_percent == max(
            c.error_percent for c in report.cells
        )
        assert len(report.by_target(0.05)) == 2

    def test_render(self, report):
        text = report.render()
        assert "cpu" in text and "net" in text
        assert "0.05s err%" in text

    def test_prediction_quality(self, report):
        # Steady scenarios: both skeleton sizes predict well.
        assert report.average_error() < 15.0

    def test_rejects_empty_targets(self):
        cluster = paper_testbed()
        with pytest.raises(ReproError):
            validate_skeletons(get_program("mg", "S", 4), cluster, targets=())


class TestDatasizeProjection:
    def _signature(self):
        cluster = paper_testbed()
        trace, _ = trace_program(
            stencil2d(iterations=16, compute_secs=0.01, halo_bytes=50_000),
            cluster,
        )
        return compress_trace(trace, target_ratio=2.0)

    def test_volume_surface_split(self):
        sig = self._signature()
        projected = project_datasize(sig, size_ratio=2.0)
        # compute x8 (volume), messages x4 (surface).
        orig_leaves = list(sig.ranks[0].iter_leaves())
        proj_leaves = list(projected.ranks[0].iter_leaves())
        for a, b in zip(orig_leaves, proj_leaves):
            assert b.mean_gap == pytest.approx(8.0 * a.mean_gap)
            if a.mean_bytes > 256:
                assert b.mean_bytes == pytest.approx(4.0 * a.mean_bytes)

    def test_control_messages_unscaled(self):
        sig = self._signature()
        projected = project_datasize(sig, 4.0)
        for a, b in zip(
            sig.ranks[0].iter_leaves(), projected.ranks[0].iter_leaves()
        ):
            if a.mean_bytes <= 256:
                assert b.mean_bytes == a.mean_bytes

    def test_linear_exponents(self):
        sig = self._signature()
        projected = project_datasize(sig, 3.0, compute_exponent=1.0,
                                     surface_exponent=1.0)

        def gap_mass(rank_sig):
            total = 0.0
            stack = [(n, 1) for n in rank_sig.nodes]
            while stack:
                node, mult = stack.pop()
                from repro.core.signature import LoopNode

                if isinstance(node, LoopNode):
                    stack.extend((c, mult * node.count) for c in node.body)
                else:
                    total += mult * node.mean_gap
            return total + rank_sig.tail_gap

        a = gap_mass(sig.ranks[0])
        b = gap_mass(projected.ranks[0])
        assert b == pytest.approx(3.0 * a, rel=1e-6)

    def test_projected_signature_runs(self):
        sig = self._signature()
        projected = project_datasize(sig, 1.5)
        prog = skeleton_program(scale_signature(projected, 1.0))
        cluster = paper_testbed()
        assert run_program(prog, cluster).elapsed > 0

    def test_projection_tracks_real_class_scaling(self):
        """Project the CG.S signature to the CG.W size and compare with
        actually running CG.W: CG's data is linearly partitioned, so
        linear exponents apply; the projection should land within ~40%
        (the honest first-order accuracy)."""
        cluster = paper_testbed()
        from repro.workloads import problem

        trace_s, ded_s = trace_program(get_program("cg", "S", 4), cluster)
        sig = compress_trace(trace_s, target_ratio=2.0)
        ratio = problem("cg", "W").na / problem("cg", "S").na
        # niter differs too: scale iterations by running the projected
        # signature as-is (same niter for S and W in the table).
        projected = project_datasize(sig, ratio, compute_exponent=1.0,
                                     surface_exponent=1.0)
        prog = skeleton_program(scale_signature(projected, 1.0))
        projected_time = run_program(prog, cluster).elapsed
        actual_w = run_program(get_program("cg", "W", 4), cluster).elapsed
        assert projected_time == pytest.approx(actual_w, rel=0.4)

    def test_invalid_ratio(self):
        sig = self._signature()
        with pytest.raises(SkeletonError):
            project_datasize(sig, 0.0)


class TestSimilarity:
    def test_self_distance_zero(self, cg_s_trace):
        trace, _ = cg_s_trace
        assert call_mix_distance(trace, trace) == 0.0
        assert traffic_profile_distance(trace, trace) == 0.0

    def test_skeleton_resembles_application(self, cg_s_trace):
        trace, _ = cg_s_trace
        cluster = paper_testbed()
        bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
        skel_trace, _ = trace_program(bundle.program, cluster)
        sim = skeleton_similarity(trace, skel_trace)
        assert sim["call_mix"] < 0.2
        assert sim["traffic_profile"] < 0.25
        assert sim["activity"] < 0.1

    def test_different_apps_are_distant(self):
        cluster = paper_testbed()
        t1, _ = trace_program(get_program("is", "S", 4), cluster)
        t2, _ = trace_program(get_program("lu", "S", 4), cluster)
        assert call_mix_distance(t1, t2) > 0.5

    def test_empty_trace_rejected(self):
        from repro.trace.records import Trace

        empty = Trace(program_name="e", scenario_name="d", nranks=1)
        empty.finish_times = [1.0]
        with pytest.raises(TraceError):
            call_mix_distance(empty, empty)
