"""Identity-skeleton property, heterogeneous clusters, and placement."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NodeSpec, NetworkSpec, paper_testbed
from repro.core import build_skeleton
from repro.sim import Compute, Program, run_program
from repro.trace import trace_program
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce, stencil2d


class TestIdentitySkeleton:
    """A skeleton with K=1 replays the application's entire signature:
    its execution time must reproduce the traced time almost exactly —
    the strongest end-to-end check of trace -> signature -> program."""

    @pytest.mark.parametrize("bench", ["cg", "is", "mg", "lu"])
    def test_k1_reproduces_application_time(self, bench):
        cluster = paper_testbed()
        trace, ded = trace_program(get_program(bench, "S", 4), cluster)
        bundle = build_skeleton(trace, scaling_factor=1.0, warn=False)
        replay = run_program(bundle.program, cluster)
        assert replay.elapsed == pytest.approx(ded.elapsed, rel=0.05)

    def test_k1_preserves_message_count_structure(self):
        cluster = paper_testbed()
        app = stencil2d(iterations=20)
        trace, ded = trace_program(app, cluster)
        original = run_program(app, cluster)
        bundle = build_skeleton(trace, scaling_factor=1.0, warn=False)
        replay = run_program(bundle.program, cluster)
        assert replay.n_messages == original.n_messages


class TestHeterogeneousNodes:
    def test_slow_node_stretches_compute(self):
        nodes = (
            NodeSpec("fast", ncpus=2, speed=1.0),
            NodeSpec("slow", ncpus=2, speed=0.5),
        )
        cluster = Cluster(nodes=nodes)

        def gen(rank, size):
            yield Compute(1.0)

        result = run_program(Program("c", 2, gen), cluster)
        assert result.finish_times[0] == pytest.approx(1.0, rel=1e-6)
        assert result.finish_times[1] == pytest.approx(2.0, rel=1e-6)

    def test_skeleton_feels_heterogeneity(self):
        """A skeleton probed on a slower node set predicts the slower
        execution — the cross-node-speed case the framework handles
        (unlike cross-memory-architecture, see repro.ext.memmodel)."""
        fast = Cluster.uniform(4, speed=1.0)
        slow = Cluster.uniform(4, speed=0.5)
        app = bsp_allreduce(supersteps=30)
        trace, ded = trace_program(app, fast)
        bundle = build_skeleton(trace, scaling_factor=5.0, warn=False)
        t_fast = run_program(bundle.program, fast).elapsed
        t_slow = run_program(bundle.program, slow).elapsed
        app_slow = run_program(app, slow).elapsed
        # Skeleton ratio predicts the slow cluster's app time.
        predicted = t_slow * (ded.elapsed / t_fast)
        assert predicted == pytest.approx(app_slow, rel=0.1)


class TestPlacement:
    def test_two_ranks_one_node_no_contention_on_dual_cpu(self):
        cluster = paper_testbed()

        def gen(rank, size):
            yield Compute(0.5)

        result = run_program(
            Program("c", 2, gen), cluster, placement=[0, 0]
        )
        for t in result.finish_times:
            assert t == pytest.approx(0.5, rel=1e-6)

    def test_three_ranks_one_dual_cpu_node_contend(self):
        cluster = paper_testbed()

        def gen(rank, size):
            yield Compute(0.5)

        result = run_program(
            Program("c", 3, gen), cluster, placement=[0, 0, 0]
        )
        for t in result.finish_times:
            assert t == pytest.approx(0.75, rel=1e-6)  # 2/3 CPU each

    def test_colocated_ranks_use_memory_path(self):
        """Intra-node messages bypass the NIC: throttling the NIC must
        not slow them."""
        from repro.cluster import Scenario
        from repro.sim import Recv, Send

        cluster = paper_testbed()

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=5_000_000, tag=1)
            else:
                yield Recv(source=0, nbytes=5_000_000, tag=1)

        prog = Program("intra", 2, gen)
        scen = Scenario(name="thr", nic_caps={0: 1.25e6})
        together = run_program(prog, cluster, scen, placement=[0, 0]).elapsed
        apart = run_program(prog, cluster, scen, placement=[0, 1]).elapsed
        assert together < apart / 100

    def test_invalid_placement_rejected(self):
        from repro.errors import SimulationError

        cluster = paper_testbed()

        def gen(rank, size):
            yield Compute(0.1)

        with pytest.raises(SimulationError):
            run_program(Program("c", 2, gen), cluster, placement=[0])
        with pytest.raises(SimulationError):
            run_program(Program("c", 2, gen), cluster, placement=[0, 9])
