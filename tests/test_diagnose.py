"""Diagnosis subsystem tests: conservation invariant, wait-state
classification, critical-path extraction, divergence explanation,
campaign integration, and determinism."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.cluster import paper_scenarios, paper_testbed
from repro.core import build_skeleton
from repro.diagnose import (
    COLLECTIVE_WAIT,
    DiagnosisCollector,
    DivergenceReport,
    LATE_RECEIVER,
    LATE_SENDER,
    campaign_divergence,
    diagnose_run,
    explain_divergence,
    extract_critical_path,
)
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.obs.metrics import enabled_metrics
from repro.sim import Barrier, Compute, Program, Recv, Send, run_program
from repro.trace import trace_program
from repro.workloads import available_benchmarks, get_program

NAS = ("bt", "cg", "is", "lu", "mg", "sp")

#: Comfortably above the eager threshold: forces rendezvous.
RENDEZVOUS_BYTES = 10 * 1024 * 1024


def scenario(name: str):
    return {s.name: s for s in paper_scenarios(steady=True)}[name]


def late_sender_program() -> Program:
    """Rank 1 posts its receive long before rank 0 sends."""

    def gen(rank: int, size: int):
        if rank == 0:
            yield Compute(0.05)
            yield Send(dest=1, nbytes=100, tag=1)
        else:
            yield Recv(source=0, tag=1)

    return Program("late-sender", 2, gen)


def late_receiver_program() -> Program:
    """Rank 0's rendezvous send blocks on rank 1's late receive."""

    def gen(rank: int, size: int):
        if rank == 0:
            yield Send(dest=1, nbytes=RENDEZVOUS_BYTES, tag=1)
        else:
            yield Compute(0.05)
            yield Recv(source=0, tag=1)

    return Program("late-receiver", 2, gen)


def imbalanced_barrier_program() -> Program:
    """Rank 0 arrives at the barrier 50 ms after everyone else."""

    def gen(rank: int, size: int):
        if rank == 0:
            yield Compute(0.05)
        yield Barrier()

    return Program("imbalanced-barrier", 4, gen)


class TestConservation:
    @pytest.mark.parametrize("bench", NAS)
    def test_all_nas_workloads(self, cluster, bench):
        """compute + wait + transfer + collective == finish, per rank."""
        program = get_program(bench, "S", 4)
        collector, result = diagnose_run(program, cluster)
        breakdown = collector.breakdown()
        for rank in range(result.nranks):
            total = sum(breakdown[rank].values())
            assert total == pytest.approx(
                result.finish_times[rank], abs=1e-9
            )
            assert all(v >= 0 for v in breakdown[rank].values())

    def test_under_contention(self, cluster):
        program = get_program("cg", "S", 4)
        collector, result = diagnose_run(
            program, cluster, scenario("cpu-one-node"), seed=7
        )
        breakdown = collector.breakdown()
        for rank in range(result.nranks):
            assert sum(breakdown[rank].values()) == pytest.approx(
                result.finish_times[rank], abs=1e-9
            )

    def test_detailed_leaves_sum_to_top_level(self, cluster):
        program = get_program("lu", "S", 4)
        collector, _ = diagnose_run(program, cluster)
        top = collector.breakdown()
        detail = collector.detailed_breakdown()
        for rank, cats in detail.items():
            assert top[rank]["wait"] == pytest.approx(
                cats["wait_late_sender"] + cats["wait_late_receiver"]
            )
            assert top[rank]["transfer"] == pytest.approx(
                cats["transfer_eager"] + cats["transfer_rendezvous"]
            )
            # The imbalance refinement never exceeds collective time.
            assert cats["collective_wait"] <= cats["collective"] + 1e-12

    def test_recording_does_not_alter_run(self, cluster):
        program = get_program("mg", "S", 4)
        baseline = run_program(program, cluster)
        _, recorded = diagnose_run(program, cluster)
        assert recorded == baseline


class TestWaitStates:
    def test_late_sender_classified(self, cluster):
        collector, _ = diagnose_run(late_sender_program(), cluster)
        detail = collector.detailed_breakdown()
        assert detail[1]["wait_late_sender"] == pytest.approx(0.05, rel=0.05)
        assert detail[1]["wait_late_receiver"] == 0.0
        kinds = {ws.kind for ws in collector.wait_spans}
        assert LATE_SENDER in kinds

    def test_late_receiver_classified(self, cluster):
        collector, _ = diagnose_run(late_receiver_program(), cluster)
        detail = collector.detailed_breakdown()
        assert detail[0]["wait_late_receiver"] == pytest.approx(0.05, rel=0.05)
        assert detail[0]["transfer_rendezvous"] > 0
        kinds = {ws.kind for ws in collector.wait_spans}
        assert LATE_RECEIVER in kinds

    def test_collective_imbalance_classified(self, cluster):
        collector, _ = diagnose_run(imbalanced_barrier_program(), cluster)
        totals = collector.wait_state_totals()
        # Ranks 1-3 each wait ~50ms for rank 0 to reach the barrier.
        assert totals[COLLECTIVE_WAIT] == pytest.approx(0.15, rel=0.05)
        detail = collector.detailed_breakdown()
        assert detail[0]["collective_wait"] == pytest.approx(0.0, abs=1e-6)
        for rank in (1, 2, 3):
            assert detail[rank]["collective_wait"] == pytest.approx(
                0.05, rel=0.05
            )

    def test_edges_cover_all_messages(self, cluster):
        program = get_program("cg", "S", 4)
        collector, result = diagnose_run(program, cluster)
        assert len(collector.edges) == result.n_messages
        for edge in collector.edges:
            assert edge.t_delivered >= edge.t_sent >= 0

    def test_metrics_emitted(self, cluster):
        with enabled_metrics() as m:
            diagnose_run(late_sender_program(), cluster)
        snap = m.snapshot()
        assert snap["diagnose.runs"]["value"] == 1
        assert snap["diagnose.edges"]["value"] >= 1
        labels = snap["diagnose.wait_seconds"]["labels"]
        assert any(LATE_SENDER in k for k in labels)


class TestCriticalPath:
    @pytest.mark.parametrize("bench", NAS)
    def test_length_equals_makespan(self, cluster, bench):
        program = get_program(bench, "S", 4)
        collector, result = diagnose_run(program, cluster)
        path = extract_critical_path(collector)
        assert path.makespan == result.elapsed
        assert path.length == pytest.approx(result.elapsed, abs=1e-9)

    def test_segments_tile_chronologically(self, cluster):
        collector, result = diagnose_run(
            get_program("cg", "S", 4), cluster, scenario("link-one"), seed=2
        )
        path = extract_critical_path(collector)
        cursor = 0.0
        for seg in path.segments:
            assert seg.t_start == pytest.approx(cursor, abs=1e-9)
            assert seg.duration > 0
            cursor = seg.t_end
        assert cursor == pytest.approx(result.elapsed, abs=1e-9)

    def test_attribution_views_conserve_length(self, cluster):
        collector, result = diagnose_run(get_program("mg", "S", 4), cluster)
        path = extract_critical_path(collector)
        for view in (path.by_op(), path.by_rank(), path.by_location()):
            assert sum(view.values()) == pytest.approx(
                result.elapsed, abs=1e-9
            )

    def test_zero_latency_network_terminates(self, fast_network_cluster):
        """Zero-latency flights must not hang the backward walk."""
        program = get_program("cg", "S", 4)
        collector, result = diagnose_run(program, fast_network_cluster)
        path = extract_critical_path(collector)
        assert path.length == pytest.approx(result.elapsed, abs=1e-9)

    def test_render_lists_top_locations(self, cluster):
        collector, _ = diagnose_run(get_program("cg", "S", 4), cluster)
        text = extract_critical_path(collector).render()
        assert "critical path" in text and "@rank" in text


class TestChromeTraceMerge:
    def test_wait_state_tracks_exported(self, cluster):
        from tests.test_obs_timeline import assert_chrome_schema

        collector, _ = diagnose_run(
            late_sender_program(), cluster
        )
        trace = collector.to_chrome_trace()
        assert_chrome_schema(trace)
        events = trace["traceEvents"]
        wait_spans = [
            e for e in events if e["ph"] == "X" and e.get("cat") == "wait"
        ]
        assert wait_spans and all(e["pid"] == 3 for e in wait_spans)
        counters = [e for e in events if e["name"] == "waiting ranks"]
        assert counters
        assert {e["args"]["ranks"] for e in counters} >= {0, 1}
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "wait states" in names


class TestDivergence:
    @pytest.fixture(scope="class")
    def explained(self):
        cluster = paper_testbed()
        program = get_program("cg", "S", 4)
        trace, dedicated = trace_program(program, cluster)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            bundle = build_skeleton(trace, target_seconds=0.05)
        report = explain_divergence(
            program,
            bundle.program,
            cluster,
            scenario("cpu-one-node"),
            app_dedicated_seconds=dedicated.elapsed,
        )
        return program, bundle, dedicated, report

    def test_contributions_sum_to_error(self, explained):
        _, _, _, report = explained
        assert sum(report.contributions.values()) == pytest.approx(
            report.error_seconds, abs=1e-9
        )
        assert report.error_seconds == pytest.approx(
            report.predicted_seconds - report.actual_seconds, abs=1e-12
        )

    def test_contribution_names(self, explained):
        _, _, _, report = explained
        assert set(report.contributions) == {
            "contention_skew",
            "p2p_wait_skew",
            "unscaled_latency",
            "protocol_switch",
            "collective_imbalance",
        }

    def test_deterministic_and_roundtrips(self, explained, cluster):
        program, bundle, dedicated, report = explained
        again = explain_divergence(
            program,
            bundle.program,
            cluster,
            scenario("cpu-one-node"),
            app_dedicated_seconds=dedicated.elapsed,
        )
        assert again.to_json() == report.to_json()
        restored = DivergenceReport.from_dict(
            json.loads(report.to_json())
        )
        assert restored.to_json() == report.to_json()

    def test_render(self, explained):
        _, _, _, report = explained
        text = report.render()
        assert "contribution" in text and "total" in text
        assert "K=" in text

    def test_critical_path_summary_present(self, explained):
        _, _, _, report = explained
        cp = report.app_critical_path
        assert cp is not None
        assert cp["length"] == pytest.approx(cp["makespan"], abs=1e-9)


class TestCampaignDivergence:
    CONFIG = ExperimentConfig(
        benchmarks=("cg",),
        klass="S",
        baseline_klass="S",
        skeleton_targets=(0.05,),
        steady=True,
    )

    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("diag-campaign")
        runner = ExperimentRunner(self.CONFIG, cache_dir=str(cache))
        results = runner.run()
        return runner, results

    def test_explained_error_matches_results(self, campaign):
        runner, results = campaign
        reports = campaign_divergence(runner, results)
        assert set(reports) == {"cg"}
        assert set(reports["cg"]) == set(results.scenario_names)
        for scen, report in reports["cg"].items():
            assert report.error_percent == pytest.approx(
                results.skeleton_error("cg", 0.05, scen), abs=1e-9
            )
            assert report.actual_seconds == pytest.approx(
                results.apps["cg"]["scenarios"][scen], abs=1e-12
            )
            assert sum(report.contributions.values()) == pytest.approx(
                report.error_seconds, abs=1e-9
            )

    def test_reports_persisted_and_listed(self, campaign):
        runner, results = campaign
        campaign_divergence(runner, results)
        stages = {e["stage"] for e in runner.store.entries()}
        assert "diagnosis" in stages
        # Warm reload returns byte-identical reports without rerunning.
        first = campaign_divergence(runner, results)
        second = campaign_divergence(runner, results)
        for bench in first:
            for scen in first[bench]:
                assert (
                    first[bench][scen].to_json()
                    == second[bench][scen].to_json()
                )


class TestCLI:
    def test_diagnose_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "diag.json"
        timeline = tmp_path / "tl.json"
        rc = main(
            [
                "diagnose", "cg", "--klass", "S",
                "--target", "0.05",
                "-o", str(out), "--timeline", str(timeline),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "time-resolved breakdown" in text
        assert "critical path" in text
        doc = json.loads(out.read_text())
        assert set(doc) >= {
            "breakdown", "wait_states", "critical_path", "divergence"
        }
        contributions = doc["divergence"]["contributions"]
        assert sum(contributions.values()) == pytest.approx(
            doc["divergence"]["error_seconds"], abs=1e-9
        )
        tl = json.loads(timeline.read_text())
        assert any(
            e.get("cat") == "wait" for e in tl["traceEvents"]
        )

    def test_metrics_out_persists_snapshot(self, tmp_path, capsys,
                                           monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc = main(
            [
                "--metrics-out", str(tmp_path / "m.json"),
                "timeline", "cg", "--klass", "S", "--samples", "0",
                "-o", str(tmp_path / "t.json"),
            ]
        )
        assert rc == 0
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        stages = {e["stage"] for e in store.entries()}
        assert "metrics" in stages
        err = capsys.readouterr().err
        assert "metrics snapshot persisted" in err


def test_benchmarks_available():
    assert set(NAS) <= set(available_benchmarks())
