"""Regenerate the golden timeline file after an intentional format
change to the Chrome-trace exporter::

    PYTHONPATH=src python tests/data/regen_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from test_obs_timeline import GOLDEN, golden_program, record_run  # noqa: E402


def main() -> None:
    recorder, result = record_run(golden_program())
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN, "w", encoding="utf-8") as fh:
        json.dump(recorder.to_chrome_trace(), fh, indent=1)
        fh.write("\n")
    print(f"wrote {GOLDEN} (run elapsed {result.elapsed:.6f}s)")


if __name__ == "__main__":
    main()
