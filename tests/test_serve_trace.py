"""End-to-end request tracing through the serving stack.

The acceptance spine of ``repro.obs.tracing``: spans propagate client
→ server → service → forked worker under one trace id; coalesced
followers link to their leader; a worker that hangs still yields a
flight-recorder dump whose span tree links all three layers; and the
prediction payload stays byte-identical with tracing on, whichever
path computed it.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.obs.log import set_log_stream
from repro.obs.tracing import (
    Tracer,
    build_span_forest,
    enabled_tracing,
    new_root_context,
    set_tracer,
)
from repro.parallel.supervisor import SupervisorConfig
from repro.serve import PredictionService, WorkerPool
from repro.store import canonical_json
from tests.test_serve_transport import ServerThread

CG_S = {"bench": "cg", "klass": "S", "nprocs": 4, "target": 0.05}
REQUEST = {**CG_S, "scenario": "cpu-one-node"}


def _hang_forever(params, cache, cluster, bundle_cache=None):
    time.sleep(60)


@pytest.fixture
def service(tmp_path):
    return PredictionService(cache_dir=str(tmp_path / "store"))


class TestWireTracing:
    def test_traced_request_links_all_layers(self, service):
        with enabled_tracing():
            with ServerThread(service) as st:
                ctx = new_root_context(seed="e2e")
                reply = st.client().call(
                    "predict", REQUEST, trace=ctx.to_dict()
                )
        assert reply["ok"]
        trace = reply["trace"]
        assert trace["trace_id"] == ctx.trace_id
        spans = trace["spans"]
        by_name = {s["name"]: s for s in spans}
        # One trace id stitches every layer together.
        assert {s["trace_id"] for s in spans} == {ctx.trace_id}
        server = by_name["server.request"]
        assert server["parent_id"] == ctx.span_id
        assert by_name["service.predict"]["parent_id"] == server["span_id"]
        compute = by_name["predict.compute"]
        assert compute["parent_id"] == by_name["service.predict"]["span_id"]
        assert {"predict.skel_dedicated", "predict.probe"} <= set(by_name)

    def test_untraced_request_reply_has_no_trace_key(self, service):
        with enabled_tracing():
            with ServerThread(service) as st:
                reply = st.client().call("ping")
        assert reply["ok"] and "trace" not in reply

    def test_cold_and_warm_replies_stay_byte_identical(self, service):
        """The CI smoke's byte-equality contract survives tracing:
        untraced predict replies carry no trace data, so cold and warm
        answers are the same bytes even with the tracer on."""
        with enabled_tracing():
            with ServerThread(service) as st:
                client = st.client()
                cold = client.call("predict", REQUEST)
                warm = client.call("predict", REQUEST)
        assert cold["ok"] and warm["ok"]
        assert canonical_json(cold) == canonical_json(warm)

    def test_tracez_and_slowz_over_tcp(self, service):
        with enabled_tracing():
            with ServerThread(service) as st:
                client = st.client()
                ctx = new_root_context(seed="tz")
                client.call("predict", REQUEST, trace=ctx.to_dict())
                tz = client.call("tracez")
                assert tz["ok"] and tz["result"]["enabled"]
                assert tz["result"]["recorded_spans"] >= 3
                tree = client.call(
                    "tracez", {"trace_id": ctx.trace_id}
                )["result"]
                assert tree["spans"]
                assert tree["tree"].startswith("server.request")
                sz = client.call("slowz", {"k": 2})["result"]
                assert sz["enabled"]
                assert sz["slowest"]
                slowest = sz["slowest"][0]
                assert slowest["seconds"] > 0
                assert "service.predict" in slowest["stages"]

    def test_tracez_reports_disabled_without_tracer(self, service):
        with ServerThread(service) as st:
            tz = st.client().call("tracez")
            sz = st.client().call("slowz")
        assert tz["ok"] and tz["result"] == {
            "enabled": False, "spans": [], "events": []
        }
        assert sz["ok"] and sz["result"] == {
            "enabled": False, "slowest": []
        }

    def test_access_log_emits_one_line_per_request(self, service):
        buf = io.StringIO()
        prev = set_log_stream(buf)
        try:
            with ServerThread(service, access_log=True) as st:
                st.client().call("ping", request_id="r1")
        finally:
            set_log_stream(prev)
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        access = [l for l in lines if l.get("event") == "access"]
        assert len(access) == 1
        assert access[0]["verb"] == "ping"
        assert access[0]["code"] == 200
        assert access[0]["ok"] is True
        assert access[0]["id"] == "r1"
        assert access[0]["seconds"] >= 0


class TestCoalescedFollower:
    def test_follower_span_links_to_leader(self, service):
        release = threading.Event()

        def slow_compute(req, cache, cluster, bundles):
            assert release.wait(10)
            return {"value": 1}

        service._compute = slow_compute
        replies = []
        with enabled_tracing() as tracer:
            t1 = threading.Thread(
                target=lambda: replies.append(
                    service.handle("predict", REQUEST)
                )
            )
            t1.start()
            time.sleep(0.3)  # let the leader claim the key
            t2 = threading.Thread(
                target=lambda: replies.append(
                    service.handle("predict", REQUEST)
                )
            )
            t2.start()
            time.sleep(0.3)
            release.set()
            t1.join(10)
            t2.join(10)
            spans = [
                s for s in tracer.recorder.spans()
                if s["name"] == "service.predict"
            ]
        assert all(r["ok"] for r in replies)
        assert len(spans) == 2
        followers = [
            s for s in spans if (s.get("attrs") or {}).get("coalesced")
        ]
        assert len(followers) == 1
        leader = next(s for s in spans if s is not followers[0])
        assert followers[0]["attrs"]["leader_span_id"] == leader["span_id"]


class TestWorkerTracing:
    def test_pooled_spans_ship_back_and_payloads_match(self, tmp_path):
        """The forked worker's spans land in the parent's flight
        recorder under the caller's trace id — and the payload bytes
        match the warm in-process and offline compute paths exactly
        (tracing enabled throughout)."""
        from repro.cluster.topology import paper_testbed
        from repro.predict import online
        from repro.store.memo import PipelineCache
        from repro.store.store import ArtifactStore

        cache_dir = str(tmp_path / "store")
        tracer = Tracer(enabled=True)
        prev = set_tracer(tracer)
        try:
            # Install the tracer *before* the fork so workers inherit it.
            pool = WorkerPool(cache_dir=cache_dir, workers=1)
            service = PredictionService(cache_dir=cache_dir, pool=pool)
            try:
                cold = service.handle("predict", REQUEST)
                assert cold["ok"]
                worker_spans = [
                    s for s in tracer.recorder.spans()
                    if s["component"] == "worker"
                ]
                assert len(worker_spans) == 1
                service_span = next(
                    s for s in tracer.recorder.spans()
                    if s["name"] == "service.predict"
                )
                assert (
                    worker_spans[0]["trace_id"] == service_span["trace_id"]
                )
                assert (
                    worker_spans[0]["parent_id"] == service_span["span_id"]
                )
                # The worker's own predict.* stage spans came along too.
                shipped = {
                    s["name"] for s in tracer.recorder.trace_spans(
                        service_span["trace_id"]
                    )
                }
                assert "predict.compute" in shipped

                warm = service.handle("predict", REQUEST)
                assert warm["ok"]
            finally:
                service.close()

            offline = online.compute_prediction(
                online.normalize_request(
                    "cg", "S", 4, target=0.05, scenario="cpu-one-node"
                ),
                PipelineCache(ArtifactStore(cache_dir), paper_testbed()),
                paper_testbed(),
            )
        finally:
            set_tracer(prev)
        assert (
            canonical_json(cold["result"])
            == canonical_json(warm["result"])
            == canonical_json(offline)
        )

    def test_worker_timeout_dumps_linked_span_tree(
        self, tmp_path, monkeypatch
    ):
        """ACCEPTANCE: a predict that hangs in a worker produces a
        flight-recorder dump whose span tree links server → service →
        worker spans under one trace id."""
        import repro.predict.online as online

        monkeypatch.setattr(online, "compute_prediction", _hang_forever)
        dump_path = tmp_path / "flight.json"
        tracer = Tracer(enabled=True, dump_path=str(dump_path))
        prev = set_tracer(tracer)
        try:
            pool = WorkerPool(
                cache_dir=str(tmp_path / "store"),
                workers=1,
                supervisor=SupervisorConfig(
                    task_timeout=0.6,
                    grace_seconds=0.2,
                    heartbeat_interval=0.1,
                ),
            )
            service = PredictionService(
                cache_dir=str(tmp_path / "store"), pool=pool
            )
            with ServerThread(service) as st:
                ctx = new_root_context(seed="hang")
                reply = st.client().call(
                    "predict", REQUEST, trace=ctx.to_dict()
                )
                # Read before shutdown: drain writes its own dump.
                data = json.loads(dump_path.read_text())
        finally:
            set_tracer(prev)
        assert not reply["ok"] and reply["code"] == 500
        assert reply["error"]["type"] == "TaskTimeoutError"

        assert data["reason"] == "error_reply"
        spans = [
            s for s in data["spans"] if s.get("trace_id") == ctx.trace_id
        ]
        by_name = {s["name"]: s for s in spans}
        server = by_name["server.request"]
        svc = by_name["service.predict"]
        worker = by_name["worker.compute"]
        assert server["parent_id"] == ctx.span_id
        assert svc["parent_id"] == server["span_id"]
        assert worker["parent_id"] == svc["span_id"]
        assert worker["status"] == "timeout"
        assert worker["attrs"]["synthesized"] is True
        assert server["status"] == "error" and svc["status"] == "error"
        # The three layers nest into a single tree under the client's
        # (unretained) root span.
        forest = build_span_forest(spans)
        roots = [r["span"]["name"] for r in forest]
        assert roots == ["server.request"]
        # A worker_timeout event marks the synthesis in the dump too.
        assert any(
            e.get("name") == "worker_timeout" for e in data["events"]
        )
