"""Fault-injection subsystem tests: plan model, determinism, and the
engine-level effect of every event kind."""

from __future__ import annotations

import pytest

from repro.cluster import Scenario, paper_testbed, volatile_scenarios
from repro.cluster.contention import DEDICATED
from repro.errors import DeadlockError, FaultError, InjectedCrashError
from repro.faults import (
    FaultPlan,
    LinkDegrade,
    MessageDrop,
    NodeSlowdown,
    RankCrash,
    RankStall,
    cpu_burst_plan,
    flapping_link_plan,
    stock_plans,
)
from repro.obs import TimelineRecorder, enabled_metrics
from repro.sim import Compute, Program, Recv, Send, run_program


def pingpong(iters: int = 20, nbytes: int = 100_000) -> Program:
    def gen(rank: int, size: int):
        for _ in range(iters):
            yield Compute(0.05)
            if rank == 0:
                yield Send(dest=1, nbytes=nbytes)
                yield Recv(source=1)
            else:
                yield Recv(source=0)
                yield Send(dest=0, nbytes=nbytes)

    return Program("pp", 2, gen)


@pytest.fixture
def pp_baseline(cluster):
    return run_program(pingpong(), cluster, seed=7)


class TestPlanModel:
    def test_bad_windows_rejected(self):
        with pytest.raises(FaultError):
            RankStall(rank=0, t_start=-1.0, duration=1.0)
        with pytest.raises(FaultError):
            NodeSlowdown(node=0, t_start=0.0, duration=0.0, factor=0.5)
        with pytest.raises(FaultError):
            LinkDegrade(node=0, t_start=0.0, duration=1.0, factor=0.0)
        with pytest.raises(FaultError):
            MessageDrop(t_start=0.0, duration=1.0, prob=1.5, penalty=0.1)
        with pytest.raises(FaultError):
            RankCrash(rank=0, t=1.0, restart_delay=-2.0)

    def test_validate_against_cluster_and_ranks(self):
        plan = FaultPlan(events=(RankStall(rank=5, t_start=0, duration=1),))
        plan.validate_against(nnodes=4)  # ranks unknown: passes
        with pytest.raises(FaultError):
            plan.validate_against(nnodes=4, nranks=4)
        bad_node = FaultPlan(
            events=(NodeSlowdown(node=9, t_start=0, duration=1, factor=0.5),)
        )
        with pytest.raises(FaultError):
            bad_node.validate_against(nnodes=4)

    def test_json_round_trip(self):
        for name, plan in stock_plans(seed=3).items():
            again = FaultPlan.from_json(plan.to_json())
            assert again == plan, name

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("not json")
        with pytest.raises(FaultError):
            FaultPlan.from_json('{"format": 1, "events": [{"kind": "bogus"}]}')

    def test_render_and_describe(self):
        plan = stock_plans()["flapping-link"]
        text = plan.render()
        assert "link_degrade" in text
        assert plan.describe()

    def test_generators_deterministic_in_seed(self):
        assert flapping_link_plan(seed=5) == flapping_link_plan(seed=5)
        assert flapping_link_plan(seed=5) != flapping_link_plan(seed=6)
        assert cpu_burst_plan(seed=5) == cpu_burst_plan(seed=5)
        assert cpu_burst_plan(seed=5) != cpu_burst_plan(seed=6)

    def test_scenario_carries_plan(self, cluster):
        for scen in volatile_scenarios():
            assert not scen.fault_plan.is_empty
            scen.validate_against(cluster)
            assert "event" in scen.describe()


class TestInjectionEffects:
    def test_empty_plan_is_byte_identical(self, cluster, pp_baseline):
        empty = Scenario(name="empty", fault_plan=FaultPlan())
        run = run_program(pingpong(), cluster, empty, seed=7)
        assert run.finish_times == pp_baseline.finish_times
        assert run.n_events == pp_baseline.n_events
        assert run.n_messages == pp_baseline.n_messages

    def test_rank_stall_adds_its_duration(self, cluster, pp_baseline):
        plan = FaultPlan(events=(RankStall(rank=0, t_start=0.1, duration=0.5),))
        run = run_program(
            pingpong(), cluster, Scenario(name="s", fault_plan=plan), seed=7
        )
        assert run.elapsed == pytest.approx(pp_baseline.elapsed + 0.5, rel=1e-6)

    def test_node_slowdown_slows_compute(self, cluster, pp_baseline):
        # Capacity semantics: the factor must cut below the rank's
        # 1-CPU demand on the dual-CPU node to bite.
        plan = FaultPlan(
            events=(NodeSlowdown(node=0, t_start=0.0, duration=100.0,
                                 factor=0.25),)
        )
        run = run_program(
            pingpong(), cluster, Scenario(name="s", fault_plan=plan), seed=7
        )
        assert run.elapsed > pp_baseline.elapsed * 1.5

    def test_link_degrade_slows_messages(self, cluster, pp_baseline):
        plan = FaultPlan(
            events=(LinkDegrade(node=0, t_start=0.0, duration=100.0,
                                factor=0.01),)
        )
        run = run_program(
            pingpong(), cluster, Scenario(name="s", fault_plan=plan), seed=7
        )
        assert run.elapsed > pp_baseline.elapsed * 2

    def test_degrade_window_ends(self, cluster, pp_baseline):
        """A degrade window entirely after the run changes nothing."""
        plan = FaultPlan(
            events=(LinkDegrade(node=0, t_start=1e6, duration=1.0,
                                factor=0.01),)
        )
        run = run_program(
            pingpong(), cluster, Scenario(name="s", fault_plan=plan), seed=7
        )
        assert run.finish_times == pp_baseline.finish_times

    def test_message_drop_penalty(self, cluster, pp_baseline):
        plan = FaultPlan(
            events=(MessageDrop(t_start=0.0, duration=1e6, prob=1.0,
                                penalty=0.2),)
        )
        run = run_program(
            pingpong(), cluster, Scenario(name="s", fault_plan=plan), seed=7
        )
        # 40 messages, each delayed by 0.2s on a serial ping-pong chain.
        assert run.elapsed == pytest.approx(
            pp_baseline.elapsed + 40 * 0.2, rel=1e-3
        )

    def test_crash_raises_structured_error(self, cluster):
        plan = FaultPlan(events=(RankCrash(rank=1, t=0.5),))
        with pytest.raises(InjectedCrashError) as err:
            run_program(
                pingpong(), cluster, Scenario(name="s", fault_plan=plan),
                seed=7,
            )
        assert err.value.rank == 1
        assert err.value.t == pytest.approx(0.5)

    def test_crash_with_restart_delays_run(self, cluster, pp_baseline):
        plan = FaultPlan(
            events=(RankCrash(rank=1, t=0.5, restart_delay=1.0),)
        )
        run = run_program(
            pingpong(), cluster, Scenario(name="s", fault_plan=plan), seed=7
        )
        assert run.elapsed == pytest.approx(pp_baseline.elapsed + 1.0, rel=1e-6)

    def test_same_plan_same_seed_identical(self, cluster):
        scen = Scenario(
            name="volatile",
            fault_plan=FaultPlan(
                name="mix",
                events=(
                    RankStall(rank=0, t_start=0.2, duration=0.1),
                    LinkDegrade(node=1, t_start=0.0, duration=2.0, factor=0.2),
                    MessageDrop(t_start=0.0, duration=5.0, prob=0.3,
                                penalty=0.05),
                ),
            ),
        )
        a = run_program(pingpong(), cluster, scen, seed=11)
        b = run_program(pingpong(), cluster, scen, seed=11)
        assert a.finish_times == b.finish_times
        assert a.n_events == b.n_events
        c = run_program(pingpong(), cluster, scen, seed=12)
        assert c.finish_times != a.finish_times  # drop rng follows the seed

    def test_volatile_scenarios_run_and_slow_things_down(self, cluster):
        base = run_program(pingpong(), cluster, seed=3)
        for scen in volatile_scenarios(seed=1, horizon=10.0):
            run = run_program(pingpong(), cluster, scen, seed=3)
            assert run.elapsed >= base.elapsed


class TestObservability:
    def test_timeline_records_fault_spans(self, cluster):
        plan = FaultPlan(
            events=(
                RankStall(rank=0, t_start=0.1, duration=0.5),
                LinkDegrade(node=0, t_start=0.0, duration=0.4, factor=0.5),
            )
        )
        rec = TimelineRecorder(program_name="pp")
        run_program(
            pingpong(), cluster, Scenario(name="s", fault_plan=plan),
            hook=rec, seed=7,
        )
        kinds = sorted(fs.kind for fs in rec.faults)
        assert kinds == ["link_degrade", "rank_stall"]
        chrome = rec.to_chrome_trace()
        fault_events = [
            e for e in chrome["traceEvents"] if e.get("cat") == "fault"
        ]
        assert len(fault_events) == 2
        assert all(e["pid"] == 2 for e in fault_events)
        assert "fault events: 2" in rec.render_summary()

    def test_metrics_count_fault_events(self, cluster):
        plan = FaultPlan(
            events=(RankStall(rank=0, t_start=0.1, duration=0.5),)
        )
        with enabled_metrics() as registry:
            run_program(
                pingpong(), cluster, Scenario(name="s", fault_plan=plan),
                seed=7,
            )
            snap = registry.snapshot()
        entry = snap["faults.events"]
        assert entry["labels"] == {"kind=rank_stall": 1.0}


class TestDeadlockDiagnostics:
    def test_deadlock_error_names_pending_ops(self, cluster):
        def gen(rank: int, size: int):
            yield Compute(0.01)
            yield Recv(source=1 - rank)

        with pytest.raises(DeadlockError) as err:
            run_program(Program("dead", 2, gen), cluster)
        exc = err.value
        assert exc.blocked_ranks == [0, 1]
        assert set(exc.blocked_ops) == {0, 1}
        assert "Recv(source=1" in exc.blocked_ops[0]
        assert "Recv(source=0" in str(exc)

    def test_stalled_rank_is_not_a_deadlock(self, cluster):
        """A fault window must not trip the deadlock detector while
        every rank is frozen inside it."""
        plan = FaultPlan(
            events=(
                RankStall(rank=0, t_start=0.01, duration=0.3),
                RankStall(rank=1, t_start=0.01, duration=0.3),
            )
        )
        run = run_program(
            pingpong(iters=2), cluster, Scenario(name="s", fault_plan=plan),
            seed=7,
        )
        assert run.elapsed > 0.3
