"""Structural-fidelity checks of the NPB workload models: message
sizes, partners, and call mixes must follow the published
decompositions (this is what 'the trace is faithful' means for
skeleton construction)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.cluster import paper_testbed
from repro.trace import trace_program
from repro.workloads import get_program, problem


@pytest.fixture(scope="module")
def traces():
    cluster = paper_testbed()
    out = {}
    for bench in ("cg", "is", "lu", "mg", "bt", "sp"):
        trace, result = trace_program(get_program(bench, "S", 4), cluster)
        out[bench] = trace
    return out


def calls_of(trace, rank, name):
    return [r for r in trace.rank_records(rank) if r.call == name]


class TestCG:
    def test_transpose_exchange_size(self, traces):
        """The dominant CG message is the na/npcols-double vector
        exchange."""
        params = problem("cg", "S")
        expected = (params.na // 2) * 8
        sizes = {r.nbytes for r in calls_of(traces["cg"], 0, "MPI_Sendrecv")}
        assert expected in sizes

    def test_scalar_reductions_present(self, traces):
        """Dot products travel as 8-byte exchanges (CG uses p2p, not
        MPI collectives, for its reductions)."""
        sizes = [r.nbytes for r in calls_of(traces["cg"], 0, "MPI_Sendrecv")]
        assert sizes.count(8) > 100

    def test_no_collectives_in_iterations(self, traces):
        calls = Counter(r.call for r in traces["cg"].rank_records(0))
        # Only the startup bcast/barriers; reductions are explicit p2p.
        assert calls["MPI_Allreduce"] == 0
        assert calls["MPI_Bcast"] == 1


class TestIS:
    def test_alltoallv_per_iteration(self, traces):
        params = problem("is", "S")
        a2a = calls_of(traces["is"], 0, "MPI_Alltoallv")
        assert len(a2a) == params.niter

    def test_alltoallv_moves_the_keys(self, traces):
        params = problem("is", "S")
        local_bytes = params.total_keys // 4 * params.key_bytes
        for rec in calls_of(traces["is"], 0, "MPI_Alltoallv"):
            # Total sent per rank ~ its local key volume (±8%).
            assert rec.nbytes == pytest.approx(local_bytes, rel=0.12)

    def test_bucket_allreduce_size(self, traces):
        params = problem("is", "S")
        sizes = {r.nbytes for r in calls_of(traces["is"], 0, "MPI_Allreduce")}
        assert params.n_buckets * params.key_bytes in sizes


class TestLU:
    def test_pencil_message_size(self, traces):
        """Wavefront pencils: 5 doubles x boundary cells x K_BLOCK."""
        from repro.workloads.lu import K_BLOCK

        params = problem("lu", "S")
        expected = 5 * (params.nx // 2) * K_BLOCK * 8
        sizes = Counter(r.nbytes for r in calls_of(traces["lu"], 0, "MPI_Send"))
        assert sizes[expected] > 100  # the dominant message

    def test_wavefront_send_count_formula(self, traces):
        """Per SSOR iteration, the south-east corner rank sends one
        pencil pair per k-block of the upper sweep only (it has no
        south/east successors for the lower sweep): nz/K_BLOCK x 2."""
        from repro.workloads.lu import K_BLOCK

        params = problem("lu", "S")
        sends = sum(
            1 for r in traces["lu"].rank_records(3) if r.call == "MPI_Send"
        )
        expected_per_iter = (params.nz // K_BLOCK) * 2
        assert sends / params.niter == pytest.approx(expected_per_iter)

    def test_face_exchange_size(self, traces):
        params = problem("lu", "S")
        expected = 5 * (params.nx // 2) * params.nz * 8
        sizes = {r.nbytes for r in calls_of(traces["lu"], 0, "MPI_Sendrecv")}
        assert expected in sizes


class TestMG:
    def test_halo_sizes_span_levels(self, traces):
        """MG faces shrink ~4x per level: the trace must contain a
        wide range of message sizes."""
        sizes = sorted({
            r.nbytes for r in calls_of(traces["mg"], 0, "MPI_Isend")
        })
        assert len(sizes) >= 3
        assert sizes[-1] >= 16 * sizes[0]

    def test_finest_face_size(self, traces):
        params = problem("mg", "S")
        expected = (params.nx // 2) * params.nz * 8
        sizes = {r.nbytes for r in calls_of(traces["mg"], 0, "MPI_Isend")}
        assert expected in sizes


class TestAdi:
    @pytest.mark.parametrize("bench", ["bt", "sp"])
    def test_rhs_face_exchange(self, traces, bench):
        params = problem(bench, "S")
        expected = 5 * (params.nx // 2) * params.nz * 8
        sizes = {r.nbytes for r in calls_of(traces[bench], 0, "MPI_Sendrecv")}
        assert expected in sizes

    def test_bt_solver_messages_bigger_than_sp(self, traces):
        """BT moves 5x5 blocks (240 B/cell) vs SP's scalars (80 B/cell):
        BT's largest pipeline message must be ~3x SP's."""
        def max_send(bench):
            return max(
                r.nbytes for r in calls_of(traces[bench], 0, "MPI_Send")
            )

        assert max_send("bt") == pytest.approx(3 * max_send("sp"), rel=0.01)

    @pytest.mark.parametrize("bench", ["bt", "sp"])
    def test_pipeline_chunk_counts(self, traces, bench):
        from repro.workloads.adi import PIPELINE_CHUNKS

        params = problem(bench, "S")
        # Rank 0 (corner) sends one forward chunk per pipeline stage in
        # x and y -> 2 * chunks per iteration, plus receives.
        sends = calls_of(traces[bench], 0, "MPI_Send")
        per_iter = len(sends) / params.niter
        assert per_iter == pytest.approx(2 * PIPELINE_CHUNKS, rel=0.1)


class TestCrossBenchmark:
    def test_comm_fraction_ordering_class_b_shape(self, traces):
        """Within Class S the per-call latency dominates, but the call
        mixes must already differ strongly across benchmarks —
        that diversity is why Average Prediction fails."""
        mixes = {
            b: Counter(r.call for r in traces[b].rank_records(0))
            for b in traces
        }
        assert mixes["is"]["MPI_Alltoallv"] > 0
        assert mixes["cg"]["MPI_Alltoallv"] == 0
        assert mixes["mg"]["MPI_Waitall"] > 0
        assert mixes["lu"]["MPI_Recv"] > 0 and mixes["mg"]["MPI_Recv"] == 0
