"""Trace layer tests: records, tracer semantics, file I/O, analysis."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.errors import TraceError
from repro.sim import Compute, Program, Recv, Send, Barrier
from repro.trace import (
    Trace,
    TraceRecord,
    activity_breakdown,
    read_trace,
    trace_program,
    trace_stats,
    write_trace,
)
from repro.workloads.synthetic import bsp_allreduce


class TestTraceRecord:
    def test_duration(self):
        r = TraceRecord("MPI_Send", {"peer": 1, "bytes": 10}, 1.0, 1.5)
        assert r.duration == pytest.approx(0.5)
        assert r.nbytes == 10
        assert r.peer == 1

    def test_inverted_interval_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord("MPI_Send", {}, 2.0, 1.0)

    def test_peer_falls_back_to_root(self):
        r = TraceRecord("MPI_Bcast", {"root": 2, "bytes": 10}, 0.0, 0.1)
        assert r.peer == 2

    def test_peer_default(self):
        r = TraceRecord("MPI_Barrier", {}, 0.0, 0.1)
        assert r.peer == -1


class TestTracer:
    def test_records_blocking_call_interval(self, cluster, pingpong_program):
        trace, result = trace_program(pingpong_program, cluster)
        recs0 = trace.rank_records(0)
        assert [r.call for r in recs0] == ["MPI_Send", "MPI_Recv"]
        send = recs0[0]
        # The send starts after rank 0's 10ms compute phase.
        assert send.t_start == pytest.approx(0.01, abs=1e-5)
        assert send.t_end >= send.t_start

    def test_compute_gap_reconstruction(self, cluster, pingpong_program):
        trace, _ = trace_program(pingpong_program, cluster)
        recs1 = trace.rank_records(1)
        # Rank 1: Recv then (0.02 compute) then Send.
        assert [r.call for r in recs1] == ["MPI_Recv", "MPI_Send"]
        gap = recs1[1].t_start - recs1[0].t_end
        assert gap == pytest.approx(0.02, rel=1e-3)

    def test_collectives_recorded_as_single_calls(self, cluster):
        def gen(rank, size):
            yield Barrier()

        trace, _ = trace_program(Program("b", 4, gen), cluster)
        for rank in range(4):
            assert [r.call for r in trace.rank_records(rank)] == ["MPI_Barrier"]

    def test_finish_times_cover_records(self, cluster, pingpong_program):
        trace, result = trace_program(pingpong_program, cluster)
        trace.validate()
        assert trace.elapsed == pytest.approx(result.elapsed, abs=1e-5)

    def test_trace_does_not_perturb_timing(self, cluster):
        from repro.sim import run_program

        prog = bsp_allreduce(supersteps=10)
        untraced = run_program(prog, cluster)
        _, traced = trace_program(prog, cluster)
        assert traced.elapsed == pytest.approx(untraced.elapsed, rel=1e-12)


class TestTraceIO:
    def test_round_trip(self, cluster, pingpong_program, tmp_path):
        trace, _ = trace_program(pingpong_program, cluster)
        path = tmp_path / "t.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.program_name == trace.program_name
        assert loaded.nranks == trace.nranks
        assert loaded.finish_times == trace.finish_times
        for rank in range(trace.nranks):
            a, b = trace.rank_records(rank), loaded.rank_records(rank)
            assert len(a) == len(b)
            for ra, rb in zip(a, b):
                assert ra.call == rb.call
                assert dict(ra.params) == dict(rb.params)
                assert ra.t_start == rb.t_start
                assert ra.t_end == rb.t_end

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_format_version_rejected(self, tmp_path):
        path = tmp_path / "v99.trace"
        path.write_text('{"format": 99, "nranks": 1}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_out_of_range_rank_rejected(self, tmp_path):
        path = tmp_path / "rank.trace"
        path.write_text(
            '{"format": 1, "program": "x", "scenario": "d", "nranks": 1, '
            '"finish_times": [1.0]}\n'
            '{"r": 5, "c": "MPI_Send", "p": {}, "s": 0.0, "e": 0.1}\n'
        )
        with pytest.raises(TraceError):
            read_trace(path)


class TestAnalysis:
    def test_breakdown_fractions_sum_to_one(self, cg_s_trace):
        trace, _ = cg_s_trace
        b = activity_breakdown(trace)
        assert b.mpi_fraction + b.compute_fraction == pytest.approx(1.0)
        assert 0 < b.mpi_percent < 100

    def test_stats_fields(self, cg_s_trace):
        trace, _ = cg_s_trace
        stats = trace_stats(trace)
        assert stats["n_calls"] == trace.n_calls()
        assert stats["max_message_bytes"] > 0
        assert "MPI_Sendrecv" in stats["calls_by_type"]

    def test_breakdown_needs_finish_times(self):
        trace = Trace(program_name="x", scenario_name="d", nranks=1)
        with pytest.raises(TraceError):
            activity_breakdown(trace)

    def test_rank_records_bounds(self, cg_s_trace):
        trace, _ = cg_s_trace
        with pytest.raises(TraceError):
            trace.rank_records(99)
