"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkSpec, paper_testbed
from repro.sim import Compute, Program, Recv, Send
from repro.trace import trace_program
from repro.workloads import get_program


@pytest.fixture
def cluster() -> Cluster:
    """The paper's 4-node dual-CPU testbed."""
    return paper_testbed()


@pytest.fixture
def fast_network_cluster() -> Cluster:
    """A cluster with negligible latency for exact-math timing tests."""
    return Cluster.uniform(
        4,
        network=NetworkSpec(
            latency=0.0,
            bandwidth=1e8,
            intra_node_latency=0.0,
            send_overhead=0.0,
            memory_bandwidth=1e12,
        ),
    )


@pytest.fixture
def pingpong_program() -> Program:
    """Two ranks exchanging one eager message each way."""

    def gen(rank: int, size: int):
        if rank == 0:
            yield Compute(0.01)
            yield Send(dest=1, nbytes=1000, tag=5)
            yield Recv(source=1, tag=6)
        elif rank == 1:
            yield Recv(source=0, tag=5)
            yield Compute(0.02)
            yield Send(dest=0, nbytes=1000, tag=6)
        else:
            yield Compute(0.001)

    return Program("pingpong", 2, gen)


@pytest.fixture(scope="session")
def cg_s_trace():
    """A traced Class S CG run (small but structurally rich)."""
    cluster = paper_testbed()
    program = get_program("cg", "S", 4)
    trace, result = trace_program(program, cluster)
    return trace, result


@pytest.fixture(scope="session")
def mg_s_trace():
    """A traced Class S MG run (non-blocking halo pattern)."""
    cluster = paper_testbed()
    program = get_program("mg", "S", 4)
    trace, result = trace_program(program, cluster)
    return trace, result
