"""End-to-end integration: the complete paper workflow on small
problems, including the headline claims in miniature."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Scenario,
    cpu_one_node,
    link_one,
    paper_scenarios,
    paper_testbed,
)
from repro.core import build_skeleton, generate_c_source
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import activity_breakdown, trace_program
from repro.util.rng import derive_seed
from repro.workloads import get_program


@pytest.fixture(scope="module")
def cg_setup():
    """Traced CG.S plus a quarter-size skeleton."""
    cluster = paper_testbed()
    program = get_program("cg", "S", 4)
    trace, dedicated = trace_program(program, cluster)
    bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
    return cluster, program, trace, dedicated, bundle


class TestPaperWorkflow:
    def test_skeleton_activity_matches_application(self, cg_setup):
        """Figure 2's validation: skeleton and application spend
        comparable fractions of time in MPI."""
        cluster, _program, trace, _ded, bundle = cg_setup
        app_breakdown = activity_breakdown(trace)
        skel_trace, _ = trace_program(bundle.program, cluster)
        skel_breakdown = activity_breakdown(skel_trace)
        assert skel_breakdown.mpi_percent == pytest.approx(
            app_breakdown.mpi_percent, abs=12.0
        )

    def test_prediction_beats_trivial_guess(self, cg_setup):
        """Skeleton prediction error under steady contention is far
        below the 'assume no slowdown' error."""
        cluster, program, _trace, dedicated, bundle = cg_setup
        predictor = SkeletonPredictor(bundle.program, dedicated.elapsed, cluster)
        scen = Scenario(name="steady", competing={0: 2, 1: 2, 2: 2, 3: 2})
        actual = run_program(program, cluster, scen).elapsed
        prediction = predictor.predict(scen)
        skel_err = prediction.error_percent(actual)
        no_slowdown_err = abs(dedicated.elapsed - actual) / actual * 100
        assert skel_err < 10.0
        assert skel_err < no_slowdown_err / 3

    def test_all_scenarios_predictable(self, cg_setup):
        cluster, program, _trace, dedicated, bundle = cg_setup
        predictor = SkeletonPredictor(
            bundle.program, dedicated.elapsed, cluster, seed=11
        )
        for scen in paper_scenarios(steady=True):
            actual = run_program(
                program, cluster, scen,
                seed=derive_seed(3, scen.name),
            ).elapsed
            prediction = predictor.predict(scen)
            assert prediction.error_percent(actual) < 25.0

    def test_codegen_emits_full_program(self, cg_setup):
        *_rest, bundle = cg_setup
        src = generate_c_source(bundle.scaled)
        assert src.count("{") == src.count("}")
        assert "MPI_Init" in src

    def test_skeleton_scales_with_k(self, cg_setup):
        cluster, _program, trace, dedicated, _bundle = cg_setup
        times = []
        for K in (2.0, 8.0):
            b = build_skeleton(trace, scaling_factor=K, warn=False)
            times.append(run_program(b.program, cluster).elapsed)
        assert times[0] > 2.5 * times[1]


class TestCrossBenchmark:
    @pytest.mark.parametrize("bench", ["is", "mg", "lu"])
    def test_trace_skeleton_predict_cycle(self, bench):
        cluster = paper_testbed()
        program = get_program(bench, "S", 4)
        trace, dedicated = trace_program(program, cluster)
        bundle = build_skeleton(trace, scaling_factor=3.0, warn=False)
        predictor = SkeletonPredictor(bundle.program, dedicated.elapsed, cluster)
        scen = cpu_one_node(steady=True)
        actual = run_program(program, cluster, scen).elapsed
        prediction = predictor.predict(scen)
        assert prediction.error_percent(actual) < 20.0

    def test_network_scenario_shape(self):
        """At realistic problem sizes, throttling a link slows the
        communication-volume-bound IS more than the compute-bound LU —
        the application-specific behaviour that makes the Average
        Prediction baseline fail (§4.5)."""
        cluster = paper_testbed()
        slowdowns = {}
        for bench in ("is", "lu"):
            program = get_program(bench, "B", 4)
            ded = run_program(program, cluster).elapsed
            thr = run_program(
                program, cluster, link_one(steady=True)
            ).elapsed
            slowdowns[bench] = thr / ded
        assert slowdowns["is"] > 2 * slowdowns["lu"]
