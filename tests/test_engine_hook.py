"""EngineHook contract tests: the base class is a complete no-op
observer, and every extension point actually fires."""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.sim import run_program
from repro.sim.engine import EngineHook


class TestDefaultNoop:
    def test_every_method_is_callable_and_returns_none(self):
        hook = EngineHook()
        assert hook.on_run_start(4, 0.0) is None
        assert hook.on_call(0, "MPI_Send", {"peer": 1}, 0.0, 1.0) is None
        assert hook.on_message(0, 1, 1024, 7, 0.0, 0.5) is None
        assert hook.on_sample(0.5, {"cpu[n0]": 0.5}) is None
        assert hook.on_run_end((1.0, 2.0)) is None

    def test_sampling_disabled_by_default(self):
        assert EngineHook.sample_period == 0.0

    def test_run_with_base_hook_matches_unhooked_run(
        self, cluster, pingpong_program
    ):
        """A default hook observes without disturbing the simulation."""
        plain = run_program(pingpong_program, cluster)
        hooked = run_program(pingpong_program, cluster, hook=EngineHook())
        assert hooked == plain


class RecordingHook(EngineHook):
    """Overrides everything; used to verify dispatch order/coverage."""

    def __init__(self):
        self.sample_period = 0.005
        self.events: list[tuple] = []

    def on_run_start(self, nranks, t):
        self.events.append(("start", nranks, t))

    def on_call(self, rank, name, params, t_start, t_end):
        self.events.append(("call", rank, name))

    def on_message(self, src, dst, nbytes, tag, t_sent, t_delivered):
        self.events.append(("msg", src, dst, nbytes))

    def on_sample(self, t, utilization):
        self.events.append(("sample", t))

    def on_run_end(self, finish_times):
        self.events.append(("end", tuple(finish_times)))


class TestDispatch:
    def test_all_extension_points_fire(self, cluster, pingpong_program):
        hook = RecordingHook()
        result = run_program(pingpong_program, cluster, hook=hook)
        kinds = [e[0] for e in hook.events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert kinds.count("msg") == result.n_messages
        assert "call" in kinds
        assert "sample" in kinds
        assert hook.events[0] == ("start", pingpong_program.nranks, 0.0)
        assert hook.events[-1] == ("end", result.finish_times)

    def test_message_dispatch_skipped_for_base_hook(self, cluster):
        """The engine resolves on_message dispatch from the hook class."""
        from repro.sim.engine import Engine

        engine = Engine(cluster, hook=EngineHook())
        assert not engine._emit_messages
        engine = Engine(cluster, hook=RecordingHook())
        assert engine._emit_messages
        engine = Engine(cluster, hook=None)
        assert not engine._emit_messages
