"""Shortest-good-skeleton analysis (§3.4) and the end-to-end
construction facade."""

from __future__ import annotations

import warnings

import pytest

from repro.cluster import paper_testbed
from repro.core import build_skeleton, compress_trace, shortest_good_skeleton
from repro.core.goodness import GoodnessReport
from repro.core.signature import EventStats, LoopNode, RankSignature, Signature
from repro.errors import SkeletonError, SkeletonQualityWarning
from repro.trace import trace_program
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce


def leaf(gap=0.1, peer=1):
    return EventStats(
        call="MPI_Send", peer=peer, tag=0, nreqs=0,
        mean_bytes=10.0, mean_gap=gap, mean_duration=0.0,
        count=1, gap_samples=[gap],
    )


def sig_of(nodes):
    return Signature(
        program_name="t", nranks=1,
        ranks=[RankSignature(rank=0, nodes=nodes)],
        threshold=0.0, compression_ratio=2.0, trace_events=10,
    )


class TestGoodness:
    def test_single_dominant_loop(self):
        loop = LoopNode(body=[leaf(gap=0.5)], count=100)
        report = shortest_good_skeleton(sig_of([loop]))
        assert report.min_good_seconds == pytest.approx(0.5)

    def test_most_repeated_qualifying_loop_wins(self):
        """Nested CG-like structure: the inner (more repeated) loop is
        the basic unit, so the minimum is its iteration time, not the
        outer's."""
        inner = LoopNode(body=[leaf(gap=0.05)], count=25)
        outer = LoopNode(body=[inner, leaf(gap=0.05, peer=2)], count=75)
        report = shortest_good_skeleton(sig_of([outer]))
        assert report.min_good_seconds == pytest.approx(0.05)

    def test_minor_loop_ignored(self):
        """A loop covering little time cannot be the dominant sequence."""
        main = LoopNode(body=[leaf(gap=1.0)], count=90)   # 90 s
        side = LoopNode(body=[leaf(gap=0.0001, peer=3)], count=1000)
        report = shortest_good_skeleton(sig_of([side, main]))
        assert report.min_good_seconds == pytest.approx(1.0)

    def test_flags_below_minimum(self):
        loop = LoopNode(body=[leaf(gap=0.5)], count=100)
        report = shortest_good_skeleton(sig_of([loop]))
        assert report.flags(0.3)
        assert not report.flags(0.6)

    def test_fallback_when_no_majority_loop(self):
        a = LoopNode(body=[leaf(gap=0.1)], count=4)          # 0.4 s
        b = LoopNode(body=[leaf(gap=0.12, peer=2)], count=4)  # 0.48 s
        report = shortest_good_skeleton(sig_of([a, b]))
        # Falls back to the largest-share loop.
        assert report.min_good_seconds == pytest.approx(0.12)

    def test_paper_figure4_shape(self):
        """Class S traces already show the expected ordering: the IS
        dominant iteration is the longest relative to its runtime."""
        cluster = paper_testbed()
        mins = {}
        for bench in ("cg", "is"):
            trace, result = trace_program(get_program(bench, "S", 4), cluster)
            sig = compress_trace(trace, target_ratio=2.0)
            mins[bench] = shortest_good_skeleton(sig).min_good_seconds / result.elapsed
        assert mins["is"] > mins["cg"]


class TestBuildSkeleton:
    def test_target_and_factor_mutually_exclusive(self, cg_s_trace):
        trace, _ = cg_s_trace
        with pytest.raises(SkeletonError):
            build_skeleton(trace)
        with pytest.raises(SkeletonError):
            build_skeleton(trace, target_seconds=1.0, scaling_factor=2.0)

    def test_invalid_target(self, cg_s_trace):
        trace, _ = cg_s_trace
        with pytest.raises(SkeletonError):
            build_skeleton(trace, target_seconds=-1.0)
        with pytest.raises(SkeletonError):
            build_skeleton(trace, scaling_factor=0.5)

    def test_k_derived_from_target(self, cg_s_trace):
        trace, _ = cg_s_trace
        bundle = build_skeleton(trace, target_seconds=trace.elapsed / 7.0,
                                warn=False)
        assert bundle.K == pytest.approx(7.0, rel=1e-6)

    def test_warning_below_good_minimum(self, cluster):
        trace, result = trace_program(
            get_program("is", "S", 4), cluster
        )
        tiny = result.elapsed / 1000.0
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bundle = build_skeleton(trace, target_seconds=tiny)
        assert bundle.flagged
        assert any(
            issubclass(w.category, SkeletonQualityWarning) for w in caught
        )

    def test_no_warning_for_large_skeleton(self, cg_s_trace):
        trace, _ = cg_s_trace
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bundle = build_skeleton(trace, scaling_factor=2.0)
        assert not bundle.flagged
        assert not caught

    def test_compression_target_is_half_k(self, cluster):
        """Q = K/2: a skeleton with K=8 accepts compression ratio >= 4
        and stops raising the threshold there."""
        trace, _ = trace_program(bsp_allreduce(supersteps=64), cluster)
        bundle = build_skeleton(trace, scaling_factor=8.0, warn=False)
        assert bundle.signature.compression_ratio >= 4.0

    def test_bundle_estimate_close_to_target(self, cg_s_trace):
        trace, _ = cg_s_trace
        target = trace.elapsed / 5.0
        bundle = build_skeleton(trace, target_seconds=target, warn=False)
        assert bundle.estimate == pytest.approx(target, rel=0.3)
