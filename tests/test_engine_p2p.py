"""Point-to-point semantics and timing of the simulator engine."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkSpec
from repro.errors import DeadlockError, ProgramError
from repro.sim import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Irecv,
    Isend,
    Program,
    Recv,
    Send,
    Sendrecv,
    Wait,
    Waitall,
    run_program,
)


def simple_cluster(latency=1e-3, bandwidth=1e6, eager=64 * 1024):
    return Cluster.uniform(
        2,
        network=NetworkSpec(
            latency=latency,
            bandwidth=bandwidth,
            eager_threshold=eager,
            intra_node_latency=0.0,
            memory_bandwidth=1e12,
            send_overhead=0.0,
        ),
    )


def run2(gen, cluster=None, **kw):
    return run_program(Program("t", 2, gen), cluster or simple_cluster(), **kw)


class TestBasicTiming:
    def test_compute_only(self):
        def gen(rank, size):
            yield Compute(0.25)

        r = run2(gen)
        assert r.elapsed == pytest.approx(0.25)

    def test_eager_message_delivery_time(self):
        """Receiver gets the message at send + latency + bytes/bw."""

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=1000, tag=1)
            else:
                yield Recv(source=0, tag=1)

        r = run2(gen)
        # 1e-3 latency + 1000/1e6 transfer = 2e-3
        assert r.finish_times[1] == pytest.approx(2e-3, rel=1e-6)

    def test_recv_waits_for_late_sender(self):
        def gen(rank, size):
            if rank == 0:
                yield Compute(0.5)
                yield Send(dest=1, nbytes=1000, tag=1)
            else:
                yield Recv(source=0, tag=1)

        r = run2(gen)
        assert r.finish_times[1] == pytest.approx(0.5 + 2e-3, rel=1e-6)

    def test_eager_sender_does_not_block_on_receiver(self):
        """An eager send completes locally even if the receive is
        posted much later."""

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=1000, tag=1)
                yield Compute(0.001)
            else:
                yield Compute(1.0)
                yield Recv(source=0, tag=1)

        r = run2(gen)
        assert r.finish_times[0] < 0.1
        assert r.finish_times[1] == pytest.approx(1.0, rel=1e-3)

    def test_rendezvous_sender_blocks_until_delivery(self):
        """A rendezvous send cannot finish before the receiver posts."""

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=200_000, tag=1)  # > eager threshold
            else:
                yield Compute(1.0)
                yield Recv(source=0, tag=1)

        r = run2(gen)
        assert r.finish_times[0] > 1.0

    def test_zero_byte_message_costs_latency(self):
        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=0, tag=1)
            else:
                yield Recv(source=0, tag=1)

        r = run2(gen)
        assert r.finish_times[1] == pytest.approx(1e-3, rel=1e-6)


class TestMatching:
    def test_any_source_any_tag(self):
        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=10, tag=42)
            else:
                yield Recv(source=ANY_SOURCE, tag=ANY_TAG)

        run2(gen)  # completes without deadlock

    def test_tag_selective_matching(self):
        """A receive for tag 2 must not consume the tag-1 message."""

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=10, tag=1)
                yield Send(dest=1, nbytes=10, tag=2)
            else:
                yield Recv(source=0, tag=2)
                yield Recv(source=0, tag=1)

        run2(gen)

    def test_fifo_order_same_tag(self):
        """Messages on the same (src, dst, tag) are non-overtaking:
        three different-size sends must arrive in order."""
        sizes = [100, 2000, 50]
        seen = []

        def gen(rank, size):
            if rank == 0:
                for s in sizes:
                    yield Send(dest=1, nbytes=s, tag=1)
            else:
                for _ in sizes:
                    req = yield Irecv(source=0, tag=1)
                    yield Wait(req)
                    seen.append(req.msg.nbytes)

        run2(gen)
        assert seen == sizes

    def test_unmatched_recv_deadlocks(self):
        def gen(rank, size):
            if rank == 1:
                yield Recv(source=0, tag=9)

        with pytest.raises(DeadlockError) as err:
            run2(gen)
        assert 1 in err.value.blocked_ranks

    def test_send_recv_cycle_with_sendrecv_is_safe(self):
        def gen(rank, size):
            other = 1 - rank
            yield Sendrecv(
                dest=other, send_nbytes=500_000, send_tag=3,
                source=other, recv_tag=3,
            )

        run2(gen)

    def test_mutual_rendezvous_blocking_sends_deadlock(self):
        """Two blocking rendezvous sends to each other with no posted
        receives is the classic MPI deadlock."""

        def gen(rank, size):
            other = 1 - rank
            yield Send(dest=other, nbytes=1_000_000, tag=1)
            yield Recv(source=other, tag=1)

        with pytest.raises(DeadlockError):
            run2(gen)


class TestNonBlocking:
    def test_isend_irecv_waitall(self):
        def gen(rank, size):
            other = 1 - rank
            r1 = yield Irecv(source=other, tag=1)
            r2 = yield Isend(dest=other, nbytes=10_000, tag=1)
            yield Waitall((r1, r2))

        run2(gen)

    def test_overlap_hides_transfer(self):
        """Compute issued between Isend and Wait overlaps the transfer."""
        cluster = simple_cluster(latency=0.0, bandwidth=1e6)

        def gen(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, nbytes=900_000, tag=1)  # 0.9s rndv
                yield Compute(0.9)
                yield Wait(req)
            else:
                req = yield Irecv(source=0, tag=1)
                yield Compute(0.9)
                yield Wait(req)

        r = run2(gen, cluster)
        # Transfer and compute overlap: well under the 1.8s serial sum.
        assert r.elapsed < 1.1

    def test_wait_after_completion_is_instant(self):
        def gen(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, nbytes=10, tag=1)
                yield Compute(0.5)
                yield Wait(req)
            else:
                req = yield Irecv(source=0, tag=1)
                yield Compute(0.5)
                yield Wait(req)

        r = run2(gen)
        assert r.elapsed == pytest.approx(0.5, rel=1e-3)


class TestProgramErrors:
    def test_send_to_self_rejected(self):
        def gen(rank, size):
            yield Send(dest=rank, nbytes=10, tag=1)

        with pytest.raises(ProgramError):
            run2(gen)

    def test_send_to_invalid_rank_rejected(self):
        def gen(rank, size):
            yield Send(dest=99, nbytes=10, tag=1)

        with pytest.raises(ProgramError):
            run2(gen)

    def test_non_op_yield_rejected(self):
        def gen(rank, size):
            yield "not an op"

        with pytest.raises(ProgramError):
            run2(gen)


class TestDeterminism:
    def test_same_seed_identical(self, cluster):
        from repro.cluster import cpu_one_node

        def gen(rank, size):
            for _ in range(20):
                yield Compute(0.01)
                other = rank ^ 1
                yield Sendrecv(dest=other, send_nbytes=5000, send_tag=1,
                               source=other, recv_tag=1)

        prog = Program("d", 4, gen)
        scen = cpu_one_node()
        a = run_program(prog, cluster, scen, seed=5)
        b = run_program(prog, cluster, scen, seed=5)
        assert a.finish_times == b.finish_times

    def test_different_seed_differs_under_sharing(self, cluster):
        from repro.cluster import cpu_one_node

        def gen(rank, size):
            # Long enough to span several load bursts/idles.
            for _ in range(500):
                yield Compute(0.01)

        prog = Program("d", 4, gen)
        scen = cpu_one_node()
        a = run_program(prog, cluster, scen, seed=5)
        b = run_program(prog, cluster, scen, seed=6)
        assert a.elapsed != b.elapsed
