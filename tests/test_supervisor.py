"""Campaign supervision tests: heartbeats, soft deadlines, and
hang-detection end to end.

The acceptance guarantee: a worker stalled by an injected hang is
detected (deadline or heartbeat silence), cancelled (SIGTERM→SIGKILL),
its task re-queued, and the campaign's final results stay
byte-identical to a clean serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.experiments.report import format_failure_record
from repro.faults.resilience import RetryPolicy
from repro.obs.metrics import enabled_metrics
from repro.parallel import Supervisor, SupervisorConfig, write_campaign_timeline

TINY = ExperimentConfig(
    benchmarks=("cg",),
    klass="S",
    baseline_klass="S",
    skeleton_targets=(0.05,),
    steady=True,
)

#: Fast supervision for tests: hard 2 s cap, quick escalation/beats.
FAST = SupervisorConfig(
    task_timeout=2.0, grace_seconds=0.5, heartbeat_interval=0.2
)


@pytest.fixture(scope="module")
def serial_results(tmp_path_factory):
    cache = tmp_path_factory.mktemp("serial")
    return ExperimentRunner(TINY, cache_dir=str(cache)).run()


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestSupervisorConfig:
    def test_defaults_valid(self):
        cfg = SupervisorConfig()
        assert cfg.task_timeout is None
        assert cfg.stall_seconds == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(task_timeout=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(soft_floor=100.0, soft_ceiling=1.0)
        with pytest.raises(ValueError):
            SupervisorConfig(min_samples=0)
        with pytest.raises(ValueError):
            SupervisorConfig(heartbeat_timeout_factor=1.0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_wall_factor=1.0)

    def test_disabled_heartbeats_disable_stall(self):
        assert SupervisorConfig(heartbeat_interval=0.0).stall_seconds is None


class TestSupervisorUnit:
    def test_soft_deadline_needs_warmup(self):
        s = Supervisor(SupervisorConfig(min_samples=3), clock=FakeClock())
        s.observe_wall(1.0)
        s.observe_wall(2.0)
        assert s.soft_deadline() is None
        assert s.deadline() is None
        s.observe_wall(3.0)
        # p95 of [1, 2, 3] is 3; 8x3 = 24 s beats 3x3 = 9 s and the floor.
        assert s.soft_deadline() == pytest.approx(24.0)

    def test_max_wall_guard_covers_slow_task_families(self):
        """A p95 dominated by fast tasks must not under-budget a
        legitimately slow family: the largest completed wall sets a
        lower bound on the soft deadline."""
        s = Supervisor(SupervisorConfig(min_samples=5), clock=FakeClock())
        for _ in range(19):
            s.observe_wall(1.0)
        s.observe_wall(20.0)  # one healthy slow task completed
        # p95 of the sample is 1.0 -> 8 s; the guard demands 3x20 = 60 s.
        assert s.soft_deadline() == pytest.approx(60.0)

    def test_soft_deadline_clamped(self):
        cfg = SupervisorConfig(
            min_samples=1, soft_floor=5.0, soft_ceiling=8.0
        )
        s = Supervisor(cfg, clock=FakeClock())
        s.observe_wall(0.001)
        assert s.soft_deadline() == pytest.approx(5.0)  # floor
        s = Supervisor(cfg, clock=FakeClock())
        s.observe_wall(100.0)
        assert s.soft_deadline() == pytest.approx(8.0)  # ceiling

    def test_deadline_is_min_of_soft_and_hard(self):
        cfg = SupervisorConfig(min_samples=1, task_timeout=7.0)
        s = Supervisor(cfg, clock=FakeClock())
        assert s.deadline() == pytest.approx(7.0)  # hard only, cold sample
        s.observe_wall(1.0)  # soft = clamp(max(8*1, 3*1)) = 10 (floor)
        assert s.deadline() == pytest.approx(7.0)
        s2 = Supervisor(
            SupervisorConfig(min_samples=1, task_timeout=30.0),
            clock=FakeClock(),
        )
        s2.observe_wall(1.0)
        assert s2.deadline() == pytest.approx(10.0)  # soft floor wins

    def test_overdue_by_deadline(self):
        clock = FakeClock()
        s = Supervisor(SupervisorConfig(task_timeout=5.0), clock=clock)
        s.task_started(0, "k1")
        clock.t = 4.0
        s.heartbeat(0)
        assert s.overdue() == []
        clock.t = 5.5
        assert s.overdue() == [(0, "k1", 5.5, "deadline")]
        # Popped once reported: the scheduler owns the enforcement.
        assert s.overdue() == []
        assert s.n_timeouts == 1

    def test_overdue_by_heartbeat_stall(self):
        clock = FakeClock()
        cfg = SupervisorConfig(
            heartbeat_interval=1.0, heartbeat_timeout_factor=3.0
        )
        s = Supervisor(cfg, clock=clock)
        s.task_started(1, "k2")
        clock.t = 2.0
        s.heartbeat(1)
        clock.t = 4.9
        assert s.overdue() == []  # silence 2.9 s < 3 s
        clock.t = 5.1
        assert s.overdue() == [(1, "k2", 5.1, "heartbeat-stall")]

    def test_finished_task_never_overdue(self):
        clock = FakeClock()
        s = Supervisor(SupervisorConfig(task_timeout=1.0), clock=clock)
        s.task_started(0, "k")
        s.task_finished(0)
        clock.t = 100.0
        assert s.overdue() == []


class TestHungWorkerRecovery:
    def test_hung_worker_detected_and_byte_identical(
        self, serial_results, tmp_path
    ):
        """The tentpole acceptance: injected hang -> detect, kill,
        re-run -> results byte-identical to a clean serial campaign."""
        runner = ExperimentRunner(
            TINY, cache_dir=str(tmp_path), workers=2, supervisor=FAST
        )
        runner._campaign_hang_plan = {0: (2, 3600.0)}  # 2nd task: 1 h stall
        with enabled_metrics() as m:
            results = runner.run()
        assert not results.failures
        assert results.to_json() == serial_results.to_json()
        snap = m.snapshot()
        assert snap["supervisor.timeouts"]["value"] >= 1
        assert snap["supervisor.heartbeats"]["value"] >= 1
        assert snap["campaign.worker_restarts"]["value"] >= 1
        timed_out = [
            s for s in runner.campaign_spans if s["status"] == "timeout"
        ]
        assert timed_out and all(s["t_end"] >= s["t_start"] for s in timed_out)

    def test_timeout_exhaustion_records_structured_failure(self, tmp_path):
        """When re-queue budget is exhausted by hangs, the benchmark
        fails with a TaskTimeoutError record, not a stuck campaign."""
        runner = ExperimentRunner(
            TINY,
            cache_dir=str(tmp_path),
            workers=2,
            supervisor=FAST,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        runner._campaign_hang_plan = {0: (1, 3600.0), 1: (1, 3600.0)}
        results = runner.run()
        assert set(results.failures) == {"cg"}
        info = results.failures["cg"]
        assert info["error_type"] == "TaskTimeoutError"
        assert info["attempts"] == 1
        line = format_failure_record("cg", info)
        assert "TaskTimeoutError" in line
        assert "attempt" in line

    def test_timeline_draws_timeouts_on_fault_lane(self, tmp_path):
        spans = [
            {"worker": 0, "key": "a", "kind": "app", "t_start": 0.0,
             "t_end": 1.0, "status": "ok"},
            {"worker": 1, "key": "b", "kind": "app", "t_start": 0.5,
             "t_end": 3.0, "status": "timeout"},
        ]
        out = tmp_path / "tl.json"
        assert write_campaign_timeline(spans, out) == 2
        events = json.loads(out.read_text())["traceEvents"]
        slices = {e["name"]: e for e in events if e["ph"] == "X"}
        assert slices["a"]["pid"] == 0
        assert slices["b"]["pid"] == 2  # fault lane
        fault_meta = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "process_name" and e["pid"] == 2
        ]
        assert fault_meta and fault_meta[0]["args"]["name"] == "faults"

    def test_timeline_without_timeouts_has_no_fault_lane(self, tmp_path):
        spans = [
            {"worker": 0, "key": "a", "kind": "app", "t_start": 0.0,
             "t_end": 1.0, "status": "ok"},
        ]
        out = tmp_path / "tl.json"
        write_campaign_timeline(spans, out)
        events = json.loads(out.read_text())["traceEvents"]
        assert all(e["pid"] != 2 for e in events)


class TestFailureRecordFormatting:
    def test_every_cause_renders_uniformly(self):
        cases = [
            {"run": "cg.S/app::link-one::7", "error_type": "DeadlockError",
             "error": "no progress", "attempts": 1},
            {"run": "cg.S/trace::dedicated::0",
             "error_type": "WorkerCrashError",
             "error": "worker died", "attempts": 3},
            {"run": "cg.S/skel-0.05::cpu-all::3",
             "error_type": "TaskTimeoutError",
             "error": "deadline exceeded", "attempts": 2},
        ]
        for info in cases:
            line = format_failure_record("cg", info)
            run_id, scenario, seed = info["run"].split("::")
            assert info["error_type"] in line
            assert run_id in line
            assert f"scenario {scenario}" in line
            assert f"seed {seed}" in line
            assert f"{info['attempts']} attempt(s)" in line

    def test_unparseable_run_key_falls_back(self):
        line = format_failure_record("cg", {"run": "weird", "error": "x"})
        assert "weird" in line and "cg" in line
