"""Unit tests for the message-matching layer."""

from __future__ import annotations

from repro.sim.matching import Mailbox, Message
from repro.sim.ops import ANY_SOURCE, ANY_TAG, RequestHandle


def msg(src=0, dst=1, tag=5, nbytes=100):
    return Message(src=src, dst=dst, tag=tag, nbytes=nbytes, eager=True)


def recv_req(source=ANY_SOURCE, tag=ANY_TAG):
    return RequestHandle("recv", source, tag, 0)


class TestMatchSend:
    def test_no_posted_receives(self):
        box = Mailbox(1)
        assert box.match_send(msg()) is None

    def test_exact_match(self):
        box = Mailbox(1)
        req = recv_req(source=0, tag=5)
        box.add_posted(req)
        assert box.match_send(msg()) is req
        assert box.outstanding() == (0, 0)

    def test_wildcard_source(self):
        box = Mailbox(1)
        req = recv_req(source=ANY_SOURCE, tag=5)
        box.add_posted(req)
        assert box.match_send(msg(src=3)) is req

    def test_wildcard_tag(self):
        box = Mailbox(1)
        req = recv_req(source=0, tag=ANY_TAG)
        box.add_posted(req)
        assert box.match_send(msg(tag=99)) is req

    def test_tag_mismatch_skipped(self):
        box = Mailbox(1)
        other = recv_req(source=0, tag=6)
        match = recv_req(source=0, tag=5)
        box.add_posted(other)
        box.add_posted(match)
        assert box.match_send(msg(tag=5)) is match
        # The non-matching receive stays posted.
        assert box.outstanding() == (1, 0)

    def test_earliest_posted_wins(self):
        box = Mailbox(1)
        first = recv_req(source=0, tag=5)
        second = recv_req(source=0, tag=5)
        box.add_posted(first)
        box.add_posted(second)
        assert box.match_send(msg()) is first


class TestMatchRecv:
    def test_no_unexpected(self):
        box = Mailbox(1)
        assert box.match_recv(0, 5) is None

    def test_matches_earliest_arrival(self):
        box = Mailbox(1)
        m1, m2 = msg(nbytes=1), msg(nbytes=2)
        box.add_unexpected(m1)
        box.add_unexpected(m2)
        assert box.match_recv(0, 5) is m1
        assert box.match_recv(0, 5) is m2

    def test_source_selectivity(self):
        box = Mailbox(1)
        from_0 = msg(src=0)
        from_2 = msg(src=2)
        box.add_unexpected(from_0)
        box.add_unexpected(from_2)
        assert box.match_recv(2, 5) is from_2
        assert box.outstanding() == (0, 1)

    def test_wildcards_take_first(self):
        box = Mailbox(1)
        a, b = msg(src=3, tag=1), msg(src=4, tag=2)
        box.add_unexpected(a)
        box.add_unexpected(b)
        assert box.match_recv(ANY_SOURCE, ANY_TAG) is a
