"""Resource-sharing effects: CPU contention, link throttling, and the
stochastic load/traffic models."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    NetworkSpec,
    Scenario,
    cpu_all_nodes,
    cpu_one_node,
    link_all,
    link_one,
    paper_scenarios,
    paper_testbed,
)
from repro.cluster.contention import LoadModel, TrafficModel
from repro.sim import Compute, Program, Recv, Send, run_program


def compute_program(seconds=1.0, nranks=4):
    def gen(rank, size):
        yield Compute(seconds)

    return Program("compute", nranks, gen)


def transfer_program(nbytes=10_000_000, nranks=4):
    def gen(rank, size):
        if rank == 0:
            yield Send(dest=1, nbytes=nbytes, tag=1)
        elif rank == 1:
            yield Recv(source=0, tag=1)

    return Program("transfer", nranks, gen)


class TestCpuContention:
    def test_steady_two_competitors_slow_by_1_5x(self, cluster):
        """1 rank + 2 steady competitors on 2 CPUs -> rank at 2/3 CPU."""
        scen = Scenario(name="s", competing={0: 2})
        ded = run_program(compute_program(), cluster)
        shared = run_program(compute_program(), cluster, scen)
        assert shared.finish_times[0] == pytest.approx(1.5, rel=1e-6)
        # Other nodes unaffected.
        assert shared.finish_times[1] == pytest.approx(1.0, rel=1e-6)
        assert ded.elapsed == pytest.approx(1.0, rel=1e-6)

    def test_one_competitor_on_dual_cpu_harmless(self, cluster):
        """A dual-CPU node absorbs a single competitor (the reason the
        paper uses two)."""
        scen = Scenario(name="s", competing={0: 1})
        shared = run_program(compute_program(), cluster, scen)
        assert shared.finish_times[0] == pytest.approx(1.0, rel=1e-6)

    def test_single_cpu_node_halves(self):
        cluster = Cluster.uniform(2, ncpus=1)
        scen = Scenario(name="s", competing={0: 1})
        shared = run_program(compute_program(nranks=2), cluster, scen)
        assert shared.finish_times[0] == pytest.approx(2.0, rel=1e-6)

    def test_bursty_load_slows_less_than_steady(self, cluster):
        """A bursty competitor (duty < 1) costs less than a steady one."""
        steady = Scenario(name="st", competing={0: 2})
        bursty = Scenario(name="bu", competing={0: 2}, load_model=LoadModel())
        t_steady = run_program(compute_program(5.0), cluster, steady).elapsed
        t_bursty = run_program(
            compute_program(5.0), cluster, bursty, seed=3
        ).elapsed
        assert 5.0 < t_bursty < t_steady + 1e-9


class TestLinkThrottling:
    def test_throttled_nic_slows_transfer(self, cluster):
        base = run_program(transfer_program(), cluster).elapsed
        scen = Scenario(name="s", nic_caps={0: 1.25e6})
        slow = run_program(transfer_program(), cluster, scen).elapsed
        # 10 MB at 1.25 MB/s ~ 8s vs ~0.125s at full speed.
        assert slow > 50 * base

    def test_throttle_on_unrelated_node_has_no_effect(self, cluster):
        scen = Scenario(name="s", nic_caps={3: 1.25e6})
        base = run_program(transfer_program(), cluster).elapsed
        thr = run_program(transfer_program(), cluster, scen).elapsed
        assert thr == pytest.approx(base, rel=1e-9)

    def test_rx_side_throttle_applies(self, cluster):
        """Throttling the *receiver's* NIC also limits the flow."""
        scen = Scenario(name="s", nic_caps={1: 1.25e6})
        slow = run_program(transfer_program(), cluster, scen).elapsed
        assert slow > 7.0

    def test_traffic_model_fluctuates_transfer_time(self, cluster):
        scen = Scenario(
            name="s", nic_caps={0: 1.25e6}, traffic_model=TrafficModel()
        )
        t1 = run_program(transfer_program(), cluster, scen, seed=1).elapsed
        t2 = run_program(transfer_program(), cluster, scen, seed=2).elapsed
        assert t1 != t2
        # Still in the throttled ballpark (not full bandwidth).
        assert min(t1, t2) > 3.0


class TestScenarios:
    def test_paper_scenario_list(self):
        scens = paper_scenarios()
        assert [s.name for s in scens] == [
            "cpu-one-node", "cpu-all-nodes", "link-one", "link-all",
            "cpu+link-one",
        ]

    def test_steady_flag_removes_models(self):
        for s in paper_scenarios(steady=True):
            assert s.load_model is None
            assert s.traffic_model is None

    def test_stochastic_default_has_models(self):
        assert cpu_one_node().load_model is not None
        assert link_one().traffic_model is not None

    def test_scenario_validation(self, cluster):
        scen = Scenario(name="bad", competing={17: 2})
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            scen.validate_against(cluster)

    def test_describe_dedicated(self):
        from repro.cluster import DEDICATED

        assert "dedicated" in DEDICATED.describe()
        assert DEDICATED.is_dedicated

    def test_cpu_all_nodes_slows_every_rank(self, cluster):
        shared = run_program(
            compute_program(), cluster, cpu_all_nodes(steady=True)
        )
        for t in shared.finish_times:
            assert t == pytest.approx(1.5, rel=1e-6)

    def test_link_all_affects_all_flows(self):
        cluster = paper_testbed()

        def gen(rank, size):
            other = rank ^ 1
            if rank % 2 == 0:
                yield Send(dest=other, nbytes=1_000_000, tag=1)
            else:
                yield Recv(source=other, tag=1)

        prog = Program("pairs", 4, gen)
        base = run_program(prog, cluster).elapsed
        slow = run_program(prog, cluster, link_all(steady=True)).elapsed
        assert slow > 10 * base
