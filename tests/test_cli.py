"""CLI tests (run in-process through main())."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "cg"])
        assert args.benchmark == "cg"
        assert args.klass == "B"
        assert args.output == "app.trace"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "nope"])


class TestCommands:
    def test_trace_and_skeleton_and_codegen(self, tmp_path, capsys):
        trace_file = str(tmp_path / "cg.trace")
        rc = main(["trace", "cg", "--klass", "S", "-o", trace_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MPI calls recorded" in out

        rc = main(["skeleton", trace_file, "--target", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scaling factor K" in out
        assert "min good skeleton" in out

        c_file = str(tmp_path / "skel.c")
        rc = main(["codegen", trace_file, "--target", "0.05", "-o", c_file])
        assert rc == 0
        with open(c_file) as fh:
            assert "#include <mpi.h>" in fh.read()

    def test_codegen_to_stdout(self, tmp_path, capsys):
        trace_file = str(tmp_path / "is.trace")
        main(["trace", "is", "--klass", "S", "-o", trace_file])
        capsys.readouterr()
        rc = main(["codegen", trace_file, "--target", "0.02"])
        assert rc == 0
        assert "MPI_Alltoallv" in capsys.readouterr().out

    def test_predict_with_verify(self, capsys):
        rc = main([
            "predict", "mg", "--klass", "S", "--target", "0.02",
            "--scenario", "cpu-one-node", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted time" in out
        assert "prediction error" in out

    def test_predict_unknown_scenario_fails_cleanly(self, capsys):
        rc = main([
            "predict", "mg", "--klass", "S", "--scenario", "bogus",
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_file_reported(self, capsys, tmp_path):
        rc = main(["skeleton", str(tmp_path / "missing.trace")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
