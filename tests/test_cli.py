"""CLI tests (run in-process through main())."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "cg"])
        assert args.benchmark == "cg"
        assert args.klass == "B"
        assert args.output == "app.trace"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "nope"])


class TestCommands:
    def test_trace_and_skeleton_and_codegen(self, tmp_path, capsys):
        trace_file = str(tmp_path / "cg.trace")
        rc = main(["trace", "cg", "--klass", "S", "-o", trace_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MPI calls recorded" in out

        rc = main(["skeleton", trace_file, "--target", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scaling factor K" in out
        assert "min good skeleton" in out

        c_file = str(tmp_path / "skel.c")
        rc = main(["codegen", trace_file, "--target", "0.05", "-o", c_file])
        assert rc == 0
        with open(c_file) as fh:
            assert "#include <mpi.h>" in fh.read()

    def test_codegen_to_stdout(self, tmp_path, capsys):
        trace_file = str(tmp_path / "is.trace")
        main(["trace", "is", "--klass", "S", "-o", trace_file])
        capsys.readouterr()
        rc = main(["codegen", trace_file, "--target", "0.02"])
        assert rc == 0
        assert "MPI_Alltoallv" in capsys.readouterr().out

    def test_predict_with_verify(self, capsys):
        rc = main([
            "predict", "mg", "--klass", "S", "--target", "0.02",
            "--scenario", "cpu-one-node", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted time" in out
        assert "prediction error" in out

    def test_predict_unknown_scenario_fails_cleanly(self, capsys):
        rc = main([
            "predict", "mg", "--klass", "S", "--scenario", "bogus",
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_file_reported(self, capsys, tmp_path):
        rc = main(["skeleton", str(tmp_path / "missing.trace")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestObservabilityCommands:
    def test_timeline_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "tl.json"
        rc = main([
            "timeline", "cg", "--klass", "S", "--samples", "20",
            "-o", str(out_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        assert "rank 0" in out
        trace = json.loads(out_file.read_text())
        assert trace["traceEvents"]
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"X", "M", "C"} <= phases

    def test_timeline_under_scenario(self, tmp_path):
        out_file = str(tmp_path / "tl.json")
        rc = main([
            "timeline", "cg", "--klass", "S", "--scenario", "cpu-one-node",
            "--samples", "0", "-o", out_file,
        ])
        assert rc == 0

    def test_timeline_unknown_scenario(self, capsys):
        rc = main(["timeline", "cg", "--klass", "S", "--scenario", "bogus"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_prints_metrics_report(self, capsys):
        rc = main([
            "profile", "cg", "--klass", "S", "--target", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine.messages" in out
        assert "construct.threshold_iterations" in out
        assert "stage timings" in out

    def test_profile_leaves_global_registry_disabled(self):
        from repro.obs import get_metrics

        main(["profile", "cg", "--klass", "S", "--target", "0.05"])
        assert not get_metrics().enabled

    def test_metrics_out_flag_on_existing_command(self, tmp_path, capsys):
        import json

        metrics_file = tmp_path / "m.json"
        trace_file = str(tmp_path / "cg.trace")
        rc = main([
            "--metrics-out", str(metrics_file),
            "trace", "cg", "--klass", "S", "-o", trace_file,
        ])
        assert rc == 0
        assert "metrics written" in capsys.readouterr().err
        data = json.loads(metrics_file.read_text())
        assert data["engine.runs"]["value"] == 1
        assert data["engine.messages"]["value"] > 0

    def test_metrics_out_restores_registry(self, tmp_path):
        from repro.obs import get_metrics

        main([
            "--metrics-out", str(tmp_path / "m.json"),
            "trace", "cg", "--klass", "S",
            "-o", str(tmp_path / "cg.trace"),
        ])
        assert not get_metrics().enabled


class TestRobustnessCommands:
    @pytest.fixture
    def trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "cg.trace")
        assert main(["trace", "cg", "--klass", "S", "-o", path]) == 0
        capsys.readouterr()
        return path

    def test_trace_validate_ok(self, trace_file, capsys):
        rc = main(["trace", "validate", trace_file])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_trace_validate_spelling_both_ways(self, trace_file):
        assert main(["trace-validate", trace_file]) == 0

    def test_trace_validate_corrupt_strict_fails(
        self, trace_file, tmp_path, capsys
    ):
        lines = (tmp_path / "cg.trace").read_text().splitlines()
        bad = tmp_path / "bad.trace"
        bad.write_text("\n".join(lines[:10]) + "\nGARBAGE\n")
        rc = main(["trace", "validate", str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_validate_salvage_writes_recovered(
        self, trace_file, tmp_path, capsys
    ):
        lines = (tmp_path / "cg.trace").read_text().splitlines()
        bad = tmp_path / "bad.trace"
        bad.write_text("\n".join(lines[:10]) + "\nGARBAGE\n")
        fixed = tmp_path / "fixed.trace"
        rc = main([
            "trace", "validate", str(bad), "--salvage", "-o", str(fixed),
        ])
        assert rc == 1  # corrupt input still reports failure
        out = capsys.readouterr().out
        assert "salvaged 9 record(s)" in out
        assert main(["trace", "validate", str(fixed)]) == 0

    def test_faults_render_stock(self, capsys):
        rc = main(["faults", "render", "--stock", "rank-stall"])
        assert rc == 0
        assert "rank_stall" in capsys.readouterr().out

    def test_faults_render_export_and_reload(self, tmp_path, capsys):
        plan_file = str(tmp_path / "plan.json")
        assert main([
            "faults", "render", "--stock", "lossy-net", "-o", plan_file,
        ]) == 0
        capsys.readouterr()
        rc = main(["faults", "render", "--plan", plan_file])
        assert rc == 0
        assert "message_drop" in capsys.readouterr().out

    def test_faults_render_unknown_stock(self, capsys):
        rc = main(["faults", "render", "--stock", "bogus"])
        assert rc == 1
        assert "unknown stock plan" in capsys.readouterr().err

    def test_faults_apply(self, tmp_path, capsys):
        timeline = tmp_path / "tl.json"
        rc = main([
            "faults", "apply", "cg", "--klass", "S",
            "--stock", "rank-stall", "--timeline", str(timeline),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert timeline.exists()

    def test_timeline_accepts_volatile_scenario(self, tmp_path):
        rc = main([
            "timeline", "cg", "--klass", "S", "--scenario", "link-flap",
            "--samples", "0", "-o", str(tmp_path / "tl.json"),
        ])
        assert rc == 0

    def test_experiment_parser_has_resume_and_volatile(self):
        args = build_parser().parse_args(["experiment", "--resume"])
        assert args.resume and not args.volatile
        args = build_parser().parse_args(["experiment", "--volatile"])
        assert args.volatile and not args.resume


class TestServeCommands:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert capsys.readouterr().out.strip() == (
            f"repro-skeleton {__version__}"
        )

    def test_version_matches_pyproject(self):
        """The package version has a single source of truth."""
        import re
        from pathlib import Path

        from repro import __version__

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.M
        )
        assert match and match.group(1) == __version__

    def test_predict_json_is_canonical(self, tmp_path, capsys):
        from repro.store import canonical_json

        argv = [
            "predict", "cg", "--klass", "S", "--target", "0.05",
            "--scenario", "cpu-one-node", "--json",
            "--cache-dir", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out.strip()
        import json

        assert out == canonical_json(json.loads(out))

    def test_store_ls_json_is_deterministic(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "store")
        assert main([
            "predict", "cg", "--klass", "S", "--target", "0.05",
            "--scenario", "cpu-one-node", "--json", "--cache-dir", cache,
        ]) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--json", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(["store", "ls", "--json", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert first == second
        entries = json.loads(first)
        assert entries and all("digest" in e for e in entries)
        # Deterministic order: grouped by stage, newest first.
        stages = [e["stage"] for e in entries]
        assert stages == sorted(stages)

    def test_publish_and_call_parsers(self):
        args = build_parser().parse_args([
            "publish", "cg.s4", "cg", "--klass", "S", "--target", "0.05",
        ])
        assert args.alias == "cg.s4" and args.benchmark == "cg"
        args = build_parser().parse_args([
            "call", "predict", "--params", "{}", "--port", "7070",
        ])
        assert args.verb == "predict" and args.port == 7070
        args = build_parser().parse_args(["serve", "--workers", "0"])
        assert args.workers == 0 and args.port == 7077

    def test_publish_command(self, tmp_path, capsys):
        cache = str(tmp_path / "store")
        rc = main([
            "publish", "cg.s4", "cg", "--klass", "S",
            "--target", "0.05", "--cache-dir", cache,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "published cg.s4@v1" in out
        # Publishing warmed the store: the same workload now predicts
        # from cache and the registry resolves the alias.
        from repro.serve import PredictionService

        service = PredictionService(cache_dir=cache)
        assert service.registry.resolve("cg.s4").version == 1
        reply = service.handle(
            "predict", {"alias": "cg.s4", "scenario": "cpu-one-node"}
        )
        assert reply["ok"] and reply["result"]["predicted_seconds"] > 0
