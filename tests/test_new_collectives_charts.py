"""Tests for Reduce_scatter/Scan collectives, ASCII charts, and the
multi-probe prediction extension."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkSpec, cpu_one_node, paper_testbed
from repro.core import build_skeleton
from repro.errors import ReproError
from repro.ext import predict_interval
from repro.predict import SkeletonPredictor
from repro.sim import Program, ReduceScatter, Scan, run_program
from repro.sim.collectives import expand
from repro.trace import trace_program
from repro.util.charts import bar_chart, grouped_bar_chart, series_summary
from repro.workloads.synthetic import bsp_allreduce


def fast_cluster(n):
    return Cluster.uniform(
        n,
        network=NetworkSpec(latency=1e-4, bandwidth=1e8,
                            intra_node_latency=0.0, memory_bandwidth=1e12,
                            send_overhead=0.0),
    )


def run_collective(op, nranks):
    def gen(rank, size):
        yield op

    return run_program(Program("coll", nranks, gen), fast_cluster(nranks))


class TestReduceScatter:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 8])
    def test_completes(self, nranks):
        assert run_collective(ReduceScatter(nbytes=4096), nranks).elapsed > 0

    def test_traced_as_single_call(self):
        cluster = paper_testbed()

        def gen(rank, size):
            yield ReduceScatter(nbytes=1024)

        trace, _ = trace_program(Program("rs", 4, gen), cluster)
        assert [r.call for r in trace.rank_records(0)] == ["MPI_Reduce_scatter"]

    def test_recursive_halving_volume(self):
        """Power-of-two: log2(p) rounds with halving volumes."""
        sends = [
            op for op in expand(ReduceScatter(nbytes=1000), 0, 8, seq=0)
            if type(op).__name__ == "Isend"
        ]
        assert len(sends) == 3  # log2(8)
        volumes = [s.nbytes for s in sends]
        assert volumes == sorted(volumes, reverse=True)

    def test_skeleton_reconstruction(self):
        cluster = paper_testbed()

        def gen(rank, size):
            from repro.sim import Compute

            for _ in range(12):
                yield Compute(0.01)
                yield ReduceScatter(nbytes=8192)
                yield Scan(nbytes=64)

        trace, ded = trace_program(Program("rs-app", 4, gen), cluster)
        bundle = build_skeleton(trace, scaling_factor=3.0, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed == pytest.approx(ded.elapsed / 3.0, rel=0.3)


class TestScan:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 7])
    def test_completes(self, nranks):
        assert run_collective(Scan(nbytes=512), nranks).elapsed >= 0

    def test_chain_latency_scales_with_ranks(self):
        t2 = run_collective(Scan(nbytes=8), 2).elapsed
        t8 = run_collective(Scan(nbytes=8), 8).elapsed
        assert t8 > 2 * t2  # 7 hops vs 1 hop


class TestCharts:
    def test_bar_chart_contains_labels_and_values(self):
        out = bar_chart("Errors", {"BT": 2.9, "CG": 1.8}, unit="%")
        assert "Errors" in out
        assert "BT" in out and "2.90%" in out
        assert "█" in out

    def test_peak_bar_fills_width(self):
        out = bar_chart("", {"a": 10.0, "b": 5.0}, width=10)
        a_line = next(l for l in out.splitlines() if l.startswith("a"))
        assert a_line.count("█") == 10

    def test_zero_values_ok(self):
        out = bar_chart("", {"a": 0.0, "b": 0.0})
        assert "0.00" in out

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("", {"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("", {})

    def test_grouped(self):
        out = grouped_bar_chart(
            "G", {"BT": {"10 s": 2.9, "0.5 s": 5.9}, "CG": {"10 s": 1.8}}
        )
        assert "BT:" in out and "CG:" in out

    def test_series_summary(self):
        s = series_summary([1.0, 2.0, 3.0])
        assert "min 1.00" in s and "avg 2.00" in s and "max 3.00" in s


class TestMultiProbe:
    @pytest.fixture(scope="class")
    def predictor(self):
        cluster = paper_testbed()
        prog = bsp_allreduce(supersteps=200, compute_secs=0.01)
        trace, ded = trace_program(prog, cluster)
        bundle = build_skeleton(trace, scaling_factor=2.0, warn=False)
        return (
            SkeletonPredictor(bundle.program, ded.elapsed, cluster),
            prog,
            cluster,
        )

    def test_interval_orders(self, predictor):
        pred, _prog, _cluster = predictor
        interval = predict_interval(pred, cpu_one_node(), n_probes=4)
        assert interval.low <= interval.expected <= interval.high
        assert interval.n_probes == 4
        assert interval.probe_cost_seconds > 0

    def test_interval_brackets_actual(self, predictor):
        pred, prog, cluster = predictor
        scen = cpu_one_node()
        interval = predict_interval(pred, scen, n_probes=6, base_seed=5)
        actual = run_program(prog, cluster, scen, seed=1234).elapsed
        # With a generous margin the interval must cover the truth.
        assert interval.covers(actual, margin=1.0)

    def test_spread_nonzero_under_bursty_load(self, predictor):
        pred, _prog, _cluster = predictor
        interval = predict_interval(pred, cpu_one_node(), n_probes=5)
        assert interval.high > interval.low

    def test_invalid_probe_count(self, predictor):
        pred, _prog, _cluster = predictor
        with pytest.raises(ReproError):
            predict_interval(pred, cpu_one_node(), n_probes=0)
