"""Parallel campaign scheduler tests.

The load-bearing guarantees:

* a parallel campaign's results are **byte-identical** to a serial
  run of the same config (same seeds, serial-order assembly);
* a SIGKILLed worker is detected, its task re-queued, a replacement
  spawned, and the campaign still completes byte-identically;
* the journal written by a parallel campaign resumes with zero
  re-execution;
* a deterministic in-worker failure surfaces as the same structured
  benchmark failure a serial campaign records.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.experiments.journal import CampaignJournal
from repro.obs.metrics import enabled_metrics
from repro.parallel import campaign_tasks, write_campaign_timeline
from repro.parallel.tasks import KIND_SKEL_BUILD

TINY = ExperimentConfig(
    benchmarks=("cg",),
    klass="S",
    baseline_klass="S",
    skeleton_targets=(0.05,),
    steady=True,
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for monkeypatch inheritance",
)


@pytest.fixture(scope="module")
def serial_results(tmp_path_factory):
    cache = tmp_path_factory.mktemp("serial")
    return ExperimentRunner(TINY, cache_dir=str(cache)).run()


class TestCampaignTasks:
    def test_keys_match_serial_journal_keys(self):
        runner = ExperimentRunner(TINY, cache_dir="/tmp/unused-keys")
        tasks = campaign_tasks(TINY, runner.scenarios)
        keys = [t.key for t in tasks]
        assert "cg.S/trace::dedicated::0" in keys
        assert "cg.S/class-s::dedicated::0" in keys
        # Run-kind task count equals the serial runner's planned runs.
        assert sum(t.is_run for t in tasks) == runner._planned_runs()

    def test_serial_order_and_deps(self):
        runner = ExperimentRunner(TINY, cache_dir="/tmp/unused-deps")
        tasks = campaign_tasks(TINY, runner.scenarios)
        assert [t.index for t in tasks] == list(range(len(tasks)))
        by_key = {t.key: t for t in tasks}
        for task in tasks:
            for dep in task.deps:
                assert by_key[dep].index < task.index
        builds = [t for t in tasks if t.kind == KIND_SKEL_BUILD]
        assert len(builds) == len(TINY.skeleton_targets)
        assert all(
            by_key[b.deps[0]].kind == "trace" for b in builds
        )

    def test_tasks_are_picklable(self):
        import pickle

        runner = ExperimentRunner(TINY, cache_dir="/tmp/unused-pickle")
        tasks = campaign_tasks(TINY, runner.scenarios)
        assert pickle.loads(pickle.dumps(tasks)) == tasks


class TestParallelCampaign:
    def test_byte_identical_to_serial(self, serial_results, tmp_path):
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path), workers=3)
        results = runner.run()
        assert not results.failures
        assert results.to_json() == serial_results.to_json()
        assert runner.n_executed == runner._planned_runs()
        assert runner.campaign_spans  # workers reported their spans

    def test_killed_worker_recovers_byte_identically(
        self, serial_results, tmp_path
    ):
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path), workers=2)
        runner._campaign_kill_plan = {0: 2}  # SIGKILL on its 2nd task
        with enabled_metrics() as m:
            results = runner.run()
        assert not results.failures
        assert results.to_json() == serial_results.to_json()
        snap = m.snapshot()
        assert snap["campaign.worker_restarts"]["value"] >= 1

    def test_parallel_journal_resumes_with_zero_execution(
        self, serial_results, tmp_path, monkeypatch
    ):
        # Keep the journal after success, as if the campaign had been
        # killed right before its final cleanup.
        monkeypatch.setattr(
            CampaignJournal, "remove", lambda self: self.close()
        )
        first = ExperimentRunner(TINY, cache_dir=str(tmp_path), workers=2)
        first.run()
        assert first.journal_path.exists()
        resumed = ExperimentRunner(TINY, cache_dir=str(tmp_path), workers=2)
        results = resumed.run(force=True, resume=True)
        assert resumed.n_executed == 0
        assert resumed.n_resumed == resumed._planned_runs()
        assert results.to_json() == serial_results.to_json()

    def test_parallel_requires_store(self, tmp_path):
        runner = ExperimentRunner(
            TINY, cache_dir=str(tmp_path), workers=2, use_store=False
        )
        with pytest.raises(ExperimentError, match="artifact store"):
            runner.run()

    def test_workers_below_one_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ExperimentRunner(TINY, cache_dir=str(tmp_path), workers=0)


@needs_fork
class TestParallelCrashIsolation:
    def test_injected_failure_matches_serial(self, tmp_path):
        """A deterministic run failure produces the same structured
        failure record (and results bytes) serial execution records."""
        import repro.experiments.runner as runner_mod
        import repro.parallel.scheduler as sched_mod
        from repro.sim.program import run_program as real_run_program

        def sick(program, cluster, scenario=None, seed=0, **kwargs):
            if scenario is not None and scenario.name == "link-one":
                raise ValueError("injected failure")
            return real_run_program(
                program, cluster, scenario, seed=seed, **kwargs
            )

        config = ExperimentConfig(
            benchmarks=("cg", "is"),
            klass="S",
            baseline_klass="S",
            skeleton_targets=(0.05,),
            steady=True,
        )
        old_serial = runner_mod.run_program
        old_par = sched_mod.run_program
        runner_mod.run_program = sick
        sched_mod.run_program = sick
        try:
            serial = ExperimentRunner(
                config, cache_dir=str(tmp_path / "serial")
            ).run()
            parallel = ExperimentRunner(
                config, cache_dir=str(tmp_path / "par"), workers=2
            ).run()
        finally:
            runner_mod.run_program = old_serial
            sched_mod.run_program = old_par
        assert set(serial.failures) == {"cg", "is"}
        for bench in ("cg", "is"):
            assert serial.failures[bench]["error_type"] == "ValueError"
        assert parallel.to_json() == serial.to_json()


class TestCampaignTimeline:
    def test_chrome_trace_export(self, serial_results, tmp_path):
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path), workers=2)
        runner.run()
        out = tmp_path / "campaign.json"
        n = runner.write_campaign_timeline(out)
        assert n == len(runner.campaign_spans) > 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes  # one named lane per worker that ran tasks
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == n
        assert all(e["dur"] >= 0 for e in spans)

    def test_empty_spans_export(self, tmp_path):
        out = tmp_path / "empty.json"
        assert write_campaign_timeline([], out) == 0
        assert json.loads(out.read_text())["traceEvents"]


class TestParallelDiagnosis:
    """Diagnosis output must not depend on how the campaign executed."""

    def test_diagnosis_byte_identical_serial_vs_parallel(
        self, serial_results, tmp_path
    ):
        from repro.diagnose import campaign_divergence

        cache_s = tmp_path / "serial"
        cache_p = tmp_path / "parallel"
        runner_s = ExperimentRunner(TINY, cache_dir=str(cache_s))
        res_s = runner_s.run()
        runner_p = ExperimentRunner(TINY, cache_dir=str(cache_p), workers=2)
        res_p = runner_p.run()
        assert res_s.to_json() == res_p.to_json()

        diag_s = campaign_divergence(runner_s, res_s)
        diag_p = campaign_divergence(runner_p, res_p)
        assert set(diag_s) == set(diag_p) == {"cg"}
        for bench in diag_s:
            assert set(diag_s[bench]) == set(diag_p[bench])
            for scen in diag_s[bench]:
                assert (
                    diag_s[bench][scen].to_json()
                    == diag_p[bench][scen].to_json()
                )
        # The persisted artifacts hit the store on reload and stay
        # byte-identical too.
        warm = campaign_divergence(runner_p, res_p)
        for bench in diag_p:
            for scen in diag_p[bench]:
                assert (
                    warm[bench][scen].to_json()
                    == diag_p[bench][scen].to_json()
                )

    def test_campaign_timeline_deterministic_lanes(self, tmp_path):
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path), workers=2)
        runner.run()
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert runner.write_campaign_timeline(first) == \
            runner.write_campaign_timeline(second) > 0
        assert first.read_bytes() == second.read_bytes()
