"""Unit tests for distributed tracing, the flight recorder, and
structured logging (:mod:`repro.obs.tracing`, :mod:`repro.obs.log`)."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs.log import get_logger, set_log_stream
from repro.obs.metrics import Histogram, MetricsRegistry, render_metrics
from repro.obs.tracing import (
    COMPONENT_PIDS,
    FlightRecorder,
    NULL_TRACER,
    TraceContext,
    Tracer,
    build_span_forest,
    enabled_tracing,
    get_tracer,
    new_root_context,
    render_span_tree,
    set_tracer,
    spans_to_chrome_trace,
)


class TestTraceContext:
    def test_child_derivation_is_deterministic(self):
        ctx = new_root_context(seed="t")
        a = ctx.child("service.predict", 1)
        b = ctx.child("service.predict", 1)
        assert a == b
        assert a.trace_id == ctx.trace_id
        assert a.parent_id == ctx.span_id
        assert a.span_id != ctx.span_id

    def test_sibling_children_are_distinct(self):
        ctx = new_root_context(seed="t")
        assert ctx.child("x", 1) != ctx.child("x", 2)
        assert ctx.child("x", 1) != ctx.child("y", 1)

    def test_seeded_roots_reproducible_unseeded_unique(self):
        assert new_root_context(seed="s") == new_root_context(seed="s")
        assert new_root_context() != new_root_context()

    def test_wire_round_trip(self):
        ctx = new_root_context(seed="t").child("server.request", 1)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    @pytest.mark.parametrize(
        "garbage",
        [None, 7, "x", [], {}, {"trace_id": 1, "span_id": "s"},
         {"trace_id": "t"}, {"span_id": "s"}],
    )
    def test_garbage_wire_field_yields_none(self, garbage):
        assert TraceContext.from_dict(garbage) is None

    def test_non_string_parent_dropped(self):
        ctx = TraceContext.from_dict(
            {"trace_id": "t", "span_id": "s", "parent_id": 3}
        )
        assert ctx is not None and ctx.parent_id is None


class TestTracer:
    def test_default_tracer_is_disabled(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_disabled_tracer_hands_out_null_span(self):
        t = Tracer(enabled=False, capacity=1)
        with t.span("x") as span:
            span.set_attr("k", "v")
            span.add_event("e")
        assert t.recorder.n_spans == 0
        assert span.context is None
        assert span.finish() == {}

    def test_ambient_nesting_parents_correctly(self):
        t = Tracer(enabled=True)
        with t.span("outer", component="service") as outer:
            assert t.current() is outer
            with t.span("inner") as inner:
                assert inner.context.parent_id == outer.context.span_id
                assert inner.context.trace_id == outer.context.trace_id
        assert t.current() is None
        names = [s["name"] for s in t.recorder.spans()]
        assert names == ["inner", "outer"]  # children close first

    def test_manual_start_span_does_not_touch_ambient(self):
        t = Tracer(enabled=True)
        span = t.start_span("server.request", component="server")
        assert t.current() is None
        data = span.finish()
        assert data["component"] == "server"
        assert t.recorder.spans() == [data]

    def test_explicit_context_parent(self):
        t = Tracer(enabled=True)
        ctx = new_root_context(seed="w")
        with t.span("service.predict", parent=ctx) as span:
            assert span.context.trace_id == ctx.trace_id
            assert span.context.parent_id == ctx.span_id

    def test_exception_marks_span_error(self):
        t = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("nope")
        (span,) = t.recorder.spans()
        assert span["status"] == "error"
        assert "RuntimeError" in span["attrs"]["error"]

    def test_ambient_stack_is_thread_local(self):
        t = Tracer(enabled=True)
        seen = {}

        def other():
            seen["current"] = t.current()

        with t.span("outer"):
            th = threading.Thread(target=other)
            th.start()
            th.join()
        assert seen["current"] is None

    def test_enabled_tracing_restores_previous(self):
        before = get_tracer()
        with enabled_tracing() as t:
            assert get_tracer() is t
            assert t.enabled
        assert get_tracer() is before

    def test_set_tracer_none_restores_null(self):
        prev = set_tracer(Tracer(enabled=True))
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER
        set_tracer(prev)


class TestFlightRecorder:
    def _traced(self, n):
        t = Tracer(enabled=True, capacity=4)
        for i in range(n):
            t.start_span(f"s{i}").finish()
        return t.recorder

    def test_ring_is_bounded_and_counts_drops(self):
        rec = self._traced(10)
        assert len(rec.spans()) == 4
        assert rec.n_spans == 10
        assert rec.dropped_spans == 6
        assert [s["name"] for s in rec.spans()] == ["s6", "s7", "s8", "s9"]

    def test_recent_is_newest_first(self):
        rec = self._traced(4)
        assert [s["name"] for s in rec.recent(2)] == ["s3", "s2"]

    def test_trace_spans_filters_by_trace(self):
        t = Tracer(enabled=True)
        with t.span("a") as a:
            trace_id = a.context.trace_id
            with t.span("b"):
                pass
        t.start_span("unrelated").finish()
        names = {s["name"] for s in t.recorder.trace_spans(trace_id)}
        assert names == {"a", "b"}

    def test_span_tree_and_render(self):
        t = Tracer(enabled=True)
        with t.span("root", component="server") as root:
            trace_id = root.context.trace_id
            with t.span("child", component="worker"):
                pass
        (tree,) = t.recorder.span_tree(trace_id)
        assert tree["span"]["name"] == "root"
        assert tree["children"][0]["span"]["name"] == "child"
        text = render_span_tree(t.recorder.trace_spans(trace_id))
        lines = text.splitlines()
        assert lines[0].startswith("root [server]")
        assert f"trace={trace_id}" in lines[0]
        assert lines[1].startswith("  child [worker]")

    def test_render_marks_coalesced(self):
        t = Tracer(enabled=True)
        with t.span("follower") as s:
            s.set_attr("coalesced", True)
        assert "(coalesced)" in render_span_tree(t.recorder.spans())

    def test_render_empty(self):
        assert render_span_tree([]) == "(no spans)"

    def test_slowest_aggregates_stages(self):
        rec = FlightRecorder(capacity=16)
        rec.record({"name": "req", "trace_id": "t1", "span_id": "r",
                    "parent_id": None, "ts": 0.0, "dur": 1.0,
                    "status": "ok", "component": "server"})
        for i, dur in enumerate((0.2, 0.3)):
            rec.record({"name": "stage", "trace_id": "t1",
                        "span_id": f"c{i}", "parent_id": "r",
                        "ts": 0.1, "dur": dur, "status": "ok",
                        "component": "predict"})
        rec.record({"name": "req", "trace_id": "t2", "span_id": "r2",
                    "parent_id": None, "ts": 0.0, "dur": 0.1,
                    "status": "ok", "component": "server"})
        slowest = rec.slowest(5)
        assert [e["span"]["span_id"] for e in slowest] == ["r", "r2"]
        stages = slowest[0]["stages"]
        assert stages["stage"]["count"] == 2
        assert stages["stage"]["seconds"] == pytest.approx(0.5)

    def test_snapshot_shape(self):
        rec = self._traced(6)
        rec.record_event("worker_timeout", worker_id=3)
        snap = rec.snapshot(limit=2)
        assert len(snap["spans"]) == 2
        assert snap["recorded_spans"] == 6
        assert snap["dropped_spans"] == 2
        assert snap["capacity"] == 4
        assert snap["events"][0]["name"] == "worker_timeout"

    def test_record_remote_skips_garbage(self):
        rec = FlightRecorder(capacity=4)
        rec.record_remote([{"name": "ok"}, "junk", 3, None])
        assert [s["name"] for s in rec.spans()] == ["ok"]

    def test_dump_and_maybe_dump(self, tmp_path):
        path = tmp_path / "flight.json"
        t = Tracer(enabled=True, capacity=8, dump_path=str(path))
        with t.span("req"):
            pass
        t.recorder.record_event("error_reply", code=500)
        assert t.recorder.maybe_dump("error_reply") == str(path)
        data = json.loads(path.read_text())
        assert data["reason"] == "error_reply"
        assert data["recorded_spans"] == 1
        assert data["spans"][0]["name"] == "req"
        assert data["events"][0]["name"] == "error_reply"

    def test_maybe_dump_never_raises(self):
        rec = FlightRecorder(capacity=2, dump_path="/nonexistent/x/y.json")
        rec.record({"name": "s", "span_id": "a", "trace_id": "t"})
        assert rec.maybe_dump("crash") is None  # bad path: swallowed
        assert FlightRecorder(capacity=2).maybe_dump("x") is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestChromeExport:
    def _spans(self):
        t = Tracer(enabled=True)
        with t.span("server.request", component="server"):
            with t.span("worker.compute", component="worker"):
                pass
        return t.recorder.spans()

    def test_lanes_and_flow_events(self):
        trace = spans_to_chrome_trace(self._spans())
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {
            COMPONENT_PIDS["server"], COMPONENT_PIDS["worker"]
        }
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert len(flows) == 2  # one s/f pair across the lane boundary
        assert flows[0]["id"] == flows[1]["id"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {
            "serve server", "serve worker"
        }

    def test_timestamps_normalized_to_zero(self):
        trace = spans_to_chrome_trace(self._spans())
        ts = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(ts) == 0.0
        assert max(ts) < 60 * 1e6  # µs since first span, not epoch

    def test_same_lane_has_no_flow(self):
        t = Tracer(enabled=True)
        with t.span("a", component="service"):
            with t.span("b", component="service"):
                pass
        events = spans_to_chrome_trace(t.recorder.spans())["traceEvents"]
        assert not [e for e in events if e["ph"] in ("s", "f")]

    def test_forest_orphans_become_roots(self):
        spans = [
            {"name": "lost-parent", "span_id": "a", "parent_id": "gone",
             "trace_id": "t", "ts": 1.0},
            {"name": "root", "span_id": "b", "parent_id": None,
             "trace_id": "t", "ts": 0.0},
        ]
        roots = build_span_forest(spans)
        assert [r["span"]["name"] for r in roots] == ["root", "lost-parent"]


class TestStructuredLog:
    def test_json_line_shape_and_ordering(self):
        buf = io.StringIO()
        prev = set_log_stream(buf)
        try:
            get_logger("serve.test").info("drain", "draining ...", n=3)
        finally:
            set_log_stream(prev)
        record = json.loads(buf.getvalue())
        assert record["level"] == "info"
        assert record["component"] == "serve.test"
        assert record["event"] == "drain"
        assert record["msg"] == "draining ..."
        assert record["n"] == 3
        assert "trace_id" not in record  # no ambient span

    def test_trace_correlation(self):
        buf = io.StringIO()
        prev_stream = set_log_stream(buf)
        try:
            with enabled_tracing() as t:
                with t.span("req") as span:
                    get_logger("c").warning("slow")
        finally:
            set_log_stream(prev_stream)
        record = json.loads(buf.getvalue())
        assert record["trace_id"] == span.context.trace_id
        assert record["span_id"] == span.context.span_id

    def test_unserialisable_fields_degrade_to_repr(self):
        buf = io.StringIO()
        prev = set_log_stream(buf)
        try:
            get_logger("c").error("boom", exc=ValueError("x"),
                                  nested={"k": (1, 2)})
        finally:
            set_log_stream(prev)
        record = json.loads(buf.getvalue())
        assert "ValueError" in record["exc"]
        assert record["nested"] == {"k": [1, 2]}

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        stream.close()
        prev = set_log_stream(stream)
        try:
            get_logger("c").info("fine")  # must not raise
        finally:
            set_log_stream(prev)


class TestHistogramQuantile:
    def test_empty_histogram_returns_none(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        assert h.quantile(0.5) is None

    def test_out_of_range_q_rejected(self):
        h = Histogram("t", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_interpolation_within_bucket(self):
        h = Histogram("t", buckets=(0.0, 10.0))
        for v in (1.0, 3.0, 5.0, 7.0, 9.0):
            h.observe(v)
        # All mass in the (0, 10] bucket: p50 interpolates linearly
        # between the observed min and the bucket bound.
        assert h.quantile(0.5) == pytest.approx(5.5, abs=1.0)
        assert h.quantile(0.0) == pytest.approx(h.min)
        assert h.quantile(1.0) == pytest.approx(h.max)

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram("t", buckets=(100.0,))
        h.observe(1.0)
        h.observe(2.0)
        assert h.quantile(0.99) <= h.max
        assert h.quantile(0.01) >= h.min

    def test_overflow_mass_reports_max(self):
        h = Histogram("t", buckets=(1.0,))
        h.observe(0.5)
        h.observe(50.0)  # lands in the implicit +inf bucket
        assert h.quantile(0.99) == 50.0

    def test_snapshot_includes_percentiles(self):
        h = Histogram("t")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        snap = h.snapshot()
        for key in ("p50", "p95", "p99"):
            assert snap[key] is not None
            assert h.min <= snap[key] <= h.max

    def test_render_metrics_shows_percentiles(self):
        m = MetricsRegistry(enabled=True)
        timer = m.histogram("stage.trace_seconds", "x")
        for v in (0.1, 0.2, 0.4):
            timer.observe(v)
        text = render_metrics(m)
        assert "p50" in text and "p95" in text and "p99" in text
