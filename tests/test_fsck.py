"""Self-healing doctor tests: ``repro.store.fsck`` and the
``repro-skeleton doctor`` CLI.

The contract: one doctor pass on a damaged cache repairs everything it
can (quarantining, never silently deleting, corrupt data) and a second
pass reports clean.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import main
from repro.experiments.journal import CampaignJournal
from repro.obs.metrics import enabled_metrics
from repro.store import ArtifactStore, FsckReport, fsck


def _put_one(store: ArtifactStore, n: int = 0):
    key = store.key("trace", {"n": n})
    store.put(
        key,
        {"v": n},
        blob_writers={"data": lambda p: p.write_bytes(b"payload-%d" % n)},
    )
    return key


def _age(path, seconds: float = 3600.0) -> None:
    t = time.time() - seconds
    os.utime(path, (t, t))


def _damage(root) -> ArtifactStore:
    """Build a store exhibiting every damage class fsck handles."""
    store = ArtifactStore(root)
    _put_one(store, 0)                       # intact artifact
    corrupt_key = _put_one(store, 1)         # flipped content byte
    obj = store.object_path(corrupt_key)
    obj.write_text(obj.read_text().replace('"v": 1', '"v": 111'))
    unparseable_key = _put_one(store, 2)     # half a JSON envelope
    obj2 = store.object_path(unparseable_key)
    obj2.write_text(obj2.read_text()[: obj2.stat().st_size // 2])

    orphan = store._blob_dir / "0rphan-data"  # stale unreferenced blob
    orphan.write_bytes(b"nobody references me")
    _age(orphan)
    stale_tmp = store._objects / "ab" / "x.json.tmp123"
    stale_tmp.parent.mkdir(parents=True, exist_ok=True)
    stale_tmp.write_text("{")
    _age(stale_tmp)

    j = CampaignJournal(store.root / "journal-camp.jsonl")
    j.record("run-1", {"status": "ok"})
    j.close()
    with open(j.path, "ab") as fh:            # torn trailing line
        fh.write(b'{"key": "run-2", "status": "o')
    return store


class TestFsck:
    def test_repair_then_clean(self, tmp_path):
        store = _damage(tmp_path)
        with enabled_metrics() as m:
            report = fsck(store)
        assert not report.clean
        assert report.objects_scanned == 3
        assert len(report.corrupt_objects) == 2
        assert len(report.orphan_blobs) == 1
        assert len(report.tmp_removed) == 1
        assert report.journals_scanned == 1
        assert report.journals_repaired == ["journal-camp.jsonl"]
        assert report.partial_lines_dropped == 1
        snap = m.snapshot()
        assert snap["store.quarantined"]["value"] == len(report.quarantined)

        # Quarantined, not deleted: the files moved, byte-for-byte.
        qdir = store.root / "store" / "quarantine"
        assert len(list(qdir.iterdir())) == len(report.quarantined)
        # The corrupt envelopes took their referenced blobs with them.
        assert len(report.quarantined) >= len(report.corrupt_objects)

        # The journal truncated back to its last intact line.
        lines = (store.root / "journal-camp.jsonl").read_bytes().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["key"] == "run-1"

        # The intact artifact survived untouched.
        art = store.get(store.key("trace", {"n": 0}))
        assert art is not None and art.content == {"v": 0}

        second = fsck(store)
        assert second.clean, second.render()

    def test_dry_run_mutates_nothing(self, tmp_path):
        store = _damage(tmp_path)
        before = sorted(
            str(p) for p in store.root.rglob("*") if p.is_file()
        )
        report = fsck(store, repair=False)
        assert not report.clean and not report.repaired
        assert report.quarantined == []  # found, but not moved
        after = sorted(str(p) for p in store.root.rglob("*") if p.is_file())
        assert before == after

    def test_quota_evicts_least_recently_read(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [_put_one(store, n) for n in range(3)]
        for i, key in enumerate(keys):
            _age(store.object_path(key), 3600.0 - i)
        store.get(keys[0])  # a read refreshes key 0's recency
        sizes = store.total_bytes()
        with enabled_metrics() as m:
            report = fsck(store, max_cache_bytes=sizes // 2)
        assert report.evicted  # some eviction happened...
        assert keys[0].digest not in report.evicted  # ...but not the hot key
        assert report.bytes_after <= sizes // 2
        assert store.get(keys[0]) is not None
        assert m.snapshot()["store.evicted"]["value"] == len(report.evicted)
        assert report.clean  # quota eviction is not damage

    def test_report_roundtrip(self, tmp_path):
        report = fsck(_damage(tmp_path))
        d = report.to_dict()
        assert d["clean"] is False
        assert json.loads(json.dumps(d)) == d
        text = report.render()
        assert "REPAIRED" in text and str(tmp_path) in text

    def test_fresh_inflight_files_are_not_damage(self, tmp_path):
        """A concurrent writer's fresh tmp/orphan is left alone."""
        store = ArtifactStore(tmp_path)
        _put_one(store, 0)
        blob = store._blob_dir / "fresh-data"
        blob.write_bytes(b"mid-publish")
        tmp = store._objects / "ab" / "y.json.tmp42"
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text("{")
        report = fsck(store)
        assert report.clean
        assert blob.exists() and tmp.exists()


class TestDoctorCli:
    def test_doctor_repairs_then_reports_clean(self, tmp_path, capsys):
        _damage(tmp_path)
        report_file = tmp_path / "fsck-report.json"
        rc = main([
            "doctor", "--cache-dir", str(tmp_path),
            "--report", str(report_file),
        ])
        assert rc == 0  # repaired successfully
        out = capsys.readouterr().out
        assert "REPAIRED" in out
        dumped = json.loads(report_file.read_text())
        assert dumped["clean"] is False and dumped["repaired"] is True

        rc = main(["doctor", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_doctor_dry_run_exit_code_flags_issues(self, tmp_path, capsys):
        _damage(tmp_path)
        assert main(["doctor", "--cache-dir", str(tmp_path), "--dry-run"]) == 1
        assert "dry run" in capsys.readouterr().out
        # Nothing was repaired, so a second dry run still flags.
        assert main(["doctor", "--cache-dir", str(tmp_path), "--dry-run"]) == 1
        # Clean cache: dry run exits 0.
        clean_dir = tmp_path / "clean"
        ArtifactStore(clean_dir)
        _put_one(ArtifactStore(clean_dir))
        assert main(["doctor", "--cache-dir", str(clean_dir), "--dry-run"]) == 0

    def test_doctor_enforces_quota(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path)
        for n in range(4):
            _put_one(store, n)
        budget = store.total_bytes() // 2
        rc = main([
            "doctor", "--cache-dir", str(tmp_path),
            "--max-cache-bytes", str(budget),
        ])
        assert rc == 0
        assert "evicted" in capsys.readouterr().out
        assert store.total_bytes() <= budget
