"""Content-addressed artifact store and pipeline memoization tests.

Covers the keying contract (canonical JSON + salt), integrity
verification on read, cache-dir resolution precedence, maintenance
operations (gc/verify/prune), the PipelineCache stage wrappers, and
the campaign runner's zero-recompute warm path.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError, StoreError
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.obs.metrics import enabled_metrics
from repro.store import (
    ArtifactStore,
    CODE_SALT,
    PipelineCache,
    canonical_json,
    content_digest,
    resolve_cache_dir,
    scenario_fingerprint,
    workload_params,
)

TINY = ExperimentConfig(
    benchmarks=("cg",),
    klass="S",
    baseline_klass="S",
    skeleton_targets=(0.05,),
    steady=True,
)


class TestKeying:
    def test_canonical_json_is_order_independent(self):
        a = canonical_json({"b": 1, "a": [1.5, 2]})
        b = canonical_json({"a": [1.5, 2], "b": 1})
        assert a == b == '{"a":[1.5,2],"b":1}'

    def test_digest_is_stable(self):
        assert content_digest("x") == content_digest(b"x")
        assert len(content_digest("x")) == 32  # BLAKE2b-128 hex

    def test_key_depends_on_stage_params_and_salt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        base = store.key("run", {"seed": 1})
        assert store.key("run", {"seed": 1}) == base
        assert store.key("run", {"seed": 2}) != base
        assert store.key("trace", {"seed": 1}) != base
        assert store.key("run", {"seed": 1}, salt="other") != base
        assert store.key("run", {"seed": 1}, salt=CODE_SALT) == base

    def test_float_params_keep_exact_identity(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.key("s", {"t": 0.1}) == store.key("s", {"t": 0.1})
        assert store.key("s", {"t": 0.1}) != store.key("s", {"t": 0.1000001})


class TestCacheDirResolution:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"

    def test_env_var_beats_project_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"

    def test_project_root_anchor(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        sub = tmp_path / "a" / "b"
        sub.mkdir(parents=True)
        monkeypatch.chdir(sub)
        assert resolve_cache_dir() == tmp_path / ".repro_cache"

    def test_cwd_fallback_without_markers(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        # /tmp/... has no project markers up the chain in CI sandboxes;
        # if an ancestor does, the resolved dir must still end with the
        # canonical basename.
        assert resolve_cache_dir().name == ".repro_cache"


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("run", {"seed": 7})
        store.put(key, {"result": {"elapsed": 1.25}})
        art = store.get(key)
        assert art is not None
        assert art.stage == "run"
        assert art.content == {"result": {"elapsed": 1.25}}
        assert art.params == {"seed": 7}

    def test_get_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(store.key("run", {"seed": 404})) is None

    def test_blobs_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("trace", {"p": 1})
        store.put(
            key,
            {"meta": True},
            blob_writers={"trace": lambda p: p.write_bytes(b"payload")},
        )
        art = store.get(key)
        assert art.blobs["trace"].read_bytes() == b"payload"

    def test_corrupt_content_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("run", {"seed": 1})
        path = store.put(key, {"v": 1})
        envelope = json.loads(path.read_text())
        envelope["content"]["v"] = 2  # tamper without fixing the digest
        path.write_text(json.dumps(envelope))
        with enabled_metrics() as m:
            assert store.get(key) is None
        snap = m.snapshot()
        assert snap["store.corrupt"]["value"] == 1
        with pytest.raises(StoreError):
            store.get(key, on_error="raise")

    def test_corrupt_blob_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("trace", {"p": 2})
        store.put(
            key, {}, blob_writers={"b": lambda p: p.write_bytes(b"good")}
        )
        store.get(key).blobs["b"].write_bytes(b"rotten")
        assert store.get(key) is None

    def test_hit_miss_metrics_labelled_by_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("signature", {"n": 1})
        with enabled_metrics() as m:
            store.get(key)
            store.put(key, {"sig": []})
            store.get(key)
        snap = m.snapshot()
        assert snap["store.misses"]["labels"] == {"stage=signature": 1.0}
        assert snap["store.hits"]["labels"] == {"stage=signature": 1.0}
        assert snap["store.writes"]["labels"] == {"stage=signature": 1.0}

    def test_entries_and_total_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(store.key("run", {"a": 1}), {"v": 1})
        store.put(store.key("trace", {"b": 2}), {"v": 2})
        entries = store.entries()
        assert sorted(e["stage"] for e in entries) == ["run", "trace"]
        assert store.total_bytes() > 0

    def test_gc_by_age(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("run", {"a": 1})
        path = store.put(key, {"v": 1})
        envelope = json.loads(path.read_text())
        envelope["created"] -= 10_000
        # Rewriting 'created' invalidates nothing: it is outside the
        # content digest.
        path.write_text(json.dumps(envelope))
        assert store.gc(max_age_seconds=5_000) == [key.digest]
        assert store.get(key) is None

    def test_gc_by_bytes_evicts_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        old = store.key("run", {"n": "old"})
        new = store.key("run", {"n": "new"})
        old_path = store.put(old, {"v": "x" * 100})
        store.put(new, {"v": "y" * 100})
        envelope = json.loads(old_path.read_text())
        envelope["created"] -= 100
        old_path.write_text(json.dumps(envelope))
        # Budget of 3/4 of the store: evicting the oldest of the two
        # (roughly equal-sized) artifacts suffices, the newer survives.
        evicted = store.gc(max_bytes=store.total_bytes() * 3 // 4)
        assert old.digest in evicted
        assert store.get(new) is not None

    def test_verify_and_prune(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("run", {"a": 1})
        path = store.put(key, {"v": 1})
        orphan = store.blob_path("deadbeef", "trace")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"junk")
        path.write_text("{broken")
        # With grace=0 the fresh orphan is reportable immediately.
        issues = store.verify(grace_seconds=0.0)
        assert any("unreadable" in i for i in issues)
        assert any("orphan" in i for i in issues)
        removed = store.prune(grace_seconds=0.0)
        assert removed == {"objects": 1, "blobs": 1, "tmp": 0}
        assert store.verify(grace_seconds=0.0) == []

    def test_verify_and_prune_spare_fresh_orphans(self, tmp_path):
        """Default grace protects a concurrent writer's in-flight blob."""
        store = ArtifactStore(tmp_path)
        orphan = store.blob_path("deadbeef", "trace")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"mid-write")
        tmp = orphan.with_name(orphan.name + ".tmp123")
        tmp.write_bytes(b"partial")
        assert store.verify() == []
        removed = store.prune()
        assert removed == {"objects": 0, "blobs": 0, "tmp": 0}
        assert orphan.exists() and tmp.exists()


class TestPipelineCache:
    def test_simulated_run_memoizes(self, tmp_path):
        from repro.cluster.contention import DEDICATED
        from repro.cluster.topology import paper_testbed
        from repro.sim import run_program
        from repro.workloads import get_program

        cluster = paper_testbed()
        cache = PipelineCache(ArtifactStore(tmp_path), cluster)
        program = get_program("cg", "S", 4, 12345)
        params = workload_params("cg", "S", 4, 12345)
        calls = []

        def compute():
            calls.append(1)
            return run_program(program, cluster)

        first = cache.simulated_run(params, DEDICATED, 0, compute)
        second = cache.simulated_run(params, DEDICATED, 0, compute)
        assert len(calls) == 1
        assert first == second

    def test_disabled_cache_is_pass_through(self, tmp_path):
        from repro.cluster.contention import DEDICATED
        from repro.cluster.topology import paper_testbed
        from repro.sim import run_program
        from repro.workloads import get_program

        cluster = paper_testbed()
        cache = PipelineCache(
            ArtifactStore(tmp_path), cluster, enabled=False
        )
        program = get_program("cg", "S", 4, 12345)
        params = workload_params("cg", "S", 4, 12345)
        calls = []

        def compute():
            calls.append(1)
            return run_program(program, cluster)

        cache.simulated_run(params, DEDICATED, 0, compute)
        cache.simulated_run(params, DEDICATED, 0, compute)
        assert len(calls) == 2
        assert ArtifactStore(tmp_path).entries() == []

    def test_scenario_fingerprint_distinguishes_scenarios(self):
        from repro.cluster.scenarios import paper_scenarios

        scens = paper_scenarios(4, steady=True)
        fps = {scenario_fingerprint(s) for s in scens}
        assert len(fps) == len(scens)
        assert scenario_fingerprint(scens[0]) == scenario_fingerprint(scens[0])


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def warm(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("store-campaign")
        runner = ExperimentRunner(TINY, cache_dir=str(cache))
        results = runner.run()
        return cache, results

    def test_warm_rerun_serves_every_stage_from_store(self, warm):
        cache, cold = warm
        with enabled_metrics() as m:
            runner = ExperimentRunner(TINY, cache_dir=str(cache))
            hot = runner.run(force=True)
        snap = m.snapshot()
        assert "store.misses" not in snap
        assert snap["store.hits"]["value"] > 0
        # The expensive compression search never re-ran.
        assert "construct.skeletons_built" not in snap
        assert hot.to_json() == cold.to_json()

    def test_legacy_results_file_still_read(self, warm, tmp_path):
        cache, cold = warm
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path))
        runner.legacy_cache_path.parent.mkdir(parents=True, exist_ok=True)
        runner.legacy_cache_path.write_text(cold.to_json())
        loaded = runner.load_cached()
        assert loaded is not None
        assert loaded.to_json() == cold.to_json()

    def test_corrupt_legacy_cache_rejected(self, tmp_path):
        runner = ExperimentRunner(TINY, cache_dir=str(tmp_path))
        runner.legacy_cache_path.parent.mkdir(parents=True, exist_ok=True)
        runner.legacy_cache_path.write_text("{broken")
        with pytest.raises(ExperimentError):
            runner.load_cached()

    def test_runner_honours_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        runner = ExperimentRunner(TINY)
        assert runner.cache_dir == tmp_path / "via-env"
