"""Workload model tests: parameter tables, registry, benchmark runs."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.errors import WorkloadError
from repro.sim import run_program
from repro.trace import trace_program, trace_stats
from repro.workloads import (
    available_benchmarks,
    compute_seconds,
    get_program,
    grid_2d,
    problem,
)
from repro.workloads.base import ComputeModel, WorkloadSpec, perturbed_counts
from repro.util.rng import make_rng


class TestNpbData:
    def test_all_benchmarks_have_all_classes(self):
        for bench in ("cg", "is", "bt", "sp", "lu", "mg"):
            for klass in ("S", "W", "A", "B", "C"):
                assert problem(bench, klass) is not None

    def test_class_c_larger_than_b(self):
        assert problem("cg", "C").na > problem("cg", "B").na
        assert problem("bt", "C").nx > problem("bt", "B").nx

    def test_class_b_larger_than_s(self):
        assert problem("cg", "B").na > problem("cg", "S").na
        assert problem("is", "B").total_keys > problem("is", "S").total_keys
        assert problem("lu", "B").nx > problem("lu", "S").nx

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            problem("xx", "B")

    def test_unknown_class(self):
        with pytest.raises(WorkloadError):
            problem("cg", "Z")

    def test_case_insensitive(self):
        assert problem("CG", "b") is problem("cg", "B")


class TestBase:
    def test_compute_seconds(self):
        assert compute_seconds(4.0e8) == pytest.approx(1.0)
        assert compute_seconds(4.0e8, efficiency=0.5) == pytest.approx(2.0)

    def test_compute_seconds_rejects_negative(self):
        with pytest.raises(WorkloadError):
            compute_seconds(-1.0)

    def test_grid_2d_square(self):
        assert grid_2d(4) == (2, 2)
        assert grid_2d(16) == (4, 4)

    def test_grid_2d_rectangular(self):
        rows, cols = grid_2d(8)
        assert rows * cols == 8

    def test_grid_2d_prime(self):
        assert grid_2d(7) == (1, 7)

    def test_registry(self):
        assert available_benchmarks() == [
            "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
        ]

    def test_unknown_program(self):
        with pytest.raises(WorkloadError):
            get_program("nope")

    def test_compute_model_jitter_bounds(self):
        spec = WorkloadSpec(benchmark="cg", jitter=0.1)
        cm = ComputeModel(spec, rank=0)
        for _ in range(100):
            op = cm.compute(1.0)
            # skew (±5%) times jitter (±10%).
            assert 0.8 < op.seconds < 1.2

    def test_compute_model_zero(self):
        spec = WorkloadSpec(benchmark="cg")
        cm = ComputeModel(spec, rank=0)
        assert cm.compute(0.0).seconds == 0.0

    def test_perturbed_counts_sum_preserved(self):
        rng = make_rng(1, "t")
        for total in (0, 1, 100, 10_000_000):
            counts = perturbed_counts(rng, total, 4, 0.1)
            assert sum(counts) == total
            assert all(c >= 0 for c in counts)

    def test_perturbed_counts_rejects_zero_parts(self):
        with pytest.raises(WorkloadError):
            perturbed_counts(make_rng(1), 10, 0)


@pytest.mark.parametrize("bench", ["bt", "cg", "is", "lu", "mg", "sp"])
class TestClassSRuns:
    """Every Class S benchmark must run to completion quickly and
    reproducibly on the paper testbed."""

    def test_runs_and_is_deterministic(self, bench):
        cluster = paper_testbed()
        prog = get_program(bench, "S", 4)
        a = run_program(prog, cluster)
        b = run_program(prog, cluster)
        assert a.finish_times == b.finish_times
        assert 0.001 < a.elapsed < 5.0  # Class S runs under seconds

    def test_trace_structure(self, bench):
        cluster = paper_testbed()
        prog = get_program(bench, "S", 4)
        trace, result = trace_program(prog, cluster)
        trace.validate()
        stats = trace_stats(trace)
        assert stats["n_calls"] > 4 * 4  # every rank communicates
        assert 0 < stats["mpi_percent"] < 100

    def test_workload_seed_changes_timing(self, bench):
        cluster = paper_testbed()
        a = run_program(get_program(bench, "S", 4, seed=1), cluster)
        b = run_program(get_program(bench, "S", 4, seed=2), cluster)
        assert a.elapsed != b.elapsed


class TestScalingAcrossClasses:
    def test_class_w_between_s_and_b(self):
        cluster = paper_testbed()
        times = {}
        for klass in ("S", "W"):
            times[klass] = run_program(
                get_program("cg", klass, 4), cluster
            ).elapsed
        assert times["S"] < times["W"]

    def test_nprocs_validation(self):
        with pytest.raises(WorkloadError):
            get_program("cg", "S", 3)  # not a power of two
        with pytest.raises(WorkloadError):
            get_program("lu", "S", 5)

    def test_other_power_of_two_sizes_run(self):
        cluster = paper_testbed(8)
        for bench in ("cg", "is", "mg", "lu"):
            prog = get_program(bench, "S", 8)
            result = run_program(prog, cluster)
            assert result.elapsed > 0

    def test_bt_sp_square_grids(self):
        cluster = paper_testbed(4)
        for bench in ("bt", "sp"):
            run_program(get_program(bench, "S", 4), cluster)
