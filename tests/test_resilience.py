"""Resilient campaign runner: retry/timeout primitives, the campaign
journal, checkpoint/resume, and crash isolation."""

from __future__ import annotations

import json

import pytest

from repro.errors import RunTimeoutError
from repro.experiments import (
    CampaignJournal,
    ExperimentConfig,
    ExperimentResults,
    ExperimentRunner,
)
from repro.experiments.report import full_report, partial_banner
from repro.faults import RetryPolicy, resilient_call, run_with_timeout

TINY = ExperimentConfig(
    benchmarks=("cg", "is"),
    klass="S",
    baseline_klass="S",
    skeleton_targets=(0.05, 0.01),
    steady=True,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_resilient_call_retries_retryable(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        value, used = resilient_call(
            flaky,
            RetryPolicy(max_attempts=3, backoff_base=0.01),
            sleep=slept.append,
        )
        assert value == "ok" and used == 3
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_resilient_call_gives_up_after_max_attempts(self):
        def always_bad():
            raise OSError("still broken")

        with pytest.raises(OSError):
            resilient_call(
                always_bad,
                RetryPolicy(max_attempts=2, backoff_base=0.0),
                sleep=lambda _: None,
            )

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def model_error():
            calls.append(1)
            raise ValueError("deterministic model bug")

        with pytest.raises(ValueError):
            resilient_call(model_error, RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_on_retry_hook_fires(self):
        seen = []

        def flaky():
            if not seen:
                raise OSError("once")
            return 1

        resilient_call(
            flaky,
            RetryPolicy(max_attempts=2, backoff_base=0.0),
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
            sleep=lambda _: None,
        )
        assert seen == [(1, OSError)]

    def test_run_with_timeout_aborts_runaway(self):
        import time

        with pytest.raises(RunTimeoutError):
            run_with_timeout(lambda: time.sleep(5), timeout=0.05)

    def test_run_with_timeout_none_disables(self):
        assert run_with_timeout(lambda: 42, timeout=None) == 42

    def test_timeout_is_retryable_by_default(self):
        assert RunTimeoutError in RetryPolicy().retryable


class TestCampaignJournal:
    def test_round_trip_last_entry_wins(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.record("a", {"status": "failed", "error": "x"})
        journal.record("b", {"status": "ok", "result": {"elapsed": 1.5}})
        journal.record("a", {"status": "ok", "result": {"elapsed": 2.0}})
        journal.close()
        loaded = journal.load()
        assert set(loaded) == {"a", "b"}
        assert loaded["a"]["status"] == "ok"
        assert loaded["a"]["result"]["elapsed"] == 2.0

    def test_truncated_last_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.record("a", {"status": "ok"})
        journal.record("b", {"status": "ok"})
        journal.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 8])  # kill mid-write
        loaded = journal.load()
        assert set(loaded) == {"a"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "nope.jsonl").load() == {}

    def test_remove(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.record("a", {"status": "ok"})
        journal.remove()
        assert not (tmp_path / "j.jsonl").exists()
        journal.remove()  # idempotent


class TestCheckpointResume:
    def test_killed_campaign_resumes_identically(self, tmp_path):
        baseline = ExperimentRunner(
            TINY, cache_dir=str(tmp_path / "a")
        ).run().to_json()

        cache = tmp_path / "b"
        runner = ExperimentRunner(TINY, cache_dir=str(cache))
        real = runner._measure
        count = {"n": 0}

        def killer(*args, **kwargs):
            if count["n"] == 9:
                raise KeyboardInterrupt
            count["n"] += 1
            return real(*args, **kwargs)

        runner._measure = killer
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        assert runner.journal_path.exists()

        fresh = ExperimentRunner(TINY, cache_dir=str(cache))
        results = fresh.run(resume=True)
        assert results.to_json() == baseline
        assert fresh.n_resumed == 9  # zero completed runs re-executed
        assert not fresh.journal_path.exists()  # cleaned up on success

    def test_without_resume_journal_is_discarded(self, tmp_path):
        cache = tmp_path / "c"
        runner = ExperimentRunner(TINY, cache_dir=str(cache))
        real = runner._measure
        count = {"n": 0}

        def killer(*args, **kwargs):
            if count["n"] == 3:
                raise KeyboardInterrupt
            count["n"] += 1
            return real(*args, **kwargs)

        runner._measure = killer
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        fresh = ExperimentRunner(TINY, cache_dir=str(cache))
        fresh.run()
        assert fresh.n_resumed == 0


class TestCrashIsolation:
    def _sick_campaign(self, tmp_path, monkeypatch):
        """One benchmark (cg) fails permanently under one scenario."""
        import repro.experiments.runner as runner_mod

        real = runner_mod.run_program

        def sick(program, cluster, scenario=None, **kwargs):
            if (
                scenario is not None
                and program.name.startswith("cg")
                and scenario.name == "link-one"
            ):
                raise OSError("simulated host failure")
            if scenario is None:
                return real(program, cluster, **kwargs)
            return real(program, cluster, scenario, **kwargs)

        monkeypatch.setattr(runner_mod, "sick_patch", sick, raising=False)
        monkeypatch.setattr(runner_mod, "run_program", sick)
        cfg = ExperimentConfig(
            benchmarks=("cg", "is"), klass="S", baseline_klass="S",
            skeleton_targets=(0.05,), steady=True,
        )
        policy = RetryPolicy(max_attempts=1, backoff_base=0.0)
        return ExperimentRunner(
            cfg, cache_dir=str(tmp_path), retry_policy=policy
        ).run()

    def test_one_failure_does_not_kill_campaign(self, tmp_path, monkeypatch):
        results = self._sick_campaign(tmp_path, monkeypatch)
        assert results.is_partial
        assert set(results.failures) == {"cg"}
        failure = results.failures["cg"]
        assert failure["error_type"] == "OSError"
        assert "link-one" in failure["run"]
        # the healthy benchmark completed in full
        assert results.benchmarks() == ["is"]
        assert "cg" not in results.apps

    def test_partial_results_round_trip_and_report(self, tmp_path, monkeypatch):
        results = self._sick_campaign(tmp_path, monkeypatch)
        again = ExperimentResults.from_json(results.to_json())
        assert again.failures == results.failures
        assert again.is_partial
        report = full_report(again)
        assert "PARTIAL RESULTS" in report
        assert "OSError" in report
        assert "IS" in report  # healthy benchmark still reported

    def test_banner_empty_for_complete_results(self):
        results = ExperimentResults(
            config={"benchmarks": []}, scenario_names=[]
        )
        assert partial_banner(results) == ""
        assert "nothing to report" in full_report(results)


class TestResultSerialization:
    def test_failures_default_for_old_caches(self):
        blob = json.dumps(
            {
                "config": {"benchmarks": []},
                "scenario_names": [],
                "apps": {},
                "skeletons": {},
                "class_s": {},
            }
        )
        results = ExperimentResults.from_json(blob)
        assert results.failures == {}
        assert not results.is_partial
