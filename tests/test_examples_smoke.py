"""Smoke-run every example script (they are part of the public
surface; they must keep working)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # codegen example writes a .c file
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
