"""Tests for the extended trace analysis and CLI additions."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.cluster import paper_testbed
from repro.trace import (
    imbalance_ratio,
    message_size_histogram,
    rank_breakdowns,
    trace_program,
)
from repro.sim import Compute, Program, Recv, Send
from repro.workloads import get_program


class TestRankBreakdowns:
    def test_per_rank_split(self, cg_s_trace):
        trace, _ = cg_s_trace
        breakdowns = rank_breakdowns(trace)
        assert len(breakdowns) == trace.nranks
        for b in breakdowns:
            assert b.mpi_time >= 0
            assert b.compute_time >= 0
            assert b.elapsed == pytest.approx(b.mpi_time + b.compute_time,
                                              rel=1e-6)

    def test_imbalance_detects_skew(self):
        cluster = paper_testbed()

        def gen(rank, size):
            yield Compute(0.1 * (rank + 1))
            from repro.sim import Barrier

            yield Barrier()

        trace, _ = trace_program(Program("skew", 4, gen), cluster)
        ratio = imbalance_ratio(trace)
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_balanced_near_one(self, cg_s_trace):
        trace, _ = cg_s_trace
        assert imbalance_ratio(trace) < 1.3


class TestHistogram:
    def test_buckets_cover_all_calls(self, cg_s_trace):
        trace, _ = cg_s_trace
        histogram = message_size_histogram(trace)
        assert sum(histogram.values()) == trace.n_calls()

    def test_bulk_bucket(self):
        cluster = paper_testbed()

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=8_000_000, tag=1)
            elif rank == 1:
                yield Recv(source=0, nbytes=8_000_000, tag=1)

        trace, _ = trace_program(Program("bulk", 2, gen), cluster)
        histogram = message_size_histogram(trace)
        assert histogram[">=4194304B"] == 2  # send + recv record


class TestCliSignatureStats:
    def test_signature_build_and_inspect(self, tmp_path, capsys):
        trace_file = str(tmp_path / "mg.trace")
        sig_file = str(tmp_path / "mg.sig")
        main(["trace", "mg", "--klass", "S", "-o", trace_file])
        capsys.readouterr()
        rc = main(["signature", trace_file, "-o", sig_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compression" in out

        rc = main(["signature", sig_file, "--inspect"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mg.S.4" in out

    def test_stats_command(self, tmp_path, capsys):
        trace_file = str(tmp_path / "cg.trace")
        main(["trace", "cg", "--klass", "S", "-o", trace_file])
        capsys.readouterr()
        rc = main(["stats", trace_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "calls by type" in out
        assert "MPI_Sendrecv" in out
        assert "imbalance" in out
