"""Tests for trace slicing."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.errors import TraceError
from repro.trace import trace_program
from repro.trace.slicing import slice_ranks, slice_time
from repro.workloads.synthetic import bsp_allreduce


@pytest.fixture(scope="module")
def bsp_trace():
    cluster = paper_testbed()
    trace, _ = trace_program(
        bsp_allreduce(supersteps=20, compute_secs=0.01), cluster
    )
    return trace


class TestSliceTime:
    def test_window_contains_only_window_records(self, bsp_trace):
        total = bsp_trace.elapsed
        window = slice_time(bsp_trace, 0.0, total / 2)
        for rank in range(window.nranks):
            for rec in window.rank_records(rank):
                assert rec.t_end <= total / 2 + 1e-9

    def test_rebased_timestamps(self, bsp_trace):
        window = slice_time(bsp_trace, 0.05, 0.15)
        for rank in range(window.nranks):
            for rec in window.rank_records(rank):
                assert rec.t_start >= 0.0
                assert rec.t_end <= 0.1 + 1e-9

    def test_full_window_is_identity(self, bsp_trace):
        window = slice_time(bsp_trace, 0.0, bsp_trace.elapsed + 1.0)
        assert window.n_calls() == bsp_trace.n_calls()
        assert window.finish_times == pytest.approx(bsp_trace.finish_times)

    def test_straddling_calls_clipped(self, bsp_trace):
        # Pick a boundary inside some call by scanning for one.
        rec = bsp_trace.rank_records(0)[3]
        mid = (rec.t_start + rec.t_end) / 2
        window = slice_time(bsp_trace, 0.0, mid)
        clipped = window.rank_records(0)[3]
        assert clipped.t_end == pytest.approx(mid, abs=1e-9)
        assert clipped.duration < rec.duration + 1e-12

    def test_empty_window_rejected(self, bsp_trace):
        with pytest.raises(TraceError):
            slice_time(bsp_trace, 1.0, 1.0)

    def test_validates_after_slicing(self, bsp_trace):
        window = slice_time(bsp_trace, 0.02, 0.2)
        window.validate()


class TestSliceRanks:
    def test_subset_and_renumber(self, bsp_trace):
        sub = slice_ranks(bsp_trace, [1, 3])
        assert sub.nranks == 2
        assert len(sub.finish_times) == 2
        assert sub.finish_times[0] == bsp_trace.finish_times[1]

    def test_peer_remapping(self, bsp_trace):
        sub = slice_ranks(bsp_trace, [0, 1])
        for rank in range(2):
            for rec in sub.rank_records(rank):
                peer = rec.params.get("peer", -1)
                # Remapped peers are dense; unmapped externals keep
                # their original (>= kept count) ids.
                assert peer == -1 or peer < 4

    def test_invalid_ranks_rejected(self, bsp_trace):
        with pytest.raises(TraceError):
            slice_ranks(bsp_trace, [])
        with pytest.raises(TraceError):
            slice_ranks(bsp_trace, [99])
