"""Trace-compression driver tests (threshold search, Q = K/2 rule)."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.core.compress import CompressionOptions, compress_trace
from repro.core.events import trace_to_streams
from repro.errors import SignatureError
from repro.sim import Compute, Program, Send, Recv, Allreduce
from repro.trace import trace_program
from repro.trace.records import Trace, TraceRecord
from repro.workloads.synthetic import bsp_allreduce


def varying_size_trace(sizes):
    """A 1-rank trace of sends whose sizes vary across iterations."""
    trace = Trace(program_name="var", scenario_name="d", nranks=1)
    t = 0.0
    recs = []
    for s in sizes:
        recs.append(
            TraceRecord("MPI_Send", {"peer": 1, "bytes": s, "tag": 0},
                        t + 0.01, t + 0.011)
        )
        t += 0.011
    trace.records[0] = recs
    trace.finish_times = [t]
    return trace


class TestThresholdSearch:
    def test_threshold_zero_when_trivially_compressible(self, cluster):
        trace, _ = trace_program(bsp_allreduce(supersteps=30), cluster)
        sig = compress_trace(trace, target_ratio=5.0)
        assert sig.threshold == 0.0
        assert sig.compression_ratio >= 5.0

    def test_threshold_rises_for_varying_sizes(self):
        # Sizes within 5% of 10000: need threshold ~0.05 to merge.
        sizes = [10_000, 9_800, 10_100, 9_900, 10_050, 9_950] * 5
        trace = varying_size_trace(sizes)
        sig = compress_trace(trace, target_ratio=10.0)
        assert 0.0 < sig.threshold <= 0.25
        assert sig.compression_ratio >= 10.0

    def test_threshold_capped(self):
        # Wildly different sizes: compression target unreachable.
        sizes = [10 ** (i % 7) for i in range(20)]
        trace = varying_size_trace(sizes)
        options = CompressionOptions(max_threshold=0.2, patience=100)
        sig = compress_trace(trace, target_ratio=1000.0, options=options)
        assert sig.threshold <= 0.2

    def test_patience_stops_fruitless_search(self):
        sizes = [100, 200] * 10  # merge at t=0.5, unreachable below cap
        trace = varying_size_trace(sizes)
        options = CompressionOptions(
            threshold_step=0.01, patience=3, max_threshold=0.25
        )
        sig = compress_trace(trace, target_ratio=1e9, options=options)
        # Stopped early: ratio frozen after a few stale steps.
        assert sig.threshold < 0.25

    def test_invalid_target_rejected(self):
        trace = varying_size_trace([1, 2, 3])
        with pytest.raises(SignatureError):
            compress_trace(trace, target_ratio=0.5)

    def test_empty_trace_rejected(self, cluster):
        def gen(rank, size):
            yield Compute(0.01)

        trace, _ = trace_program(Program("nocomm", 2, gen), cluster)
        with pytest.raises(SignatureError):
            compress_trace(trace, target_ratio=1.0)


class TestSearchStrategies:
    def test_default_is_dendrogram(self):
        assert CompressionOptions().search == "dendrogram"

    def test_linear_reference_still_available(self):
        trace = varying_size_trace([100, 200] * 10)
        sig = compress_trace(
            trace, 2.0, CompressionOptions(search="linear")
        )
        assert sig.trace_events == 20

    def test_unknown_search_rejected(self):
        trace = varying_size_trace([1, 2, 3])
        with pytest.raises(SignatureError):
            compress_trace(trace, 1.0, CompressionOptions(search="grid"))

    def test_probes_never_exceed_iterations(self):
        """The dendrogram search pays at most one cluster+fold pass per
        grid step — and on plateau-heavy traces, far fewer."""
        from repro.obs.metrics import MetricsRegistry, set_metrics

        sizes = [10_000, 9_800, 10_100, 9_900, 10_050, 9_950] * 5
        trace = varying_size_trace(sizes)
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            compress_trace(trace, 1e9)
        finally:
            set_metrics(previous)
        iterations = registry["construct.threshold_iterations"].value
        probes = registry["construct.threshold_probes"].value
        assert 0 < probes <= iterations

    def test_fold_cache_metrics_reported(self, cg_s_trace):
        from repro.obs.metrics import MetricsRegistry, set_metrics

        trace, _ = cg_s_trace
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            compress_trace(trace, 1e9)
        finally:
            set_metrics(previous)
        hits = registry["construct.fold_cache_hits"].value
        misses = registry["construct.fold_cache_misses"].value
        assert misses >= trace.nranks  # every rank folded at least once
        probes = registry["construct.threshold_probes"].value
        assert hits + misses == probes * trace.nranks
        assert registry["construct.dendrogram_seconds"].count == 1
        if hits + misses:
            assert registry[
                "construct.fold_cache_hit_ratio"
            ].value == pytest.approx(hits / (hits + misses))


class TestCoordinatedCollectives:
    def test_is_like_pattern_stays_aligned(self, cluster):
        """Collectives with per-rank-varying payloads must get the same
        symbols on every rank (the IS alltoallv case)."""
        from repro.workloads import get_program

        trace, _ = trace_program(get_program("is", "S", 4), cluster)
        sig = compress_trace(trace, target_ratio=4.0)
        # All ranks compress to the same loop structure.
        shapes = set()
        for rank_sig in sig.ranks:
            loops = tuple(
                (loop.count, len(loop.body))
                for loop, _ in rank_sig.iter_loops()
            )
            shapes.add(loops)
        assert len(shapes) == 1

    def test_reported_ratio_reflects_leaves(self, cg_s_trace):
        trace, _ = cg_s_trace
        sig = compress_trace(trace, target_ratio=2.0)
        total_events = sum(
            len(s.events) for s in trace_to_streams(trace)
        )
        assert sig.trace_events == total_events
        assert sig.compression_ratio == pytest.approx(
            total_events / sig.n_leaves()
        )

    def test_signature_time_matches_trace(self, cg_s_trace):
        """The signature's per-rank time reconstructs the traced
        elapsed time (averaging preserves totals)."""
        trace, result = cg_s_trace
        sig = compress_trace(trace, target_ratio=2.0)
        for rank_sig in sig.ranks:
            assert rank_sig.total_time() == pytest.approx(
                trace.finish_times[rank_sig.rank], rel=0.01
            )
