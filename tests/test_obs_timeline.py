"""Timeline recorder tests: span reconciliation, Chrome-trace schema,
golden-file format lock, and utilization sampling."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.cluster import paper_testbed
from repro.errors import TraceError
from repro.obs import TimelineRecorder
from repro.sim import Compute, Program, Recv, Send, run_program
from repro.workloads import get_program

GOLDEN = Path(__file__).parent / "data" / "pingpong_timeline.json"

#: Valid Chrome trace event phases used by the exporter
#: (X complete, M metadata, C counter, s/f flow start/finish).
_PHASES = {"X", "M", "C", "s", "f"}


def golden_program() -> Program:
    """The fixed 2-rank exchange behind the golden timeline file."""

    def gen(rank: int, size: int):
        if rank == 0:
            yield Compute(0.01)
            yield Send(dest=1, nbytes=1000, tag=5)
            yield Recv(source=1, tag=6)
        else:
            yield Recv(source=0, tag=5)
            yield Compute(0.02)
            yield Send(dest=0, nbytes=1000, tag=6)

    return Program("pingpong", 2, gen)


def record_run(program, **recorder_kwargs):
    cluster = paper_testbed()
    recorder = TimelineRecorder(
        program_name=program.name, scenario_name="dedicated", **recorder_kwargs
    )
    result = run_program(program, cluster, hook=recorder)
    return recorder, result


def assert_chrome_schema(trace: dict) -> None:
    """Structural validation of the Chrome trace-event JSON."""
    assert set(trace) >= {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    assert events, "trace must contain events"
    for ev in events:
        assert ev["ph"] in _PHASES
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "M":  # metadata carries no timestamp
            assert "name" in ev["args"]
            continue
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
        if ev["ph"] == "C":
            assert ev["args"], "counter events need a value"
        if ev["ph"] in ("s", "f"):
            assert isinstance(ev["id"], int)
            if ev["ph"] == "f":
                assert ev["bp"] == "e"


class TestReconciliation:
    def test_cg_span_totals_match_run_result(self):
        """4-rank CG: compute + blocked tile [0, finish] on every rank."""
        program = get_program("cg", "S", 4)
        recorder, result = record_run(program)
        totals = recorder.activity_totals()
        assert recorder.nranks == 4
        for rank in range(4):
            spanned = totals[rank]["compute"] + totals[rank]["mpi"]
            assert spanned == pytest.approx(
                result.finish_times[rank], abs=1e-6
            )
        # Spans are contiguous and non-overlapping per rank.
        by_rank: dict = {}
        for span in recorder.spans:
            by_rank.setdefault(span.rank, []).append(span)
        for rank, spans in by_rank.items():
            spans.sort(key=lambda s: s.t_start)
            cursor = 0.0
            for span in spans:
                if span.duration == 0:
                    continue
                assert span.t_start == pytest.approx(cursor, abs=1e-9)
                cursor = span.t_end
            assert cursor == pytest.approx(
                result.finish_times[rank], abs=1e-9
            )

    def test_messages_recorded(self, cluster):
        program = get_program("cg", "S", 4)
        recorder, result = record_run(program)
        assert len(recorder.messages) == result.n_messages
        for msg in recorder.messages:
            assert msg.t_delivered >= msg.t_sent >= 0
            assert not math.isnan(msg.t_sent)

    def test_recording_does_not_alter_run(self, cluster):
        program = get_program("mg", "S", 4)
        baseline = run_program(program, cluster)
        recorder, recorded = record_run(program)
        assert recorded == baseline


class TestChromeTraceExport:
    def test_cg_schema_valid(self):
        program = get_program("cg", "S", 4)
        recorder, result = record_run(program, sample_period=0.05)
        trace = recorder.to_chrome_trace()
        assert_chrome_schema(trace)
        # One thread-name metadata event per rank under pid 0.
        thread_names = [
            e for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert {e["tid"] for e in thread_names} == {0, 1, 2, 3}
        # Span events reconstruct the activity split.
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert {"compute", "mpi", "message", "utilization"} <= cats

    def test_span_events_total_matches_finish(self):
        program = get_program("cg", "S", 4)
        recorder, result = record_run(program)
        trace = recorder.to_chrome_trace()
        per_rank: dict[int, float] = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "X" and ev["pid"] == 0:
                per_rank[ev["tid"]] = per_rank.get(ev["tid"], 0.0) + ev["dur"]
        for rank, total_us in per_rank.items():
            assert total_us / 1e6 == pytest.approx(
                result.finish_times[rank], abs=1e-6
            )

    def test_flow_events_connect_send_to_recv(self):
        """Every message yields a flow pair: ``s`` on the source rank's
        track at send time, ``f`` on the destination rank's track at
        delivery, sharing an id."""
        program = get_program("cg", "S", 4)
        recorder, result = record_run(program)
        events = recorder.to_chrome_trace()["traceEvents"]
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        assert len(starts) == len(finishes) == result.n_messages
        assert set(starts) == set(finishes)
        for i, msg in enumerate(recorder.messages):
            s, f = starts[i], finishes[i]
            assert s["pid"] == f["pid"] == 0  # on the rank tracks
            assert s["tid"] == msg.src and f["tid"] == msg.dst
            assert s["ts"] == pytest.approx(msg.t_sent * 1e6)
            assert f["ts"] == pytest.approx(msg.t_delivered * 1e6)
            assert s["name"] == f["name"] == f"{msg.src}->{msg.dst}"
            assert f["bp"] == "e"

    def test_write_round_trip(self, tmp_path):
        recorder, _ = record_run(golden_program())
        path = tmp_path / "t.json"
        recorder.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == recorder.to_chrome_trace()

    def test_golden_file(self):
        """The exporter's output format is locked by a golden file.

        Regenerate with ``python tests/data/regen_golden.py`` after an
        intentional format change.
        """
        recorder, _ = record_run(golden_program())
        assert recorder.to_chrome_trace() == json.loads(GOLDEN.read_text())


class TestSampling:
    def test_samples_collected(self):
        program = get_program("cg", "S", 4)
        recorder, result = record_run(program, sample_period=0.05)
        assert recorder.samples
        for t, util in recorder.samples:
            assert 0 < t <= result.elapsed + 0.05
            for name, frac in util.items():
                assert frac >= 0
        # CPU utilization of a busy dedicated run should show activity.
        peak = max(
            frac
            for _, util in recorder.samples
            for name, frac in util.items()
            if name.startswith("cpu")
        )
        assert peak > 0

    def test_sampling_does_not_alter_result(self, cluster):
        program = get_program("cg", "S", 4)
        plain = run_program(program, cluster)
        sampled_rec = TimelineRecorder(sample_period=0.01)
        sampled = run_program(program, cluster, hook=sampled_rec)
        assert sampled == plain

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            TimelineRecorder(sample_period=-1.0)


class TestRendering:
    def test_summary_lists_all_ranks(self):
        recorder, _ = record_run(golden_program())
        text = recorder.render_summary()
        assert "rank 0" in text and "rank 1" in text
        assert "compute" in text and "mpi" in text
        assert "messages: 2" in text

    def test_requires_completed_run(self):
        rec = TimelineRecorder()
        with pytest.raises(TraceError):
            rec.activity_totals()
        with pytest.raises(TraceError):
            rec.to_chrome_trace()
