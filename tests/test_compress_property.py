"""Property-based equivalence fuzzing of the dendrogram search (tier2).

Hypothesis builds adversarial multi-rank traces — repeated phases with
jittered payloads, coordinated and (deliberately) mis-coordinated
collectives, degenerate single-event streams — and asserts that the
dendrogram threshold search returns a signature byte-identical (store
canonical JSON) to the paper-literal linear sweep under randomly drawn
search options. This is the contract the store relies on to keep
cached signatures valid across the search-strategy change.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compress import CompressionOptions, compress_trace
from repro.core.sigio import signature_to_dict
from repro.store import canonical_json
from repro.trace.records import Trace, TraceRecord

pytestmark = pytest.mark.tier2

#: Point-to-point phase vocabulary: (call, params builder).
_P2P_CALLS = ("MPI_Send", "MPI_Isend", "MPI_Recv")
_COLLECTIVES = ("MPI_Allreduce", "MPI_Bcast", "MPI_Barrier")


@st.composite
def phase_specs(draw):
    """One trace phase: a short body of calls repeated a few times."""
    body_len = draw(st.integers(min_value=1, max_value=4))
    reps = draw(st.integers(min_value=1, max_value=6))
    body = []
    for _ in range(body_len):
        if draw(st.booleans()):
            call = draw(st.sampled_from(_P2P_CALLS))
            peer = draw(st.integers(min_value=0, max_value=3))
            tag = draw(st.integers(min_value=0, max_value=2))
        else:
            call = draw(st.sampled_from(_COLLECTIVES))
            peer = -1
            tag = -1
        base = draw(st.integers(min_value=0, max_value=50_000))
        jitter = draw(st.integers(min_value=0, max_value=max(1, base // 5)))
        body.append((call, peer, tag, base, jitter))
    return (body, reps)


@st.composite
def fuzzed_traces(draw):
    nranks = draw(st.integers(min_value=1, max_value=3))
    phases = draw(st.lists(phase_specs(), min_size=1, max_size=4))
    # Per-rank payload jitter signs, deterministic from the draw.
    jitter_seed = draw(st.integers(min_value=0, max_value=1_000_000))
    trace = Trace(program_name="fuzz", scenario_name="d", nranks=nranks)
    finish = []
    for rank in range(nranks):
        t = 0.0
        recs = []
        k = 0
        for body, reps in phases:
            for _ in range(reps):
                for call, peer, tag, base, jitter in body:
                    k += 1
                    wobble = ((jitter_seed + 31 * k + 7 * rank) % (2 * jitter + 1)) - jitter if jitter else 0
                    # Collectives must agree on call+peer across ranks
                    # for coordination; payloads may differ per rank.
                    nbytes = max(0, base + wobble)
                    params = {"peer": peer, "bytes": nbytes, "tag": tag}
                    recs.append(
                        TraceRecord(call, params, t + 0.001, t + 0.002)
                    )
                    t += 0.002
        trace.records[rank] = recs
        finish.append(t + 0.001)
    trace.finish_times = finish
    return trace


search_options = st.fixed_dictionaries(
    {
        "threshold_step": st.sampled_from((0.005, 0.01, 0.03)),
        "patience": st.sampled_from((2, 5, 10)),
        "max_threshold": st.sampled_from((0.1, 0.25)),
        "start_threshold": st.sampled_from((0.0, 0.02)),
    }
)


@settings(max_examples=120, deadline=None)
@given(
    trace=fuzzed_traces(),
    opts=search_options,
    target=st.sampled_from((1.0, 3.0, 20.0, 1e9)),
)
def test_dendrogram_matches_linear_sweep(trace, opts, target):
    if not any(trace.records[r] for r in range(trace.nranks)):
        return  # no communication events: both searches raise; covered elsewhere
    legacy = compress_trace(
        trace, target, CompressionOptions(search="linear", **opts)
    )
    fast = compress_trace(
        trace, target, CompressionOptions(search="dendrogram", **opts)
    )
    assert canonical_json(signature_to_dict(fast)) == canonical_json(
        signature_to_dict(legacy)
    )


@settings(max_examples=60, deadline=None)
@given(
    trace=fuzzed_traces(),
    budget=st.sampled_from((16, 128, 4096)),
)
def test_equivalence_holds_under_fold_budget_pressure(trace, budget):
    """The rolling-hash filter must not shift budget exhaustion."""
    if not any(trace.records[r] for r in range(trace.nranks)):
        return
    legacy = compress_trace(
        trace, 1e9, CompressionOptions(search="linear", work_budget=budget)
    )
    fast = compress_trace(
        trace, 1e9, CompressionOptions(search="dendrogram", work_budget=budget)
    )
    assert canonical_json(signature_to_dict(fast)) == canonical_json(
        signature_to_dict(legacy)
    )
