"""Tests for period diagnostics and size sweeps."""

from __future__ import annotations

import pytest

from repro.cluster import Scenario, paper_testbed
from repro.core.clustering import cluster_stream
from repro.core.events import trace_to_streams
from repro.core.period import estimate_period, symbol_autocorrelation
from repro.errors import ReproError, SignatureError
from repro.experiments.sweeps import sweep_skeleton_sizes
from repro.trace import trace_program
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce


class TestAutocorrelation:
    def test_perfect_period(self):
        s = [1, 2, 3] * 10
        assert symbol_autocorrelation(s, 3) == 1.0
        assert symbol_autocorrelation(s, 1) < 0.5

    def test_bad_lag_rejected(self):
        with pytest.raises(SignatureError):
            symbol_autocorrelation([1, 2], 0)
        with pytest.raises(SignatureError):
            symbol_autocorrelation([1, 2], 5)

    def test_estimate_finds_smallest_period(self):
        s = [0, 1, 0, 1, 2] * 8
        est = estimate_period(s)
        assert est is not None
        assert est.period == 5

    def test_aperiodic_returns_none(self):
        s = list(range(50))
        assert estimate_period(s) is None

    def test_short_stream_returns_none(self):
        assert estimate_period([1, 2]) is None

    def test_constant_stream_period_one(self):
        est = estimate_period([7] * 20)
        assert est is not None
        assert est.period == 1

    @pytest.mark.parametrize("bench,expected", [
        ("cg", None),   # period checked against structure below
        ("mg", None),
    ])
    def test_benchmark_streams_are_periodic(self, bench, expected):
        """Every cyclic benchmark's clustered stream shows strong
        periodicity — the property the whole compression step rests
        on."""
        cluster = paper_testbed()
        trace, _ = trace_program(get_program(bench, "S", 4), cluster)
        stream = trace_to_streams(trace)[0]
        symbols, _space = cluster_stream(stream, 0.0)
        est = estimate_period(symbols, min_score=0.75)
        assert est is not None
        # The period must be a tiny fraction of the stream.
        assert est.period < len(symbols) / 4


class TestSweeps:
    def test_sweep_structure(self):
        cluster = paper_testbed()
        program = bsp_allreduce(supersteps=60, compute_secs=0.01)
        scenarios = [Scenario(name="cpu", competing={0: 2})]
        sweep = sweep_skeleton_sizes(
            program, cluster, targets=(0.3, 0.05), scenarios=scenarios
        )
        assert len(sweep.points) == 2
        assert sweep.points[0].target_seconds == 0.3
        # Overhead roughly tracks the target.
        for p in sweep.points:
            assert p.skeleton_dedicated_seconds == pytest.approx(
                p.target_seconds, rel=0.5
            )

    def test_knee_prefers_cheap_accurate_point(self):
        cluster = paper_testbed()
        program = bsp_allreduce(supersteps=60, compute_secs=0.01)
        scenarios = [Scenario(name="cpu", competing={0: 2})]
        sweep = sweep_skeleton_sizes(
            program, cluster, targets=(0.3, 0.1, 0.05), scenarios=scenarios
        )
        knee = sweep.knee()
        assert knee in sweep.points

    def test_render(self):
        cluster = paper_testbed()
        program = bsp_allreduce(supersteps=40)
        scenarios = [Scenario(name="cpu", competing={0: 2})]
        sweep = sweep_skeleton_sizes(
            program, cluster, targets=(0.1,), scenarios=scenarios
        )
        out = sweep.render()
        assert "Skeleton size sweep" in out
        assert "avg err %" in out

    def test_empty_targets_rejected(self):
        cluster = paper_testbed()
        with pytest.raises(ReproError):
            sweep_skeleton_sizes(bsp_allreduce(), cluster, targets=())
