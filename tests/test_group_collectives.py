"""Sub-communicator (group) collective tests: engine semantics, trace
and skeleton round-trips, alignment, and codegen."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import build_skeleton, generate_c_source
from repro.errors import ProgramError
from repro.sim import (
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Program,
    Reduce,
    mpi_program,
    run_program,
)
from repro.sim.api import Comm
from repro.trace import trace_program


def fast_cluster(n=4):
    from repro.cluster import NetworkSpec

    return Cluster.uniform(
        n,
        network=NetworkSpec(latency=1e-4, bandwidth=1e8,
                            intra_node_latency=0.0, memory_bandwidth=1e12,
                            send_overhead=0.0),
    )


class TestEngineSemantics:
    def test_disjoint_groups_run_concurrently(self):
        """Two halves each run their own barrier+bcast: no cross-talk,
        and neither waits for the other."""

        def gen(rank, size):
            mine = (0, 1) if rank < 2 else (2, 3)
            if rank >= 2:
                yield Compute(0.5)  # second group starts late
            yield Barrier(group=mine)
            yield Bcast(root=mine[0], nbytes=1000, group=mine)

        result = run_program(Program("g", 4, gen), fast_cluster())
        # The early group must not be held back by the late one.
        assert max(result.finish_times[:2]) < 0.1
        assert min(result.finish_times[2:]) >= 0.5

    def test_group_collective_only_touches_members(self):
        def gen(rank, size):
            if rank in (0, 2):
                yield Allreduce(nbytes=512, group=(0, 2))
            # ranks 1 and 3 do nothing

        result = run_program(Program("g", 4, gen), fast_cluster())
        assert result.finish_times[1] == 0.0
        assert result.finish_times[3] == 0.0

    def test_mixed_world_and_group_ordering(self):
        """Ranks interleave world and group collectives with different
        per-rank histories; per-communicator sequence numbers keep tags
        aligned."""

        def gen(rank, size):
            if rank < 2:
                yield Barrier(group=(0, 1))     # extra group op first
            yield Barrier()                      # world
            if rank < 2:
                yield Allreduce(nbytes=64, group=(0, 1))
            else:
                yield Allreduce(nbytes=64, group=(2, 3))
            yield Barrier()                      # world again

        run_program(Program("g", 4, gen), fast_cluster())

    def test_nonmember_execution_rejected(self):
        def gen(rank, size):
            yield Barrier(group=(0, 1))  # ranks 2,3 are not members

        with pytest.raises(ProgramError):
            run_program(Program("g", 4, gen), fast_cluster())

    def test_root_outside_group_rejected(self):
        def gen(rank, size):
            if rank < 2:
                yield Bcast(root=3, nbytes=10, group=(0, 1))

        with pytest.raises(ProgramError):
            run_program(Program("g", 4, gen), fast_cluster())

    def test_duplicate_members_rejected(self):
        def gen(rank, size):
            if rank == 0:
                yield Barrier(group=(0, 0))

        with pytest.raises(ProgramError):
            run_program(Program("g", 4, gen), fast_cluster())

    def test_rooted_group_reduce_to_global_root(self):
        def gen(rank, size):
            if rank in (1, 3):
                yield Reduce(root=3, nbytes=4096, group=(1, 3))

        result = run_program(Program("g", 4, gen), fast_cluster())
        assert result.n_messages >= 1


class TestRowColumnPattern:
    """The NPB CG-style 2D grid: row communicators + column
    communicators via the Comm API."""

    @staticmethod
    def program():
        @mpi_program(nranks=4, name="rowcol")
        def app(comm: Comm):
            row = (0, 1) if comm.rank < 2 else (2, 3)
            col = (0, 2) if comm.rank % 2 == 0 else (1, 3)
            for _ in range(12):
                yield from comm.compute(0.004)
                yield from comm.allreduce(8192, group=row)
                yield from comm.compute(0.002)
                yield from comm.allreduce(256, group=col)
            yield from comm.barrier()

        return app

    def test_runs(self):
        result = run_program(self.program(), paper_testbed())
        assert result.elapsed > 12 * 0.006

    def test_traced_with_group_params(self):
        trace, _ = trace_program(self.program(), paper_testbed())
        group_recs = [
            r for r in trace.rank_records(0) if "group" in r.params
        ]
        assert len(group_recs) == 24
        assert group_recs[0].params["group"] == [0, 1]
        assert group_recs[1].params["group"] == [0, 2]

    def test_skeleton_roundtrip(self):
        cluster = paper_testbed()
        trace, ded = trace_program(self.program(), cluster)
        bundle = build_skeleton(trace, scaling_factor=3.0, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed == pytest.approx(ded.elapsed / 3.0, rel=0.35)

    def test_signature_file_roundtrip(self, tmp_path):
        from repro.core import read_signature, write_signature
        from repro.core.compress import compress_trace

        trace, _ = trace_program(self.program(), paper_testbed())
        sig = compress_trace(trace, target_ratio=2.0)
        path = tmp_path / "g.sig"
        write_signature(sig, path)
        loaded = read_signature(path)
        groups = {
            leaf.group
            for leaf in loaded.ranks[0].iter_leaves()
            if leaf.group
        }
        assert (0, 1) in groups and (0, 2) in groups

    def test_codegen_emits_subcomms(self):
        cluster = paper_testbed()
        trace, _ = trace_program(self.program(), cluster)
        bundle = build_skeleton(trace, scaling_factor=2.0, warn=False)
        src = generate_c_source(bundle.scaled)
        assert "MPI_Comm subcomms[" in src
        assert "MPI_Comm_split" in src
        assert "subcomms[0]" in src
        assert src.count("{") == src.count("}")


class TestGroupAlignment:
    def test_group_count_mismatch_detected(self):
        from repro.core.scale import ScaledSignature
        from repro.core.signature import EventStats, RankSignature
        from repro.core.skeleton import check_alignment
        from repro.errors import SkeletonError

        def coll(group):
            return EventStats(
                call="MPI_Allreduce", peer=-1, tag=-1, nreqs=0,
                mean_bytes=8.0, mean_gap=0.0, mean_duration=0.0,
                count=1, group=group, gap_samples=[0.0],
            )

        scaled = ScaledSignature(
            base_name="x", nranks=2, K=1.0, K_int=1,
            ranks=[
                RankSignature(rank=0, nodes=[coll((0, 1)), coll((0, 1))]),
                RankSignature(rank=1, nodes=[coll((0, 1))]),
            ],
        )
        with pytest.raises(SkeletonError, match="group"):
            check_alignment(scaled)
