"""Property-based round-trip tests for signature serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.signature import EventStats, LoopNode, RankSignature, Signature
from repro.core.sigio import signature_from_dict, signature_to_dict

CALLS = ("MPI_Send", "MPI_Recv", "MPI_Allreduce", "MPI_Waitall",
         "MPI_Sendrecv", "MPI_Bcast")


@st.composite
def leaves(draw):
    call = draw(st.sampled_from(CALLS))
    gaps = draw(
        st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=4)
    )
    return EventStats(
        call=call,
        peer=draw(st.integers(min_value=-1, max_value=7)),
        tag=draw(st.integers(min_value=-1, max_value=99)),
        nreqs=draw(st.integers(min_value=0, max_value=8)),
        src=draw(st.integers(min_value=-1, max_value=7)),
        group=draw(st.sampled_from([(), (0, 1), (0, 2, 3)])),
        mean_bytes=draw(st.floats(min_value=0, max_value=1e8)),
        mean_gap=sum(gaps) / len(gaps),
        mean_duration=draw(st.floats(min_value=0, max_value=1.0)),
        count=len(gaps),
        gap_samples=gaps,
    )


@st.composite
def node_lists(draw, depth=0):
    n = draw(st.integers(min_value=1, max_value=4))
    nodes = []
    for _ in range(n):
        if depth < 2 and draw(st.booleans()):
            nodes.append(
                LoopNode(
                    body=draw(node_lists(depth=depth + 1)),
                    count=draw(st.integers(min_value=1, max_value=50)),
                )
            )
        else:
            nodes.append(draw(leaves()))
    return nodes


@st.composite
def signatures(draw):
    nranks = draw(st.integers(min_value=1, max_value=3))
    ranks = [
        RankSignature(
            rank=r,
            nodes=draw(node_lists()),
            tail_gap=draw(st.floats(min_value=0, max_value=5)),
        )
        for r in range(nranks)
    ]
    return Signature(
        program_name="prop",
        nranks=nranks,
        ranks=ranks,
        threshold=draw(st.floats(min_value=0, max_value=0.25)),
        compression_ratio=draw(st.floats(min_value=1, max_value=1e4)),
        trace_events=draw(st.integers(min_value=1, max_value=10**7)),
    )


def _leaves_equal(a: EventStats, b: EventStats) -> bool:
    return (
        a.call == b.call
        and a.peer == b.peer
        and a.tag == b.tag
        and a.nreqs == b.nreqs
        and a.src == b.src
        and tuple(a.group) == tuple(b.group)
        and a.count == b.count
        and a.mean_bytes == pytest.approx(b.mean_bytes)
        and a.mean_gap == pytest.approx(b.mean_gap)
        and a.gap_samples == pytest.approx(b.gap_samples)
    )


def _nodes_equal(xs, ys) -> bool:
    if len(xs) != len(ys):
        return False
    for x, y in zip(xs, ys):
        if isinstance(x, LoopNode) != isinstance(y, LoopNode):
            return False
        if isinstance(x, LoopNode):
            if x.count != y.count or not _nodes_equal(x.body, y.body):
                return False
        elif not _leaves_equal(x, y):
            return False
    return True


@settings(max_examples=80, deadline=None)
@given(signatures())
def test_signature_dict_round_trip(sig):
    loaded = signature_from_dict(signature_to_dict(sig))
    assert loaded.nranks == sig.nranks
    assert loaded.threshold == pytest.approx(sig.threshold)
    assert loaded.trace_events == sig.trace_events
    for a, b in zip(sig.ranks, loaded.ranks):
        assert a.rank == b.rank
        assert a.tail_gap == pytest.approx(b.tail_gap)
        assert _nodes_equal(a.nodes, b.nodes)
    # Derived measures survive too.
    assert loaded.n_leaves() == sig.n_leaves()
    for a, b in zip(sig.ranks, loaded.ranks):
        assert a.expanded_length() == b.expanded_length()
        assert a.total_time() == pytest.approx(b.total_time())
