"""Property-based fuzzing of the engine and the trace pipeline.

Programs are generated as sequences of globally-coordinated *phases*
(compute, pairwise exchange, ring shift, collective), which makes them
deadlock-free by construction while still exercising matching,
non-blocking requests, collectives, and contention. Invariants:

* every run completes and is deterministic;
* per-rank finish time >= the rank's total injected compute;
* the trace validates, and compressing it at threshold 0 preserves the
  expanded event sequence and the time accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, Scenario
from repro.core.compress import compress_trace
from repro.core.events import trace_to_streams
from repro.sim import (
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    Irecv,
    Isend,
    Program,
    Reduce,
    ReduceScatter,
    Scan,
    Sendrecv,
    Waitall,
    run_program,
)

NRANKS = 4


def phase_strategy():
    compute = st.tuples(
        st.just("compute"),
        st.lists(
            st.floats(min_value=1e-5, max_value=0.02),
            min_size=NRANKS, max_size=NRANKS,
        ),
    )
    pairs = st.tuples(
        st.just("pairs"),
        st.integers(min_value=0, max_value=100_000),  # bytes
        st.integers(min_value=1, max_value=NRANKS - 1),  # xor partner bits? use shift
    )
    shift = st.tuples(
        st.just("shift"),
        st.integers(min_value=0, max_value=200_000),
        st.integers(min_value=1, max_value=NRANKS - 1),
    )
    coll = st.tuples(
        st.just("coll"),
        st.sampled_from(["barrier", "bcast", "reduce", "allreduce",
                         "alltoall", "reduce_scatter", "scan"]),
        st.integers(min_value=0, max_value=50_000),
    )
    return st.one_of(compute, pairs, shift, coll)


def build_program(phases) -> Program:
    def gen(rank, size):
        for phase in phases:
            kind = phase[0]
            if kind == "compute":
                yield Compute(phase[1][rank])
            elif kind == "pairs":
                _, nbytes, dist = phase
                partner = rank ^ (1 << (dist % 2))
                if partner < size and partner != rank:
                    yield Sendrecv(
                        dest=partner, send_nbytes=nbytes, send_tag=9,
                        source=partner, recv_tag=9,
                    )
            elif kind == "shift":
                _, nbytes, dist = phase
                to = (rank + dist) % size
                frm = (rank - dist) % size
                if to != rank:
                    r1 = yield Irecv(source=frm, nbytes=nbytes, tag=11)
                    r2 = yield Isend(dest=to, nbytes=nbytes, tag=11)
                    yield Waitall((r1, r2))
            else:
                _, which, nbytes = phase
                if which == "barrier":
                    yield Barrier()
                elif which == "bcast":
                    yield Bcast(root=0, nbytes=nbytes)
                elif which == "reduce":
                    yield Reduce(root=0, nbytes=nbytes)
                elif which == "allreduce":
                    yield Allreduce(nbytes=nbytes)
                elif which == "alltoall":
                    yield Alltoall(nbytes=min(nbytes, 10_000))
                elif which == "reduce_scatter":
                    yield ReduceScatter(nbytes=nbytes)
                elif which == "scan":
                    yield Scan(nbytes=nbytes)

    return Program("fuzz", NRANKS, gen)


@settings(max_examples=60, deadline=None)
@given(st.lists(phase_strategy(), min_size=1, max_size=10))
def test_random_programs_complete_and_are_deterministic(phases):
    cluster = Cluster.uniform(NRANKS)
    program = build_program(phases)
    a = run_program(program, cluster)
    b = run_program(program, cluster)
    assert a.finish_times == b.finish_times
    assert a.n_messages == b.n_messages
    # Finish time covers each rank's injected compute.
    for rank in range(NRANKS):
        injected = sum(
            p[1][rank] for p in phases if p[0] == "compute"
        )
        assert a.finish_times[rank] >= injected - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(phase_strategy(), min_size=1, max_size=8))
def test_random_programs_under_contention_slow_down(phases):
    cluster = Cluster.uniform(NRANKS)
    program = build_program(phases)
    base = run_program(program, cluster)
    scen = Scenario(name="s", competing={i: 2 for i in range(NRANKS)})
    shared = run_program(program, cluster, scen)
    assert shared.elapsed >= base.elapsed - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(phase_strategy(), min_size=1, max_size=8))
def test_random_traces_compress_losslessly_at_threshold_zero(phases):
    from repro.trace import trace_program

    cluster = Cluster.uniform(NRANKS)
    program = build_program(phases)
    trace, result = trace_program(program, cluster)
    trace.validate()
    streams = trace_to_streams(trace)
    n_comm_events = sum(len(s.events) for s in streams)
    if n_comm_events == 0:
        return  # pure-compute program: nothing to compress
    sig = compress_trace(trace, target_ratio=1.0)
    # Threshold 0 compression is structure-only: expansion preserves
    # the event count and the time accounting per rank.
    for stream, rank_sig in zip(streams, sig.ranks):
        assert rank_sig.expanded_length() == len(stream.events)
        assert rank_sig.total_time() == pytest.approx(
            stream.total_time(), rel=1e-6, abs=1e-9
        )
