"""C source emission tests."""

from __future__ import annotations

import re

import pytest

from repro.core import build_skeleton, generate_c_source
from repro.core.scale import ScaledSignature
from repro.core.signature import EventStats, LoopNode, RankSignature
from repro.errors import SkeletonError


def leaf(call, peer=1, nbytes=100.0, gap=0.01, tag=0, nreqs=0, src=-1):
    return EventStats(
        call=call, peer=peer, tag=tag, nreqs=nreqs,
        mean_bytes=nbytes, mean_gap=gap, mean_duration=0.0,
        count=1, src=src, gap_samples=[gap],
    )


def scaled_of(rank_nodes):
    ranks = [RankSignature(rank=r, nodes=n) for r, n in sorted(rank_nodes.items())]
    return ScaledSignature(
        base_name="cg.B.4", nranks=len(ranks), K=10.0, K_int=10, ranks=ranks
    )


class TestStructure:
    def test_header_and_main(self):
        src = generate_c_source(scaled_of({0: [leaf("MPI_Send")]}))
        assert "#include <mpi.h>" in src
        assert "MPI_Init" in src
        assert "MPI_Finalize" in src
        assert "busy_compute" in src
        assert "int main" in src

    def test_rank_ladder(self):
        src = generate_c_source(scaled_of({
            0: [leaf("MPI_Send", peer=1)],
            1: [leaf("MPI_Recv", peer=0)],
        }))
        assert "if (rank == 0)" in src
        assert "else if (rank == 1)" in src
        assert "if (size != 2)" in src

    def test_loops_emitted_as_for(self):
        src = generate_c_source(scaled_of({
            0: [LoopNode(body=[leaf("MPI_Send")], count=37)],
        }))
        assert re.search(r"for \(int i\d+ = 0; i\d+ < 37; i\d+\+\+\)", src)

    def test_compute_gap_emitted(self):
        src = generate_c_source(scaled_of({0: [leaf("MPI_Send", gap=0.125)]}))
        assert "busy_compute(0.125);" in src

    def test_buffers_sized_to_largest_message(self):
        src = generate_c_source(scaled_of({
            0: [leaf("MPI_Send", nbytes=1_000_000.0)],
        }))
        m = re.search(r"static char sendbuf\[(\d+)\]", src)
        assert m and int(m.group(1)) >= 1_000_000

    def test_balanced_braces(self):
        src = generate_c_source(scaled_of({
            0: [LoopNode(body=[LoopNode(body=[leaf("MPI_Send")], count=2)],
                         count=3)],
            1: [LoopNode(body=[leaf("MPI_Recv", peer=0)], count=6)],
        }))
        assert src.count("{") == src.count("}")


class TestCallMapping:
    @pytest.mark.parametrize(
        "call,needle",
        [
            ("MPI_Send", "MPI_Send(sendbuf"),
            ("MPI_Recv", "MPI_Recv(recvbuf"),
            ("MPI_Isend", "MPI_Isend(sendbuf"),
            ("MPI_Irecv", "MPI_Irecv(recvbuf"),
            ("MPI_Barrier", "MPI_Barrier(MPI_COMM_WORLD)"),
            ("MPI_Bcast", "MPI_Bcast(sendbuf"),
            ("MPI_Reduce", "MPI_Reduce(sendbuf"),
            ("MPI_Allreduce", "MPI_Allreduce(sendbuf"),
            ("MPI_Allgather", "MPI_Allgather(sendbuf"),
            ("MPI_Alltoall", "MPI_Alltoall(sendbuf"),
            ("MPI_Alltoallv", "MPI_Alltoallv(sendbuf"),
            ("MPI_Gather", "MPI_Gather(sendbuf"),
            ("MPI_Scatter", "MPI_Scatter(sendbuf"),
            ("MPI_Wait", "MPI_Wait("),
            ("MPI_Waitall", "MPI_Waitall("),
            ("MPI_Sendrecv", "MPI_Sendrecv(sendbuf"),
        ],
    )
    def test_each_call_emits_its_mpi_counterpart(self, call, needle):
        src = generate_c_source(scaled_of({0: [leaf(call)]}))
        assert needle in src

    def test_unknown_call_rejected(self):
        with pytest.raises(SkeletonError):
            generate_c_source(scaled_of({0: [leaf("MPI_Bogus")]}))


class TestEndToEnd:
    def test_full_benchmark_codegen(self, cg_s_trace):
        trace, _ = cg_s_trace
        bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
        src = generate_c_source(bundle.scaled, name=trace.program_name)
        assert "cg.S.4" in src
        assert src.count("{") == src.count("}")
        # All four ranks present.
        for r in range(4):
            assert f"(rank == {r})" in src
