"""WAN (multi-site) topology and process-count remapping tests."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkSpec
from repro.cluster.topology import two_site_grid
from repro.core import build_skeleton, compress_trace
from repro.core.scale import scale_signature
from repro.core.skeleton import check_alignment, skeleton_program
from repro.errors import SkeletonError, TopologyError
from repro.ext.remap import remap_signature
from repro.predict import SkeletonPredictor
from repro.sim import Compute, Program, Recv, Send, run_program
from repro.trace import trace_program
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce, master_worker, ring_pipeline


def transfer(nbytes=1_000_000, src=0, dst=1, nranks=4):
    def gen(rank, size):
        if rank == src:
            yield Send(dest=dst, nbytes=nbytes, tag=1)
        elif rank == dst:
            yield Recv(source=src, tag=1)

    return Program("transfer", nranks, gen)


class TestWanTopology:
    def test_sites_validation(self):
        from repro.cluster import NodeSpec

        with pytest.raises(TopologyError):
            Cluster(nodes=(NodeSpec("a"), NodeSpec("b")), sites=(0,))
        with pytest.raises(TopologyError):
            Cluster(nodes=(NodeSpec("a"),), sites=(-1,))

    def test_two_site_grid_shape(self):
        c = two_site_grid(nodes_per_site=2)
        assert c.nnodes == 4
        assert c.nsites == 2
        assert [c.site_of(i) for i in range(4)] == [0, 0, 1, 1]

    def test_intra_site_unaffected(self):
        lan = Cluster.uniform(4)
        wan = two_site_grid(2)
        t_lan = run_program(transfer(dst=1), lan).elapsed
        t_wan_local = run_program(transfer(dst=1), wan).elapsed
        assert t_wan_local == pytest.approx(t_lan, rel=1e-9)

    def test_cross_site_pays_wan_cost(self):
        wan = two_site_grid(2)
        t_local = run_program(transfer(dst=1), wan).elapsed
        t_cross = run_program(transfer(dst=2), wan).elapsed
        # WAN bandwidth is ~6x lower and latency ~100x higher.
        assert t_cross > 4 * t_local

    def test_wan_uplink_shared_by_cross_flows(self):
        """Two simultaneous cross-site flows from the same site share
        the uplink -> each takes ~2x the solo time."""
        wan = two_site_grid(2)

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=2, nbytes=5_000_000, tag=1)
            elif rank == 1:
                yield Send(dest=3, nbytes=5_000_000, tag=1)
            elif rank == 2:
                yield Recv(source=0, tag=1)
            elif rank == 3:
                yield Recv(source=1, tag=1)

        both = run_program(Program("both", 4, gen), wan).elapsed
        solo = run_program(transfer(nbytes=5_000_000, dst=2), wan).elapsed
        assert both == pytest.approx(2 * solo, rel=0.1)

    def test_skeleton_prediction_on_wan(self):
        """§5: skeleton prediction works on a wide-area grid too —
        trace and predict on the two-site cluster."""
        wan = two_site_grid(2)
        prog = get_program("cg", "S", 4)
        trace, ded = trace_program(prog, wan)
        bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
        predictor = SkeletonPredictor(bundle.program, ded.elapsed, wan)
        from repro.cluster import cpu_one_node

        scen = cpu_one_node(steady=True)
        actual = run_program(prog, wan, scen).elapsed
        assert predictor.predict(scen).error_percent(actual) < 15.0


class TestRemap:
    def _ring_signature(self, nranks=4, rounds=24):
        cluster = Cluster.uniform(nranks)
        trace, _ = trace_program(
            bsp_allreduce(nprocs=nranks, supersteps=rounds), cluster
        )
        return compress_trace(trace, target_ratio=2.0)

    def test_remap_bsp_to_more_ranks(self):
        sig = self._ring_signature(4)
        remapped = remap_signature(sig, 8)
        assert remapped.nranks == 8
        # Strong scaling: per-rank compute halves.
        orig = sig.ranks[0].total_time()
        new = remapped.ranks[0].total_time()
        assert new < orig

    def test_remapped_skeleton_runs(self):
        sig = self._ring_signature(4)
        remapped = remap_signature(sig, 8)
        scaled = scale_signature(remapped, 2.0)
        check_alignment(scaled)
        prog = skeleton_program(scaled)
        cluster = Cluster.uniform(8)
        assert run_program(prog, cluster).elapsed > 0

    def test_ring_offsets_preserved(self):
        cluster = Cluster.uniform(4)
        trace, _ = trace_program(
            ring_pipeline(nprocs=4, rounds=12), cluster
        )
        sig = compress_trace(trace, target_ratio=1.0)
        # Ring is NOT structurally uniform (rank 0 differs) -> rejected.
        with pytest.raises(SkeletonError):
            remap_signature(sig, 8)

    def test_master_worker_rejected(self):
        cluster = Cluster.uniform(4)
        trace, _ = trace_program(master_worker(nprocs=4), cluster)
        sig = compress_trace(trace, target_ratio=1.0)
        with pytest.raises(SkeletonError):
            remap_signature(sig, 8)

    def test_stencil_remap_runs_at_new_size(self):
        from repro.workloads.synthetic import stencil2d

        cluster = Cluster.uniform(4)
        trace, _ = trace_program(
            bsp_allreduce(nprocs=4, supersteps=16), cluster
        )
        sig = compress_trace(trace, target_ratio=2.0)
        for new_p in (2, 8, 16):
            remapped = remap_signature(sig, new_p)
            scaled = scale_signature(remapped, 1.0)
            prog = skeleton_program(scaled)
            big = Cluster.uniform(new_p)
            assert run_program(prog, big).elapsed > 0

    def test_invalid_sizes(self):
        sig = self._ring_signature(4)
        with pytest.raises(SkeletonError):
            remap_signature(sig, 0)

    def test_custom_scales(self):
        sig = self._ring_signature(4)
        remapped = remap_signature(sig, 8, compute_scale=1.0, bytes_scale=1.0)
        # Weak scaling: per-rank time preserved.
        assert remapped.ranks[0].total_time() == pytest.approx(
            sig.ranks[0].total_time(), rel=1e-6
        )
