"""Eager/rendezvous protocol boundary behaviour and the end-to-end
skeleton-scaling property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, NetworkSpec, paper_testbed
from repro.core import build_skeleton
from repro.sim import Compute, Program, Recv, Send, run_program
from repro.trace import trace_program

EAGER = 10_000


def boundary_cluster():
    return Cluster.uniform(
        2,
        network=NetworkSpec(
            latency=1e-4, bandwidth=1e7, eager_threshold=EAGER,
            intra_node_latency=0.0, memory_bandwidth=1e12,
            send_overhead=0.0,
        ),
    )


def send_then_late_recv(nbytes):
    def gen(rank, size):
        if rank == 0:
            yield Send(dest=1, nbytes=nbytes, tag=1)
        else:
            yield Compute(0.5)
            yield Recv(source=0, tag=1)

    return Program("p", 2, gen)


class TestProtocolBoundary:
    def test_at_threshold_is_eager(self):
        result = run_program(send_then_late_recv(EAGER), boundary_cluster())
        assert result.finish_times[0] < 0.1  # sender returned immediately

    def test_one_byte_over_is_rendezvous(self):
        result = run_program(send_then_late_recv(EAGER + 1), boundary_cluster())
        assert result.finish_times[0] > 0.5  # sender waited for the recv

    def test_protocol_discontinuity_in_sender_time(self):
        """The sender-side time jumps discontinuously at the threshold
        — the real-world effect that makes byte-scaled skeleton
        messages cross protocols (a §3.3 error source)."""
        t_eager = run_program(
            send_then_late_recv(EAGER), boundary_cluster()
        ).finish_times[0]
        t_rndv = run_program(
            send_then_late_recv(EAGER + 1), boundary_cluster()
        ).finish_times[0]
        assert t_rndv > 100 * t_eager

    def test_scaled_skeleton_can_cross_protocol(self):
        """A skeleton scaled by K can turn rendezvous messages eager;
        the pipeline must still run correctly (no deadlock, sane
        time)."""
        cluster = paper_testbed()

        def gen(rank, size):
            other = rank ^ 1
            for _ in range(40):
                yield Compute(0.005)
                if rank % 2 == 0:
                    yield Send(dest=other, nbytes=100_000, tag=1)  # rndv
                    yield Recv(source=other, tag=2)
                else:
                    yield Recv(source=other, tag=1)
                    yield Send(dest=other, nbytes=100_000, tag=2)

        trace, ded = trace_program(Program("cross", 4, gen), cluster)
        # K=4 remainder handling scales some messages below the eager
        # threshold (100 KB / 4 = 25 KB < 64 KB).
        bundle = build_skeleton(trace, scaling_factor=7.0, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed == pytest.approx(ded.elapsed / 7.0, rel=0.35)


@settings(max_examples=15, deadline=None)
@given(
    iters=st.integers(min_value=8, max_value=60),
    compute_ms=st.floats(min_value=1.0, max_value=20.0),
    nbytes=st.integers(min_value=0, max_value=200_000),
    K=st.sampled_from([2.0, 4.0, 8.0]),
)
def test_skeleton_time_scales_by_k_property(iters, compute_ms, nbytes, K):
    """End-to-end property: for periodic exchange workloads, the
    skeleton's dedicated time is T/K within tolerance (looser when the
    loop count is small relative to K)."""
    cluster = paper_testbed()

    def gen(rank, size):
        other = rank ^ 1
        for _ in range(iters):
            yield Compute(compute_ms / 1000.0)
            if rank % 2 == 0:
                yield Send(dest=other, nbytes=nbytes, tag=1)
                yield Recv(source=other, tag=2)
            else:
                yield Recv(source=other, tag=1)
                yield Send(dest=other, nbytes=nbytes, tag=2)

    trace, ded = trace_program(Program("prop", 4, gen), cluster)
    bundle = build_skeleton(trace, scaling_factor=K, warn=False)
    skel = run_program(bundle.program, cluster)
    tolerance = 0.15 + 2.0 * K / iters
    assert skel.elapsed == pytest.approx(ded.elapsed / K, rel=tolerance)
