"""Tests for the FT/EP extension workloads and signature file I/O."""

from __future__ import annotations

import pytest

from repro.cluster import cpu_all_nodes, link_one, paper_testbed
from repro.core import build_skeleton, compress_trace, read_signature, write_signature
from repro.core.sigio import signature_from_dict, signature_to_dict
from repro.errors import SignatureError, WorkloadError
from repro.predict import SkeletonPredictor
from repro.sim import run_program
from repro.trace import trace_program, trace_stats
from repro.workloads import get_program


class TestFT:
    def test_runs_all_classes(self):
        cluster = paper_testbed()
        for klass in ("S", "W"):
            result = run_program(get_program("ft", klass, 4), cluster)
            assert result.elapsed > 0

    def test_comm_heavy(self):
        """FT is the communication-volume-heaviest code: its MPI share
        beats LU's at class W."""
        cluster = paper_testbed()
        shares = {}
        for bench in ("ft", "lu"):
            trace, _ = trace_program(get_program(bench, "W", 4), cluster)
            shares[bench] = trace_stats(trace)["mpi_percent"]
        assert shares["ft"] > shares["lu"]

    def test_link_sensitivity(self):
        """Throttling a link hits FT hard (its transposes move the
        whole dataset)."""
        cluster = paper_testbed()
        prog = get_program("ft", "S", 4)
        ded = run_program(prog, cluster).elapsed
        thr = run_program(prog, cluster, link_one(steady=True)).elapsed
        assert thr > 3 * ded

    def test_skeleton_roundtrip(self):
        cluster = paper_testbed()
        trace, ded = trace_program(get_program("ft", "S", 4), cluster)
        bundle = build_skeleton(trace, scaling_factor=3.0, warn=False)
        skel = run_program(bundle.program, cluster).elapsed
        assert skel == pytest.approx(ded.elapsed / 3.0, rel=0.35)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(WorkloadError):
            get_program("ft", "S", 6)


class TestEP:
    def test_runs(self):
        cluster = paper_testbed()
        result = run_program(get_program("ep", "S", 4), cluster)
        assert result.elapsed > 0

    def test_almost_no_communication(self):
        cluster = paper_testbed()
        trace, _ = trace_program(get_program("ep", "S", 4), cluster)
        assert trace_stats(trace)["mpi_percent"] < 5.0

    def test_cpu_share_prediction_degenerate_case(self):
        """EP is the boundary case: its skeleton is basically one
        scaled compute phase, and prediction still works."""
        cluster = paper_testbed()
        prog = get_program("ep", "S", 4)
        trace, ded = trace_program(prog, cluster)
        bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
        predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
        scen = cpu_all_nodes(steady=True)
        actual = run_program(prog, cluster, scen).elapsed
        assert predictor.predict(scen).error_percent(actual) < 8.0

    def test_network_insensitive(self):
        cluster = paper_testbed()
        prog = get_program("ep", "S", 4)
        ded = run_program(prog, cluster).elapsed
        thr = run_program(prog, cluster, link_one(steady=True)).elapsed
        assert thr < 1.2 * ded


class TestSignatureIO:
    def test_round_trip(self, cg_s_trace, tmp_path):
        trace, _ = cg_s_trace
        sig = compress_trace(trace, target_ratio=2.0)
        path = tmp_path / "cg.sig"
        write_signature(sig, path)
        loaded = read_signature(path)
        assert loaded.program_name == sig.program_name
        assert loaded.nranks == sig.nranks
        assert loaded.threshold == sig.threshold
        assert loaded.n_leaves() == sig.n_leaves()
        for a, b in zip(sig.ranks, loaded.ranks):
            assert a.total_time() == pytest.approx(b.total_time())
            assert a.expanded_length() == b.expanded_length()

    def test_samples_optional(self, cg_s_trace, tmp_path):
        trace, _ = cg_s_trace
        sig = compress_trace(trace, target_ratio=2.0)
        full = tmp_path / "full.sig"
        slim = tmp_path / "slim.sig"
        write_signature(sig, full, include_samples=True)
        write_signature(sig, slim, include_samples=False)
        assert slim.stat().st_size < full.stat().st_size
        loaded = read_signature(slim)
        for lf in loaded.ranks[0].iter_leaves():
            assert lf.gap_samples == []

    def test_loaded_signature_builds_skeleton(self, cg_s_trace, tmp_path):
        from repro.core.scale import scale_signature
        from repro.core.skeleton import skeleton_program

        trace, _ = cg_s_trace
        sig = compress_trace(trace, target_ratio=2.0)
        path = tmp_path / "cg.sig"
        write_signature(sig, path)
        loaded = read_signature(path)
        scaled = scale_signature(loaded, 4.0)
        prog = skeleton_program(scaled)
        cluster = paper_testbed()
        assert run_program(prog, cluster).elapsed > 0

    def test_bad_json_rejected(self, tmp_path):
        p = tmp_path / "x.sig"
        p.write_text("{nope")
        with pytest.raises(SignatureError):
            read_signature(p)

    def test_bad_format_rejected(self):
        with pytest.raises(SignatureError):
            signature_from_dict({"format": 99})

    def test_bad_node_type_rejected(self):
        doc = {
            "format": 1, "nranks": 1, "program": "x",
            "threshold": 0, "compression_ratio": 1, "trace_events": 1,
            "ranks": [{"rank": 0, "tail_gap": 0, "nodes": [{"t": "huh"}]}],
        }
        with pytest.raises(SignatureError):
            signature_from_dict(doc)

    def test_dict_round_trip_no_samples(self, mg_s_trace):
        trace, _ = mg_s_trace
        sig = compress_trace(trace, target_ratio=2.0)
        doc = signature_to_dict(sig, include_samples=False)
        loaded = signature_from_dict(doc)
        assert loaded.n_leaves() == sig.n_leaves()
