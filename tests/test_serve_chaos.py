"""IO chaos against the serving registry: publish/resolve under faults.

The registry is plain store objects, so it inherits the store's
torn-file discipline — these tests pin the *serving-level* corollaries:

* a fault mid-publish never leaves a resolvable half-alias — the
  publish fails loudly (pointing at ``doctor``), the alias stays
  unknown, and a later retry lands cleanly;
* a read fault during resolve is a miss, never wrong data;
* a corrupt alias object on disk is skipped by resolve/list, is
  quarantined by ``fsck``, and re-publishing on top of the wreckage
  yields the next version.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.faults.io import IOFault, IOFaultPlan
from repro.serve import PredictionService
from repro.store import fsck

CG_S = {"bench": "cg", "klass": "S", "nprocs": 4, "target": 0.05}


@pytest.fixture
def service(tmp_path):
    svc = PredictionService(cache_dir=str(tmp_path / "store"))
    # Warm the trace/skeleton stages so that a later publish of the
    # same workload only touches registry objects — which lets a
    # first-write fault strike the registry write deterministically.
    svc.publish({"alias": "warmup", **CG_S})
    return svc


class TestPublishUnderWriteFaults:
    @pytest.mark.parametrize(
        "kind", ["torn-write", "enospc-write", "short-write"]
    )
    def test_failed_publish_is_never_resolvable(self, service, kind):
        plan = IOFaultPlan(
            name=f"registry-{kind}",
            faults=(IOFault(kind, path_glob="*.json.tmp*"),),
        )
        with plan.install() as log:
            with pytest.warns(RuntimeWarning, match="cache-bypass"):
                with pytest.raises(ServeError, match="doctor"):
                    service.publish({"alias": "casualty", **CG_S})
        assert len(log) == 1
        # The torn alias must read as unknown, not as partial data.
        with pytest.raises(ServeError, match="unknown alias"):
            service.registry.resolve("casualty")
        assert all(
            e.name != "casualty" for e in service.registry.list()
        )
        # The store admits it is degraded; health reflects that.
        assert service.handle("healthz")["result"]["status"] == "degraded"
        # The plan is spent — a retry publishes cleanly.
        entry = service.publish({"alias": "casualty", **CG_S})
        assert entry.version == 1
        assert service.registry.resolve("casualty").version == 1

    def test_fault_between_version_and_latest_pointer(self, service):
        """The versioned object lands but the bare latest pointer is
        torn: the publish still fails loudly, and the next publish
        repairs the pointer rather than serving a stale one."""
        plan = IOFaultPlan(
            name="torn-latest-pointer",
            faults=(
                IOFault("torn-write", op_index=1,
                        path_glob="*.json.tmp*"),
            ),
        )
        with plan.install() as log:
            with pytest.warns(RuntimeWarning, match="cache-bypass"):
                with pytest.raises(ServeError, match="doctor"):
                    service.publish({"alias": "halfway", **CG_S})
        assert len(log) == 1
        # The versioned alias survived; only the bare pointer is gone.
        assert service.registry.resolve("halfway@v1").version == 1
        with pytest.raises(ServeError, match="unknown alias"):
            service.registry.resolve("halfway")
        entry = service.publish({"alias": "halfway", **CG_S})
        assert entry.version == 2
        assert service.registry.resolve("halfway").version == 2


class TestResolveUnderReadFaults:
    def test_read_fault_is_a_miss_never_wrong_data(self, service):
        service.publish({"alias": "steady", **CG_S})
        with IOFaultPlan(
            name="eio-resolve", faults=(IOFault("eio-read"),)
        ).install() as log:
            with pytest.raises(ServeError, match="unknown alias"):
                service.registry.resolve("steady")
        assert len(log) == 1
        # Once the fault passes, the same alias resolves fine.
        assert service.registry.resolve("steady").name == "steady"


class TestCorruptAliasObjects:
    def test_doctor_quarantines_and_republish_heals(self, service):
        service.publish({"alias": "patient", **CG_S})
        pointer = service.store.object_path(
            service.registry.key("patient")
        )
        pointer.write_text("{this is not an alias")
        # Corrupt bare pointer: bare resolve fails, versioned is fine,
        # list skips the wreck.
        with pytest.raises(ServeError, match="unknown alias"):
            service.registry.resolve("patient")
        assert service.registry.resolve("patient@v1").version == 1
        assert [
            e.alias for e in service.registry.list()
            if e.name == "patient"
        ] == ["patient@v1"]

        report = fsck(service.store, repair=True)
        assert report.corrupt_objects and report.quarantined
        assert not pointer.exists()

        # Publishing again mints v2 and restores the latest pointer.
        entry = service.publish({"alias": "patient", **CG_S})
        assert entry.version == 2
        assert service.registry.resolve("patient").version == 2
        assert fsck(service.store, repair=False).clean
