"""Cluster topology validation tests."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkSpec, NodeSpec, paper_testbed
from repro.errors import TopologyError


class TestNodeSpec:
    def test_valid(self):
        n = NodeSpec("n0", ncpus=2, speed=1.5)
        assert n.ncpus == 2

    def test_zero_cpus_rejected(self):
        with pytest.raises(TopologyError):
            NodeSpec("n0", ncpus=0)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(TopologyError):
            NodeSpec("n0", speed=0.0)


class TestNetworkSpec:
    def test_defaults_sane(self):
        net = NetworkSpec()
        assert net.latency > 0
        assert net.bandwidth > 0
        assert net.eager_threshold > 0

    def test_negative_latency_rejected(self):
        with pytest.raises(TopologyError):
            NetworkSpec(latency=-1.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(TopologyError):
            NetworkSpec(bandwidth=0.0)

    def test_negative_eager_threshold_rejected(self):
        with pytest.raises(TopologyError):
            NetworkSpec(eager_threshold=-1)


class TestCluster:
    def test_uniform(self):
        c = Cluster.uniform(4, ncpus=2)
        assert c.nnodes == 4
        assert all(n.ncpus == 2 for n in c.nodes)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(nodes=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(nodes=(NodeSpec("a"), NodeSpec("a")))

    def test_node_index(self):
        c = Cluster.uniform(3)
        assert c.node_index("node1") == 1
        with pytest.raises(TopologyError):
            c.node_index("nope")

    def test_with_network(self):
        c = Cluster.uniform(2).with_network(latency=1e-3)
        assert c.network.latency == 1e-3
        assert c.nnodes == 2

    def test_paper_testbed_shape(self):
        c = paper_testbed()
        assert c.nnodes == 4
        assert all(n.ncpus == 2 for n in c.nodes)

    def test_zero_node_count_rejected(self):
        with pytest.raises(TopologyError):
            Cluster.uniform(0)
