"""Tests for the mpi4py-flavoured program API."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.sim import run_program
from repro.sim.api import Comm, mpi_program
from repro.trace import trace_program


class TestCommApi:
    def test_pingpong(self, cluster):
        @mpi_program(nranks=2)
        def app(comm: Comm):
            if comm.rank == 0:
                yield from comm.compute(0.01)
                yield from comm.send(dest=1, nbytes=1000, tag=7)
                yield from comm.recv(source=1, tag=8)
            else:
                yield from comm.recv(source=0, tag=7)
                yield from comm.send(dest=0, nbytes=1000, tag=8)

        result = run_program(app, cluster)
        assert result.n_messages == 2
        assert result.elapsed > 0.01

    def test_nonblocking_returns_requests(self, cluster):
        @mpi_program(nranks=2)
        def app(comm: Comm):
            other = 1 - comm.rank
            r1 = yield from comm.irecv(source=other, tag=1)
            r2 = yield from comm.isend(dest=other, nbytes=5000, tag=1)
            yield from comm.waitall([r1, r2])

        result = run_program(app, cluster)
        assert result.n_messages == 2

    def test_wait_single(self, cluster):
        @mpi_program(nranks=2)
        def app(comm: Comm):
            other = 1 - comm.rank
            req = yield from comm.irecv(source=other, tag=2)
            yield from comm.isend(dest=other, nbytes=10, tag=2)
            yield from comm.wait(req)

        run_program(app, cluster)

    def test_all_collectives(self, cluster):
        @mpi_program(nranks=4)
        def app(comm: Comm):
            yield from comm.barrier()
            yield from comm.bcast(100, root=2)
            yield from comm.reduce(100, root=1)
            yield from comm.allreduce(100)
            yield from comm.allgather(100)
            yield from comm.alltoall(100)
            yield from comm.alltoallv([10, 20, 30, 40])
            yield from comm.reduce_scatter(100)
            yield from comm.scan(100)
            yield from comm.gather(100, root=0)
            yield from comm.scatter(100, root=0)

        result = run_program(app, cluster)
        assert result.elapsed > 0

    def test_sendrecv(self, cluster):
        @mpi_program(nranks=2)
        def app(comm: Comm):
            other = 1 - comm.rank
            yield from comm.sendrecv(dest=other, nbytes=100_000,
                                     source=other)

        run_program(app, cluster)

    def test_decorated_program_is_traceable_and_skeletonable(self, cluster):
        from repro.core import build_skeleton

        @mpi_program(nranks=4, name="api-demo")
        def app(comm: Comm):
            for _ in range(30):
                yield from comm.compute(0.002)
                yield from comm.allreduce(4096)

        trace, ded = trace_program(app, cluster)
        assert trace.program_name == "api-demo"
        bundle = build_skeleton(trace, scaling_factor=5.0, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed == pytest.approx(ded.elapsed / 5.0, rel=0.3)

    def test_program_name_defaults_to_function_name(self):
        @mpi_program(nranks=2)
        def my_named_app(comm: Comm):
            yield from comm.barrier()

        assert my_named_app.name == "my_named_app"
