"""Edge cases across modules: error types, engine guards, degenerate
programs, larger rank counts."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, Scenario, paper_testbed
from repro.errors import (
    DeadlockError,
    ProgramError,
    ReproError,
    SimulationError,
    SkeletonQualityWarning,
)
from repro.sim import Barrier, Compute, Program, Recv, Send, run_program
from repro.sim.engine import Engine, SimConfig
from repro.sim.ops import RequestHandle, call_name, Send as SendOp
from repro.workloads import get_program


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in ("SimulationError", "DeadlockError", "ProgramError",
                     "TopologyError", "TraceError", "SignatureError",
                     "SkeletonError", "ExperimentError", "WorkloadError"):
            cls = getattr(errors, name)
            assert issubclass(cls, ReproError)

    def test_deadlock_carries_blocked_ranks(self):
        err = DeadlockError("stuck", blocked_ranks=[1, 3])
        assert err.blocked_ranks == [1, 3]
        assert isinstance(err, SimulationError)

    def test_quality_warning_is_user_warning(self):
        assert issubclass(SkeletonQualityWarning, UserWarning)


class TestEngineGuards:
    def test_event_budget_guard(self, cluster):
        def gen(rank, size):
            for _ in range(1000):
                yield Compute(1e-6)

        config = SimConfig(max_events=10)
        engine = Engine(cluster, config=config)
        with pytest.raises(SimulationError, match="budget"):
            engine.run(Program("x", 4, gen))

    def test_zero_compute_is_free(self, cluster):
        def gen(rank, size):
            yield Compute(0.0)
            yield Compute(-1.0)  # clamped: non-positive -> no-op

        result = run_program(Program("z", 2, gen), cluster)
        assert result.elapsed == 0.0

    def test_empty_program(self, cluster):
        def gen(rank, size):
            return
            yield  # pragma: no cover

        result = run_program(Program("empty", 4, gen), cluster)
        assert result.elapsed == 0.0
        assert result.n_messages == 0

    def test_single_rank_program(self, cluster):
        def gen(rank, size):
            yield Compute(0.1)
            yield Barrier()

        result = run_program(Program("solo", 1, gen), cluster)
        assert result.elapsed == pytest.approx(0.1)

    def test_program_requires_positive_ranks(self):
        with pytest.raises(ValueError):
            Program("bad", 0, lambda r, s: iter(()))

    def test_engine_reusable_across_runs(self, cluster):
        def gen(rank, size):
            yield Compute(0.05)

        engine = Engine(cluster)
        a = engine.run(Program("a", 2, gen))
        b = engine.run(Program("b", 2, gen))
        assert a.finish_times == b.finish_times

    def test_deadlock_under_bursty_scenario_still_detected(self, cluster):
        """Background modulation events must not mask a deadlock."""
        from repro.cluster import cpu_one_node

        def gen(rank, size):
            if rank == 0:
                yield Recv(source=1, tag=1)  # never sent

        with pytest.raises(DeadlockError):
            run_program(Program("dl", 2, gen), cluster, cpu_one_node())


class TestOps:
    def test_call_name_mapping(self):
        assert call_name(SendOp(dest=1, nbytes=1)) == "MPI_Send"

    def test_request_repr(self):
        req = RequestHandle("send", 1, 0, 10)
        assert "pending" in repr(req)
        req.done = True
        assert "done" in repr(req)


class TestLargerScales:
    def test_cg_sixteen_ranks(self):
        cluster = paper_testbed(16)
        result = run_program(get_program("cg", "S", 16), cluster)
        assert result.elapsed > 0

    def test_bt_sixteen_ranks(self):
        cluster = paper_testbed(16)
        result = run_program(get_program("bt", "S", 16), cluster)
        assert result.elapsed > 0

    def test_mg_two_ranks(self):
        cluster = paper_testbed(2)
        result = run_program(get_program("mg", "S", 2), cluster)
        assert result.elapsed > 0

    def test_skeleton_at_sixteen_ranks(self):
        from repro.core import build_skeleton
        from repro.trace import trace_program

        cluster = paper_testbed(16)
        trace, ded = trace_program(get_program("mg", "S", 16), cluster)
        bundle = build_skeleton(trace, scaling_factor=2.0, warn=False)
        skel = run_program(bundle.program, cluster)
        assert skel.elapsed == pytest.approx(ded.elapsed / 2.0, rel=0.4)


class TestQuickConfig:
    def test_quick_config_is_smaller(self):
        from repro.experiments.config import ExperimentConfig, QuickConfig

        q = QuickConfig()
        full = ExperimentConfig()
        assert len(q.benchmarks) < len(full.benchmarks)
        assert q.key() != full.key()
