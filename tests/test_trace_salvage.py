"""Hardened trace ingestion: strict diagnostics, salvage mode, and the
``validate_trace`` pass — including randomized corruption fuzzing."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import TraceError
from repro.trace import (
    Trace,
    TraceRecord,
    read_trace,
    read_trace_salvage,
    validate_trace,
    write_trace,
)


@pytest.fixture(scope="module")
def good_trace(cg_s_trace):
    return cg_s_trace[0]


@pytest.fixture
def trace_file(good_trace, tmp_path):
    path = tmp_path / "good.trace"
    write_trace(good_trace, path)
    return path


class TestStrictDiagnostics:
    """Every malformed line is a TraceError naming path:lineno."""

    def _expect(self, tmp_path, lines, fragment):
        path = tmp_path / "bad.trace"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError) as err:
            read_trace(path)
        assert fragment in str(err.value)
        assert str(path) in str(err.value)
        return str(err.value)

    HEADER = json.dumps(
        {"format": 1, "program": "x", "scenario": "d", "nranks": 2,
         "finish_times": [1.0, 1.0]}
    )

    def test_missing_keys_named(self, tmp_path):
        msg = self._expect(
            tmp_path,
            [self.HEADER, '{"r": 0, "c": "MPI_Send", "s": 0.0}'],
            "missing key(s) ['e']",
        )
        assert ":2:" in msg

    def test_non_numeric_field_wrapped(self, tmp_path):
        self._expect(
            tmp_path,
            [self.HEADER, '{"r": 0, "c": "MPI_Send", "s": "soon", "e": 1.0}'],
            "non-numeric field",
        )

    def test_rank_out_of_range(self, tmp_path):
        self._expect(
            tmp_path,
            [self.HEADER, '{"r": 7, "c": "MPI_Send", "s": 0.0, "e": 0.1}'],
            "rank 7 out of range",
        )

    def test_end_before_start_rejected(self, tmp_path):
        self._expect(
            tmp_path,
            [self.HEADER, '{"r": 0, "c": "MPI_Send", "s": 2.0, "e": 1.0}'],
            "precedes start",
        )

    def test_non_finite_timestamps_rejected(self, tmp_path):
        self._expect(
            tmp_path,
            [self.HEADER, '{"r": 0, "c": "MPI_Send", "s": NaN, "e": 1.0}'],
            "non-finite",
        )

    def test_non_object_record_rejected(self, tmp_path):
        self._expect(tmp_path, [self.HEADER, "[1, 2, 3]"], "not a JSON object")

    def test_header_missing_nranks(self, tmp_path):
        self._expect(tmp_path, ['{"format": 1}'], "missing 'nranks'")

    def test_header_finish_times_length_mismatch(self, tmp_path):
        header = json.dumps(
            {"format": 1, "nranks": 2, "finish_times": [1.0, 2.0, 3.0]}
        )
        self._expect(tmp_path, [header], "finish_times has 3 entries")


class TestSalvage:
    def test_clean_file_salvages_everything(self, good_trace, trace_file):
        trace, report = read_trace_salvage(trace_file)
        assert report.clean
        assert report.n_dropped == 0
        assert trace.n_calls() == good_trace.n_calls()

    def test_truncated_final_line(self, good_trace, trace_file, tmp_path):
        whole = trace_file.read_text()
        cut = tmp_path / "cut.trace"
        cut.write_text(whole[: int(len(whole) * 0.7)])
        trace, report = read_trace_salvage(cut)
        assert not report.clean
        assert report.n_dropped == 1
        assert report.first_error and "cut.trace" in report.first_error
        assert validate_trace(trace) == []
        # strict mode refuses the same file
        with pytest.raises(TraceError):
            read_trace(cut)
        # read_trace(strict=False) is the same salvage path
        assert read_trace(cut, strict=False).n_calls() == trace.n_calls()

    def test_garbage_midfile_stops_at_first_corruption(
        self, trace_file, tmp_path
    ):
        lines = trace_file.read_text().splitlines()
        bad = tmp_path / "mid.trace"
        bad.write_text(
            "\n".join(lines[:6]) + "\nnot json\n" + "\n".join(lines[6:]) + "\n"
        )
        trace, report = read_trace_salvage(bad)
        assert trace.n_calls() == 5  # records on lines 2..6
        assert report.n_recovered == 5
        assert report.n_dropped == len(lines) - 6 + 1
        assert "mid.trace:7" in report.first_error
        assert "dropped" in report.describe()

    def test_header_corruption_unrecoverable(self, trace_file, tmp_path):
        lines = trace_file.read_text().splitlines()
        bad = tmp_path / "hdr.trace"
        bad.write_text("{broken\n" + "\n".join(lines[1:]) + "\n")
        with pytest.raises(TraceError):
            read_trace_salvage(bad)
        empty = tmp_path / "empty.trace"
        empty.write_text("")
        with pytest.raises(TraceError):
            read_trace_salvage(empty)

    def test_backwards_time_treated_as_corruption(self, tmp_path):
        header = json.dumps({"format": 1, "nranks": 1})
        rec1 = json.dumps({"r": 0, "c": "MPI_Send", "s": 1.0, "e": 2.0})
        rec2 = json.dumps({"r": 0, "c": "MPI_Send", "s": 0.5, "e": 0.6})
        path = tmp_path / "back.trace"
        path.write_text("\n".join([header, rec1, rec2]) + "\n")
        trace, report = read_trace_salvage(path)
        assert trace.n_calls() == 1
        assert "backwards" in report.first_error
        assert validate_trace(trace) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_random_corruption(self, trace_file, tmp_path, seed):
        """Any single corruption: salvage keeps the prefix before it,
        never returns a structurally invalid trace, and strict mode
        always raises."""
        rng = random.Random(seed)
        lines = trace_file.read_text().splitlines()
        n = len(lines)
        mode = rng.choice(["truncate", "flip", "garbage", "splice"])
        victim = rng.randrange(1, n)  # never the header
        if mode == "truncate":
            mutated = lines[:victim] + [lines[victim][: rng.randrange(3, 20)]]
        elif mode == "flip":
            line = list(lines[victim])
            pos = rng.randrange(len(line))
            line[pos] = chr((ord(line[pos]) + 7) % 128) or "?"
            mutated = lines[:victim] + ["".join(line)] + lines[victim + 1:]
        elif mode == "garbage":
            mutated = (
                lines[:victim]
                + [rng.choice(["", "{", "null", "\x00\x01", '{"r": -3}'])]
                + lines[victim:]
            )
        else:  # splice: swap in a record with impossible fields
            mutated = (
                lines[:victim]
                + ['{"r": 0, "c": "MPI_Send", "s": -5.0, "e": -4.0}']
                + lines[victim:]
            )
        path = tmp_path / f"fuzz{seed}.trace"
        path.write_text("\n".join(mutated) + "\n")
        trace, report = read_trace_salvage(path)
        # Universal invariants: the result is structurally valid and
        # the report's accounting matches what was returned.
        assert validate_trace(trace) == []
        assert report.n_recovered == trace.n_calls()
        if not report.clean:
            assert report.first_error
            # Strict mode either refuses the file outright or returns
            # a trace that validate_trace flags (salvage is the
            # stricter reader: its output is always clean).
            try:
                strict = read_trace(path)
            except TraceError:
                pass
            else:
                assert validate_trace(strict) != []
        # Exact-prefix guarantees for the modes whose corruption is
        # certain (a byte flip may leave the line valid JSON; blank ""
        # garbage is skipped as whitespace, not corruption).
        expected_prefix = victim - 1
        if mode == "garbage" and mutated[victim] == "":
            assert report.clean
            assert trace.n_calls() == len(lines) - 1
        elif mode in ("truncate", "garbage", "splice"):
            assert not report.clean
            assert trace.n_calls() == expected_prefix


class TestValidateTrace:
    def test_good_trace_validates(self, good_trace):
        assert validate_trace(good_trace) == []
        good_trace.validate()  # raising twin

    def test_finish_times_length_checked(self):
        trace = Trace(
            program_name="x", scenario_name="d", nranks=2,
            records=[[], []], finish_times=[1.0],
        )
        issues = validate_trace(trace)
        assert any("finish_times has 1" in i for i in issues)
        with pytest.raises(TraceError):
            trace.validate()

    def test_overlapping_calls_flagged(self):
        recs = [
            TraceRecord("MPI_Send", {}, 0.0, 1.0),
            TraceRecord("MPI_Recv", {}, 0.5, 1.5),
        ]
        trace = Trace(
            program_name="x", scenario_name="d", nranks=1,
            records=[recs], finish_times=[2.0],
        )
        issues = validate_trace(trace)
        assert any("before previous call ended" in i for i in issues)

    def test_call_past_finish_flagged(self):
        trace = Trace(
            program_name="x", scenario_name="d", nranks=1,
            records=[[TraceRecord("MPI_Send", {}, 0.0, 5.0)]],
            finish_times=[1.0],
        )
        issues = validate_trace(trace)
        assert any("after" in i and "finish" in i for i in issues)

    def test_every_problem_reported_not_just_first(self):
        recs = [
            TraceRecord("MPI_Send", {}, 0.0, 1.0),
            TraceRecord("MPI_Recv", {}, 0.5, 6.0),
        ]
        trace = Trace(
            program_name="x", scenario_name="d", nranks=1,
            records=[recs], finish_times=[1.0],
        )
        assert len(validate_trace(trace)) >= 2
