"""Transport + pool layer: backpressure, deadlines, drain, isolation.

The server runs in a background thread on an OS-assigned port; the
real :class:`ServiceClient` drives it over TCP, so the full wire
protocol is exercised. Worker-pool tests monkeypatch
``repro.predict.online.compute_prediction`` *before* constructing the
pool — workers are forked and inherit the patch — which is how hung
and crashing workers are produced deterministically.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time

import pytest

from repro.errors import (
    RemoteComputeError,
    ServeError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.obs.metrics import enabled_metrics
from repro.parallel.supervisor import SupervisorConfig
from repro.serve import (
    PredictionServer,
    PredictionService,
    ServiceClient,
    WorkerPool,
)

CG_S = {"bench": "cg", "klass": "S", "nprocs": 4, "target": 0.05}


class ServerThread:
    """Run a PredictionServer's asyncio loop in a daemon thread."""

    def __init__(self, service: PredictionService, **kwargs):
        self.server = PredictionServer(service, port=0, **kwargs)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(10), "server did not come up"
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(15)

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 30.0) -> ServiceClient:
        return ServiceClient(port=self.port, timeout=timeout)


@pytest.fixture
def service(tmp_path):
    return PredictionService(cache_dir=str(tmp_path / "store"))


class TestWireProtocol:
    def test_verbs_over_tcp(self, service):
        with ServerThread(service) as st:
            client = st.client()
            assert client.call("ping")["result"] == {"pong": True}
            pub = client.call("publish", {"alias": "cg.s4", **CG_S})
            assert pub["ok"] and pub["code"] == 200
            pred = client.call(
                "predict", {"alias": "cg.s4", "scenario": "cpu-one-node"}
            )
            assert pred["ok"]
            assert pred["result"]["predicted_seconds"] > 0
            assert client.call("healthz")["result"]["status"] == "ok"

    def test_request_id_is_echoed(self, service):
        with ServerThread(service) as st:
            reply = st.client().call("ping", request_id="req-42")
            assert reply["id"] == "req-42"

    def test_malformed_line_yields_400_not_disconnect(self, service):
        with ServerThread(service) as st:
            with socket.create_connection(("127.0.0.1", st.port), 10) as s:
                s.sendall(b"this is not json\n")
                fh = s.makefile("rb")
                bad = json.loads(fh.readline())
                assert bad["code"] == 400 and not bad["ok"]
                # The connection survives for the next request.
                s.sendall(b'{"verb": "ping"}\n')
                ok = json.loads(fh.readline())
                assert ok["ok"]

    def test_unreachable_service_raises_serve_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServeError, match="cannot reach"):
            ServiceClient(port=free_port, timeout=2).call("ping")


class TestBackpressure:
    def test_saturation_sheds_load_with_explicit_503(self, service):
        """The acceptance property: a full admission queue answers
        *immediately* with an explicit overload reply instead of
        queueing without bound."""
        release = threading.Event()

        def blocked_compute(params, cache, cluster, bundles=None):
            assert release.wait(30)
            return {"value": params["env_seed"]}

        service._compute = blocked_compute
        replies, lock = [], threading.Lock()

        def one_call(port, seed):
            t0 = time.monotonic()
            reply = ServiceClient(port=port, timeout=60).call(
                "predict", {**CG_S, "scenario": "cpu-one-node",
                            "env_seed": seed}
            )
            with lock:
                replies.append((reply, time.monotonic() - t0))

        with enabled_metrics() as m:
            with ServerThread(
                service, max_pending=1, max_concurrency=1
            ) as st:
                threads = [
                    threading.Thread(target=one_call, args=(st.port, i))
                    for i in range(4)
                ]
                for t in threads:
                    t.start()
                # All but the one admitted request are refused fast,
                # while the admitted one is still blocked in compute.
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    with lock:
                        if len(replies) >= 3:
                            break
                    time.sleep(0.01)
                with lock:
                    shed = [r for r, _ in replies if r["code"] == 503]
                    assert len(shed) == 3, replies
                    assert all(
                        r["error"]["type"] == "Overloaded" for r in shed
                    )
                    assert all(dt < 5.0 for _, dt in replies)
                release.set()
                for t in threads:
                    t.join(30)
            with lock:
                served = [r for r, _ in replies if r["ok"]]
            assert len(served) == 1
            assert m.counter("serve.overload").value == 3

    def test_deadline_exceeded_yields_504(self, service):
        def slow_compute(params, cache, cluster, bundles=None):
            time.sleep(2.0)
            return {"value": 1}

        service._compute = slow_compute
        with ServerThread(service) as st:
            t0 = time.monotonic()
            reply = st.client().call(
                "predict",
                {**CG_S, "scenario": "cpu-one-node"},
                deadline_ms=100,
            )
            assert reply["code"] == 504
            assert reply["error"]["type"] == "DeadlineExceeded"
            assert time.monotonic() - t0 < 1.5

    def test_cheap_verbs_bypass_admission(self, service):
        """healthz must answer even when the queue is saturated."""
        release = threading.Event()
        service._compute = lambda *a, **k: release.wait(30) and {}
        with ServerThread(service, max_pending=1, max_concurrency=1) as st:
            blocked = threading.Thread(
                target=lambda: st.client(timeout=60).call(
                    "predict", {**CG_S, "scenario": "cpu-one-node"}
                )
            )
            blocked.start()
            try:
                assert st.client(timeout=5).call("healthz")["ok"]
                assert st.client(timeout=5).call("ping")["ok"]
            finally:
                release.set()
                blocked.join(30)


class TestDrain:
    def test_drain_refuses_new_connections(self, service):
        st = ServerThread(service)
        with st:
            port = st.port
            assert st.client().call("ping")["ok"]
        with pytest.raises(ServeError):
            ServiceClient(port=port, timeout=2).call("ping")


def _hang_on_marker(params, cache, cluster, bundle_cache=None):
    if params.get("env_seed") == 777:
        time.sleep(60)
    return {"value": int(params.get("env_seed", 0))}


def _crash_worker(params, cache, cluster, bundle_cache=None):
    os._exit(3)


def _typed_failure(params, cache, cluster, bundle_cache=None):
    # OSError is retryable, so the worker-side resilient_call exhausts
    # its attempts and annotates the final exception with the count.
    raise OSError("skeleton refused to congeal")


class TestWorkerPool:
    def test_cold_compute_in_pool_matches_inline(self, tmp_path):
        """The same store, the same floats: a pool-computed prediction
        is identical to one computed in-process, and its artifacts
        warm the shared store."""
        from repro.predict.online import normalize_request
        from repro.store import canonical_json

        cache_dir = str(tmp_path / "store")
        req = normalize_request(
            "cg", "S", 4, target=0.05, scenario="cpu-one-node"
        )
        pool = WorkerPool(cache_dir=cache_dir, workers=1)
        try:
            pooled = pool.submit(req)
        finally:
            pool.close()
        inline_service = PredictionService(cache_dir=cache_dir)
        inline = inline_service.handle(
            "predict", {**CG_S, "scenario": "cpu-one-node"}
        )
        assert canonical_json(pooled) == canonical_json(inline["result"])

    def test_hung_worker_is_cancelled_and_respawned(
        self, tmp_path, monkeypatch
    ):
        import repro.predict.online as online

        monkeypatch.setattr(online, "compute_prediction", _hang_on_marker)
        pool = WorkerPool(
            cache_dir=str(tmp_path),
            workers=1,
            supervisor=SupervisorConfig(
                task_timeout=0.6,
                grace_seconds=0.2,
                heartbeat_interval=0.1,
            ),
        )
        try:
            with pytest.raises(TaskTimeoutError, match="hung"):
                pool.submit({"env_seed": 777})
            assert pool.supervisor.n_timeouts == 1
            # The respawned worker (which inherited the patch) still
            # serves non-marker requests.
            assert pool.submit({"env_seed": 5}) == {"value": 5}
            assert pool.stats()["alive"] == 1
        finally:
            pool.close()

    def test_dead_worker_raises_crash_error_and_respawns(
        self, tmp_path, monkeypatch
    ):
        import repro.predict.online as online

        monkeypatch.setattr(online, "compute_prediction", _crash_worker)
        pool = WorkerPool(cache_dir=str(tmp_path), workers=1)
        try:
            with pytest.raises(WorkerCrashError):
                pool.submit({"env_seed": 1})
            deadline = time.monotonic() + 10
            while pool.stats()["alive"] < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.stats()["alive"] == 1
            assert pool.stats()["crashes"] >= 1
        finally:
            pool.close()

    def test_worker_failure_carries_type_and_attempts(
        self, tmp_path, monkeypatch
    ):
        """A worker-side exception comes back as RemoteComputeError
        with the original class name and retry count, and the service
        renders it as a 500 with a campaign-style failure record."""
        import repro.predict.online as online

        from repro.faults.resilience import RetryPolicy

        monkeypatch.setattr(online, "compute_prediction", _typed_failure)
        pool = WorkerPool(
            cache_dir=str(tmp_path),
            workers=1,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        service = PredictionService(cache_dir=str(tmp_path), pool=pool)
        try:
            with pytest.raises(RemoteComputeError) as exc_info:
                pool.submit({"env_seed": 1})
            assert exc_info.value.error_type == "OSError"
            assert exc_info.value.attempts == 2

            reply = service.handle(
                "predict", {**CG_S, "scenario": "cpu-one-node"}
            )
            assert reply["code"] == 500
            assert reply["error"]["type"] == "OSError"
            assert reply["error"]["attempts"] == 2
            assert "after 2 attempt(s)" in reply["failure_record"]
        finally:
            service.close()

    def test_healthz_reports_pool_state(self, tmp_path):
        pool = WorkerPool(cache_dir=str(tmp_path), workers=2)
        service = PredictionService(cache_dir=str(tmp_path), pool=pool)
        try:
            health = service.handle("healthz")["result"]
            assert health["pool"]["alive"] == 2
            assert health["status"] == "ok"
        finally:
            service.close()
