"""Loop-nest folding tests, including the paper's worked example."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import ExecEvent
from repro.core.loopfind import _prefix_hashes, _windows_equal, fold_symbols
from repro.core.signature import EventStats, LoopNode


def events_for(symbols):
    """One distinct event per symbol value (peer = symbol)."""
    return [
        ExecEvent("MPI_Send", int(s), 0, 100.0 * (int(s) + 1), 1e-4, 0.01)
        for s in symbols
    ]


def fold(symbols, **kw):
    return fold_symbols(list(symbols), events_for(symbols), **kw)


def leaf_symbols(nodes):
    """Expand a folded node list back to the flat symbol sequence
    (peers encode symbols)."""
    out = []
    for node in nodes:
        if isinstance(node, LoopNode):
            body = leaf_symbols(node.body)
            out.extend(body * node.count)
        else:
            out.append(node.peer)
    return out


class TestPaperExample:
    def test_alpha_beta_gamma(self):
        """The paper's §3.2 example: αββγββγββγκαα ->
        α [(β)² γ]³ κ [α]²  (α=0, β=1, γ=2, κ=3)."""
        s = [0, 1, 1, 2, 1, 1, 2, 1, 1, 2, 3, 0, 0]
        nodes = fold(s)
        # Expansion is always exact.
        assert leaf_symbols(nodes) == s
        # Structure: alpha, loop x3, kappa, loop x2.
        assert len(nodes) == 4
        assert isinstance(nodes[0], EventStats) and nodes[0].peer == 0
        outer = nodes[1]
        assert isinstance(outer, LoopNode) and outer.count == 3
        # Body of the x3 loop: (β)² then γ.
        assert isinstance(outer.body[0], LoopNode)
        assert outer.body[0].count == 2
        assert outer.body[0].body[0].peer == 1
        assert outer.body[1].peer == 2
        assert isinstance(nodes[2], EventStats) and nodes[2].peer == 3
        tail = nodes[3]
        assert isinstance(tail, LoopNode) and tail.count == 2
        assert tail.body[0].peer == 0


class TestBasicFolds:
    def test_no_repeats_untouched(self):
        nodes = fold([0, 1, 2, 3])
        assert len(nodes) == 4
        assert all(isinstance(n, EventStats) for n in nodes)

    def test_simple_run(self):
        nodes = fold([5] * 10)
        assert len(nodes) == 1
        assert isinstance(nodes[0], LoopNode)
        assert nodes[0].count == 10

    def test_period_two(self):
        nodes = fold([0, 1] * 6)
        assert len(nodes) == 1
        assert nodes[0].count == 6
        assert [n.peer for n in nodes[0].body] == [0, 1]

    def test_nested_runs(self):
        # (A A B) x3 -> [ (A)^2 B ]^3
        nodes = fold([0, 0, 1] * 3)
        assert len(nodes) == 1
        outer = nodes[0]
        assert outer.count == 3
        assert isinstance(outer.body[0], LoopNode)
        assert outer.body[0].count == 2

    def test_phase_shifted_pattern(self):
        # B (A B) x3 folds despite the leading B.
        s = [1, 0, 1, 0, 1, 0, 1]
        nodes = fold(s)
        assert leaf_symbols(nodes) == s
        assert sum(n.n_leaves() for n in nodes) < len(s)

    def test_unequal_run_lengths_do_not_merge(self):
        # (A)^2 B (A)^3 B: loops with different counts stay distinct.
        s = [0, 0, 1, 0, 0, 0, 1]
        nodes = fold(s)
        assert leaf_symbols(nodes) == s

    def test_empty(self):
        assert fold([]) == []

    def test_single(self):
        nodes = fold([7])
        assert len(nodes) == 1


class TestMerging:
    def test_iteration_parameters_averaged(self):
        """Merging loop iterations averages the gaps position-wise."""
        symbols = [0, 0, 0]
        events = [
            ExecEvent("MPI_Send", 0, 0, 100.0, 1e-4, gap)
            for gap in (0.1, 0.2, 0.3)
        ]
        nodes = fold_symbols(symbols, events)
        assert len(nodes) == 1
        leaf = nodes[0].body[0]
        assert leaf.mean_gap == pytest.approx(0.2)
        assert leaf.count == 3
        assert sorted(leaf.gap_samples) == [0.1, 0.2, 0.3]

    def test_time_conservation(self):
        """Total (gap+duration) mass is conserved by folding."""
        s = [0, 1, 1, 2, 1, 1, 2, 1, 1, 2, 3, 0, 0]
        events = events_for(s)
        total = sum(e.gap + e.duration for e in events)
        nodes = fold_symbols(s, events)

        def tree_total(nodes):
            out = 0.0
            for n in nodes:
                if isinstance(n, LoopNode):
                    out += n.count * tree_total(n.body)
                else:
                    out += n.count * (n.mean_gap + n.mean_duration) / n.count * n.count
            return out

        # expanded mean mass equals the original mass
        expanded = sum(
            n.total_time() if isinstance(n, EventStats) else n.total_time()
            for n in nodes
        )
        assert expanded == pytest.approx(total)


class TestBudget:
    def test_budget_exhaustion_degrades_gracefully(self):
        s = list(range(50)) * 4  # period-50 repeat
        nodes = fold(s, max_period=64, work_budget=10)
        # Too little budget to fold, but expansion is still exact.
        assert leaf_symbols(nodes) == s

    def test_max_period_cap(self):
        s = list(range(100)) * 2
        nodes = fold(s, max_period=10)
        assert leaf_symbols(nodes) == s  # cannot fold, still correct


class TestRollingHash:
    def test_window_equality_matches_slices(self):
        # Mix of leaf symbols, interner-style negatives, and
        # collective-namespace magnitudes (~2^40).
        sigs = [0, 1, -3, 1 << 40, 0, 1, -3, 1 << 40, 5, 5]
        hashes, pows = _prefix_hashes(sigs)
        for length in range(1, len(sigs) // 2 + 1):
            for i in range(len(sigs) - length + 1):
                for j in range(len(sigs) - length + 1):
                    assert _windows_equal(
                        hashes, pows, sigs, i, j, length
                    ) == (sigs[i : i + length] == sigs[j : j + length])

    def test_budget_charging_is_hash_independent(self):
        """The hash filter must not change what the work budget sees:
        a budget that stops folding must stop it at the same place as
        the pre-hash implementation (element-count cost model)."""
        s = list(range(50)) * 4
        # Generous budget folds fully; the exact legacy charge for a
        # period-50 triple-extension scan is well above 150.
        full = fold(s, max_period=64)
        assert len(full) == 1 and full[0].count == 4
        # A 10-unit budget is spent on period-1 scans before period 50
        # is ever reached — nothing folds (same as the seed behaviour).
        starved = fold(s, max_period=64, work_budget=10)
        assert leaf_symbols(starved) == s
        assert all(isinstance(n, EventStats) for n in starved)


class TestMergeRunEquivalence:
    def test_long_run_means_match_pairwise_fold(self):
        """merge_run must reproduce the left-fold recurrence exactly
        (bit-identical means), not just approximately."""
        gaps = [0.1 * (i % 7) + 0.01 for i in range(200)]
        stats = [
            EventStats.from_event(
                ExecEvent("MPI_Send", 1, 0, 100.0 + i % 3, 1e-4, g)
            )
            for i, g in enumerate(gaps)
        ]
        folded = stats[0]
        for s in stats[1:]:
            folded = folded.merged_with(s)
        ran = EventStats.merge_run(list(stats))
        assert ran.mean_gap == folded.mean_gap  # exact, not approx
        assert ran.mean_bytes == folded.mean_bytes
        assert ran.mean_duration == folded.mean_duration
        assert ran.count == folded.count
        assert ran.gap_samples == folded.gap_samples

    def test_incompatible_events_rejected(self):
        from repro.errors import SignatureError

        a = EventStats.from_event(ExecEvent("MPI_Send", 1, 0, 1.0, 1e-4, 0.0))
        b = EventStats.from_event(ExecEvent("MPI_Recv", 1, 0, 1.0, 1e-4, 0.0))
        with pytest.raises(SignatureError):
            EventStats.merge_run([a, b])


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=60)
)
def test_fold_expansion_roundtrip(symbols):
    """Folding never changes the expanded sequence — only its
    representation."""
    nodes = fold(symbols)
    assert leaf_symbols(nodes) == symbols


@settings(max_examples=60, deadline=None)
@given(
    body=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6),
    reps=st.integers(min_value=2, max_value=20),
)
def test_pure_repetition_compresses(body, reps):
    """A purely periodic stream must compress below its raw length
    whenever its period admits any folding."""
    s = body * reps
    nodes = fold(s)
    total_leaves = sum(n.n_leaves() for n in nodes)
    assert leaf_symbols(nodes) == s
    assert total_leaves <= len(set(body)) * len(body)  # far below len(s)
