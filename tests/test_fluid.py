"""Tests for the max–min fair fluid allocator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.fluid import INFINITE_WORK, FluidSystem, Resource, Task


def make_system(*tasks: Task) -> FluidSystem:
    system = FluidSystem()
    for task in tasks:
        system.add(task)
    system.reallocate()
    return system


class TestResource:
    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource("r", -1.0)

    def test_set_capacity(self):
        r = Resource("r", 5.0)
        r.set_capacity(2.0)
        assert r.capacity == 2.0
        with pytest.raises(SimulationError):
            r.set_capacity(-2.0)


class TestTask:
    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            Task("t", [], -1.0)

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(SimulationError):
            Task("t", [], 1.0, cap=0.0)

    def test_eta_infinite_when_stalled(self):
        t = Task("t", [], 1.0)
        assert t.eta(0.0) == math.inf


class TestSingleResource:
    def test_single_task_gets_capacity(self):
        cpu = Resource("cpu", 2.0)
        t = Task("t", [cpu], 10.0, cap=math.inf)
        make_system(t)
        assert t.rate == pytest.approx(2.0)

    def test_cap_binds_before_capacity(self):
        cpu = Resource("cpu", 2.0)
        t = Task("t", [cpu], 10.0, cap=1.0)
        make_system(t)
        assert t.rate == pytest.approx(1.0)

    def test_three_processes_on_two_cpus(self):
        """The paper's contention setup: 1 app rank + 2 competing
        processes on a dual-CPU node -> each runs at 2/3 CPU."""
        cpu = Resource("cpu", 2.0)
        tasks = [Task(f"t{i}", [cpu], INFINITE_WORK, cap=1.0) for i in range(3)]
        make_system(*tasks)
        for t in tasks:
            assert t.rate == pytest.approx(2.0 / 3.0)

    def test_two_processes_on_two_cpus_uncontended(self):
        cpu = Resource("cpu", 2.0)
        tasks = [Task(f"t{i}", [cpu], 5.0, cap=1.0) for i in range(2)]
        make_system(*tasks)
        for t in tasks:
            assert t.rate == pytest.approx(1.0)


class TestTwoResourceFlows:
    def test_flow_bottlenecked_by_min_capacity(self):
        tx = Resource("tx", 100.0)
        rx = Resource("rx", 10.0)
        f = Task("flow", [tx, rx], 1000.0)
        make_system(f)
        assert f.rate == pytest.approx(10.0)

    def test_two_flows_share_common_nic(self):
        tx = Resource("tx", 100.0)
        rx1 = Resource("rx1", 100.0)
        rx2 = Resource("rx2", 100.0)
        f1 = Task("f1", [tx, rx1], 1e6)
        f2 = Task("f2", [tx, rx2], 1e6)
        make_system(f1, f2)
        assert f1.rate == pytest.approx(50.0)
        assert f2.rate == pytest.approx(50.0)

    def test_asymmetric_bottleneck_redistributes(self):
        """One flow pinned by a slow receiver frees TX share for the
        other (true max-min, not equal split)."""
        tx = Resource("tx", 100.0)
        rx_slow = Resource("rx_slow", 10.0)
        rx_fast = Resource("rx_fast", 1000.0)
        f_slow = Task("f_slow", [tx, rx_slow], 1e6)
        f_fast = Task("f_fast", [tx, rx_fast], 1e6)
        make_system(f_slow, f_fast)
        assert f_slow.rate == pytest.approx(10.0)
        assert f_fast.rate == pytest.approx(90.0)

    def test_disjoint_components_independent(self):
        a = Resource("a", 4.0)
        b = Resource("b", 9.0)
        ta = Task("ta", [a], 1.0)
        tb = Task("tb", [b], 1.0)
        make_system(ta, tb)
        assert ta.rate == pytest.approx(4.0)
        assert tb.rate == pytest.approx(9.0)


class TestProgress:
    def test_sync_banks_work(self):
        cpu = Resource("cpu", 1.0)
        t = Task("t", [cpu], 10.0)
        system = make_system(t)
        system.sync(4.0)
        assert t.remaining == pytest.approx(6.0)

    def test_speed_multiplier_scales_progress(self):
        cpu = Resource("cpu", 1.0)
        t = Task("t", [cpu], 10.0, speed=2.0)
        system = make_system(t)
        assert t.eta(0.0) == pytest.approx(5.0)

    def test_time_regression_rejected(self):
        system = FluidSystem()
        system.sync(5.0)
        with pytest.raises(SimulationError):
            system.sync(4.0)

    def test_double_add_rejected(self):
        cpu = Resource("cpu", 1.0)
        t = Task("t", [cpu], 1.0)
        system = make_system(t)
        with pytest.raises(SimulationError):
            system.add(t)

    def test_remove_unknown_rejected(self):
        system = FluidSystem()
        t = Task("t", [Resource("r", 1.0)], 1.0)
        with pytest.raises(SimulationError):
            system.remove(t)

    def test_scoped_reallocation_matches_global(self):
        cpu0 = Resource("cpu0", 2.0)
        cpu1 = Resource("cpu1", 2.0)
        tasks = [Task(f"a{i}", [cpu0], 10.0, cap=1.0) for i in range(3)]
        tasks += [Task(f"b{i}", [cpu1], 10.0, cap=1.0) for i in range(2)]
        system = FluidSystem()
        for t in tasks:
            system.add(t)
        system.reallocate()
        global_rates = [t.rate for t in tasks]
        affected = system.reallocate_scoped([cpu0])
        assert affected == set(tasks[:3])
        assert [t.rate for t in tasks] == pytest.approx(global_rates)


# -- property-based invariants ------------------------------------------

rate_caps = st.one_of(st.just(math.inf), st.floats(min_value=0.1, max_value=5.0))


@st.composite
def fluid_instances(draw):
    n_res = draw(st.integers(min_value=1, max_value=5))
    resources = [
        Resource(f"r{i}", draw(st.floats(min_value=0.5, max_value=100.0)))
        for i in range(n_res)
    ]
    n_tasks = draw(st.integers(min_value=1, max_value=8))
    tasks = []
    for i in range(n_tasks):
        k = draw(st.integers(min_value=1, max_value=min(2, n_res)))
        idx = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_res - 1),
                min_size=k, max_size=k, unique=True,
            )
        )
        tasks.append(
            Task(f"t{i}", [resources[j] for j in idx], 100.0, cap=draw(rate_caps))
        )
    return resources, tasks


@settings(max_examples=120, deadline=None)
@given(fluid_instances())
def test_allocation_is_feasible_and_maxmin(instance):
    resources, tasks = instance
    system = FluidSystem()
    for t in tasks:
        system.add(t)
    system.reallocate()

    # Feasibility: rates non-negative, caps respected, no resource
    # oversubscribed.
    for t in tasks:
        assert t.rate >= 0
        assert t.rate <= t.cap * (1 + 1e-9)
    for r in resources:
        used = sum(t.rate for t in tasks if r in t.resources)
        assert used <= r.capacity * (1 + 1e-6) + 1e-9

    # Max-min (KKT-style): every task is pinned either by its own cap
    # or by a saturated resource.
    for t in tasks:
        if t.rate >= t.cap * (1 - 1e-9):
            continue
        saturated = False
        for r in t.resources:
            used = sum(x.rate for x in tasks if r in x.resources)
            if used >= r.capacity * (1 - 1e-6):
                saturated = True
                break
        assert saturated, f"{t} is neither capped nor bottlenecked"
