"""Tests for trace -> event-stream conversion and the dissimilarity
measure."""

from __future__ import annotations

import pytest

from repro.core.distance import (
    DimensionScales,
    dissimilarity,
    event_scales,
    event_vector,
)
from repro.core.events import ExecEvent, trace_to_streams
from repro.errors import TraceError
from repro.trace.records import Trace, TraceRecord


def make_trace():
    trace = Trace(program_name="t", scenario_name="d", nranks=1)
    trace.records[0] = [
        TraceRecord("MPI_Send", {"peer": 1, "bytes": 100, "tag": 3}, 0.5, 0.6),
        TraceRecord("MPI_Recv", {"peer": 1, "bytes": 200, "tag": 3}, 0.9, 1.0),
    ]
    trace.finish_times = [1.25]
    return trace


class TestStreams:
    def test_gap_reconstruction(self):
        streams = trace_to_streams(make_trace())
        events = streams[0].events
        assert events[0].gap == pytest.approx(0.5)   # before first call
        assert events[1].gap == pytest.approx(0.3)   # 0.9 - 0.6
        assert streams[0].tail_gap == pytest.approx(0.25)

    def test_event_fields(self):
        ev = trace_to_streams(make_trace())[0].events[0]
        assert ev.call == "MPI_Send"
        assert ev.peer == 1
        assert ev.tag == 3
        assert ev.nbytes == 100
        assert ev.duration == pytest.approx(0.1)

    def test_total_time_accounts_everything(self):
        stream = trace_to_streams(make_trace())[0]
        assert stream.total_time() == pytest.approx(1.25)

    def test_requires_finish_times(self):
        trace = Trace(program_name="t", scenario_name="d", nranks=1)
        with pytest.raises(TraceError):
            trace_to_streams(trace)

    def test_keys_differ_by_call_and_peer(self):
        a = ExecEvent("MPI_Send", 1, 0, 10, 0, 0)
        b = ExecEvent("MPI_Send", 2, 0, 10, 0, 0)
        c = ExecEvent("MPI_Isend", 1, 0, 10, 0, 0)
        assert a.key() != b.key()
        assert a.key() != c.key()


class TestDistance:
    def test_identical_events_zero(self):
        assert dissimilarity((100.0,), (100.0,), (1000.0,)) == 0.0

    def test_linear_in_size_difference(self):
        """The paper: threshold 'linearly relates to the maximum
        difference in message sizes allowed'."""
        d1 = dissimilarity((100.0,), (200.0,), (1000.0,))
        d2 = dissimilarity((100.0,), (300.0,), (1000.0,))
        assert d1 == pytest.approx(0.1)
        assert d2 == pytest.approx(0.2)

    def test_zero_scale_requires_equality(self):
        assert dissimilarity((5.0,), (5.0,), (0.0,)) == 0.0
        assert dissimilarity((5.0,), (6.0,), (0.0,)) == float("inf")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dissimilarity((1.0,), (1.0, 2.0), (1.0,))

    def test_scales_from_events(self):
        events = [
            ExecEvent("MPI_Send", 1, 0, 500, 0.2, 0),
            ExecEvent("MPI_Send", 1, 0, 100, 0.9, 0),
        ]
        scales = DimensionScales.from_events(events)
        assert scales.nbytes == 500
        assert scales.duration == pytest.approx(0.9)

    def test_vector_and_scales_align(self):
        ev = ExecEvent("MPI_Send", 1, 0, 123, 0.1, 0)
        scales = DimensionScales(nbytes=1000, duration=1.0)
        assert len(event_vector(ev)) == len(event_scales(scales))
