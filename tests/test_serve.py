"""repro.serve core: registry, service semantics, byte-identity.

The transport layer has its own suite (``test_serve_transport.py``);
chaos coverage lives in ``test_serve_chaos.py``. Everything here
drives :class:`PredictionService.handle` directly — the same entry
point the server uses — so these are the protocol-semantics tests.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.faults.resilience import RetryPolicy
from repro.obs.metrics import enabled_metrics
from repro.predict.online import (
    is_warm,
    normalize_request,
    request_key,
)
from repro.serve import LRUCache, PredictionService, SkeletonRegistry
from repro.serve.registry import split_alias
from repro.store import ArtifactStore, canonical_json

CG_S = {"bench": "cg", "klass": "S", "nprocs": 4, "target": 0.05}


@pytest.fixture
def service(tmp_path):
    return PredictionService(cache_dir=str(tmp_path / "store"))


class TestAliasGrammar:
    def test_bare_and_versioned(self):
        assert split_alias("lu.4r.k16") == ("lu.4r.k16", None)
        assert split_alias("lu.4r.k16@v3") == ("lu.4r.k16", 3)

    @pytest.mark.parametrize("bad", ["", "a b", "x@v", "x@3", "x@v1@v2"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ServeError):
            split_alias(bad)


class TestLRUCache:
    def test_hit_miss_and_eviction(self):
        lru = LRUCache(2)
        lru["a"], lru["b"] = 1, 2
        assert lru.get("a") == 1  # refreshes "a"
        lru["c"] = 3  # evicts "b", the least recent
        assert "b" not in lru and "a" in lru and "c" in lru
        assert lru.hits == 1 and lru.misses == 0
        assert lru.get("b") is None
        assert lru.misses == 1

    def test_zero_capacity_disables(self):
        lru = LRUCache(0)
        lru["a"] = 1
        assert len(lru) == 0 and lru.get("a") is None


class TestRegistry:
    def _publish(self, reg, alias, n=1):
        return reg.publish(
            alias,
            workload={"bench": "cg", "klass": "S", "nprocs": 4, "seed": n},
            target=0.05,
            trace_digest=f"t{n}",
            skeleton_digest=f"s{n}",
            app_dedicated_seconds=1.0,
        )

    def test_auto_versioning_and_latest_pointer(self, tmp_path):
        reg = SkeletonRegistry(ArtifactStore(tmp_path))
        e1 = self._publish(reg, "cg.s4", n=1)
        e2 = self._publish(reg, "cg.s4", n=2)
        assert (e1.alias, e2.alias) == ("cg.s4@v1", "cg.s4@v2")
        # The bare name follows the latest version.
        assert reg.resolve("cg.s4").trace_digest == "t2"
        assert reg.resolve("cg.s4@v1").trace_digest == "t1"

    def test_explicit_version_and_replacement(self, tmp_path):
        reg = SkeletonRegistry(ArtifactStore(tmp_path))
        self._publish(reg, "lu@v7", n=1)
        assert reg.resolve("lu").version == 7
        # Publishing an *older* explicit version must not steal latest.
        self._publish(reg, "lu@v3", n=2)
        assert reg.resolve("lu").version == 7
        assert reg.resolve("lu@v3").trace_digest == "t2"

    def test_list_is_deterministic_and_versioned_only(self, tmp_path):
        reg = SkeletonRegistry(ArtifactStore(tmp_path))
        self._publish(reg, "b.two", n=1)
        self._publish(reg, "a.one", n=2)
        self._publish(reg, "a.one", n=3)
        aliases = [e.alias for e in reg.list()]
        assert aliases == ["a.one@v1", "a.one@v2", "b.two@v1"]
        assert aliases == [e.alias for e in reg.list()]  # stable

    def test_unknown_alias_raises(self, tmp_path):
        reg = SkeletonRegistry(ArtifactStore(tmp_path))
        with pytest.raises(ServeError, match="unknown alias"):
            reg.resolve("ghost")

    def test_degraded_store_fails_publish_loudly(self, tmp_path, monkeypatch):
        """A publish the store cannot persist must raise, never
        silently vanish (the cache-bypass degrade is fine for memo
        artifacts, fatal for registry pointers)."""
        store = ArtifactStore(tmp_path)
        reg = SkeletonRegistry(store)
        monkeypatch.setattr(store, "put", lambda *a, **k: None)
        with pytest.raises(ServeError, match="doctor"):
            self._publish(reg, "cg.s4")

    def test_bundle_lru_counts_hits(self, tmp_path):
        reg = SkeletonRegistry(ArtifactStore(tmp_path), lru_size=4)
        with enabled_metrics() as m:
            assert reg.cached_bundle("d1") is None
            reg.bundles["d1"] = object()
            assert reg.cached_bundle("d1") is not None
            snap = m.snapshot()
        assert snap["serve.bundle_lru_hits"]["value"] == 1
        assert snap["serve.bundle_lru_misses"]["value"] == 1


class TestNormalize:
    def test_rejects_unknown_benchmark(self):
        with pytest.raises(ServeError, match="unknown benchmark"):
            normalize_request("quux")

    def test_rejects_bad_target_and_nprocs(self):
        with pytest.raises(ServeError):
            normalize_request("cg", target=0.0)
        with pytest.raises(ServeError):
            normalize_request("cg", nprocs=0)

    def test_rejects_unknown_scenario_at_admission(self):
        with pytest.raises(Exception, match="unknown scenario"):
            normalize_request("cg", scenario="bogus")

    def test_request_key_is_stable_identity(self):
        a = normalize_request("cg", klass="S", target=0.05)
        b = normalize_request("cg", klass="S", target=0.05)
        c = normalize_request("cg", klass="S", target=0.06)
        assert request_key(a) == request_key(b)
        assert request_key(a) != request_key(c)


class TestServiceVerbs:
    def test_ping_and_unknown_verb(self, service):
        assert service.handle("ping")["result"] == {"pong": True}
        reply = service.handle("frobnicate")
        assert not reply["ok"] and reply["code"] == 400

    def test_publish_resolve_list_roundtrip(self, service):
        reply = service.handle("publish", {"alias": "cg.s4", **CG_S})
        assert reply["ok"], reply
        entry = reply["result"]
        assert entry["alias"] == "cg.s4@v1"
        assert entry["app_dedicated_seconds"] > 0
        resolved = service.handle("resolve", {"alias": "cg.s4"})["result"]
        assert resolved["skeleton_digest"] == entry["skeleton_digest"]
        listed = service.handle("list")["result"]["entries"]
        assert [e["alias"] for e in listed] == ["cg.s4@v1"]

    def test_alias_predict_equals_explicit_workload(self, service):
        service.handle("publish", {"alias": "cg.s4", **CG_S})
        by_alias = service.handle(
            "predict", {"alias": "cg.s4", "scenario": "cpu-one-node"}
        )
        explicit = service.handle(
            "predict", {**CG_S, "scenario": "cpu-one-node"}
        )
        assert by_alias["ok"] and explicit["ok"]
        assert canonical_json(by_alias["result"]) == canonical_json(
            explicit["result"]
        )

    def test_publish_warms_the_prediction_path(self, service):
        service.handle("publish", {"alias": "cg.s4", **CG_S})
        req = normalize_request(
            "cg", "S", 4, target=0.05, scenario="cpu-one-node"
        )
        # Trace + skeleton are warm; the two skeleton runs are not yet.
        assert not is_warm(req, service.cache)
        assert service.handle("predict", {"alias": "cg.s4"})["ok"]
        assert is_warm(req, service.cache)

    def test_healthz_surfaces_store_degradation(self, service):
        assert service.handle("healthz")["result"]["status"] == "ok"
        service.store.degraded = True
        health = service.handle("healthz")["result"]
        assert health["status"] == "degraded"
        assert health["store"]["degraded"] is True

    def test_metricz_reports_serve_counters(self, service):
        with enabled_metrics():
            service.handle("ping")
            snap = service.handle("metricz")["result"]
        assert snap["serve.requests"]["labels"]["verb=ping"] == 1
        assert snap["serve.latency_seconds"]["count"] >= 1


class TestPredictSemantics:
    def test_served_prediction_is_byte_identical_to_cli(
        self, tmp_path, capsys, service
    ):
        """The acceptance invariant: offline ``predict --json`` and a
        served prediction produce the same canonical JSON bytes —
        cold, and again when answered warm from the store."""
        rc = main([
            "predict", "cg", "--klass", "S", "--target", "0.05",
            "--scenario", "cpu-one-node", "--json",
            "--cache-dir", str(tmp_path / "cli-store"),
        ])
        assert rc == 0
        cli_line = capsys.readouterr().out.strip()

        request = {**CG_S, "scenario": "cpu-one-node"}
        cold = service.handle("predict", request)
        warm = service.handle("predict", request)
        assert cold["ok"] and warm["ok"]
        assert canonical_json(cold["result"]) == cli_line
        assert canonical_json(warm["result"]) == cli_line

    def test_warm_requests_never_simulate(self, service, monkeypatch):
        import repro.predict.online as online

        request = {**CG_S, "scenario": "cpu-one-node"}
        assert service.handle("predict", request)["ok"]

        def no_sim(*a, **k):
            raise AssertionError("warm request ran a simulation")

        monkeypatch.setattr(online, "trace_program", no_sim)
        monkeypatch.setattr(online, "run_program", no_sim)
        with enabled_metrics() as m:
            warm = service.handle("predict", request)
        assert warm["ok"], warm
        assert m.snapshot()["serve.cache_hits"]["value"] == 1

    def test_identical_concurrent_requests_coalesce(self, service):
        """Single flight: with one compute in flight, an identical
        request shares its future instead of recomputing."""
        entered, release = threading.Event(), threading.Event()
        calls = []

        def slow_compute(params, cache, cluster, bundles=None):
            calls.append(1)
            entered.set()
            assert release.wait(10)
            return {"value": 42}

        service._compute = slow_compute
        request = {**CG_S, "scenario": "cpu-one-node"}
        results = []
        with enabled_metrics() as m:
            t1 = threading.Thread(
                target=lambda: results.append(service.handle("predict", request))
            )
            t2 = threading.Thread(
                target=lambda: results.append(service.handle("predict", request))
            )
            t1.start()
            assert entered.wait(10)
            t2.start()
            # Wait for the follower to attach to the in-flight future
            # before releasing the leader (no sleeps, no flakes).
            deadline = time.monotonic() + 10
            while (
                m.counter("serve.coalesced").value < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert m.counter("serve.coalesced").value == 1
            release.set()
            t1.join(10), t2.join(10)
        assert len(calls) == 1
        assert [r["result"] for r in results] == [{"value": 42}] * 2

    def test_failed_leader_fails_followers_then_clears(self, service):
        service._compute = lambda *a, **k: (_ for _ in ()).throw(
            ServeError("boom")
        )
        request = {**CG_S, "scenario": "cpu-one-node"}
        assert service.handle("predict", request)["code"] == 400
        # The in-flight slot is released: a retry runs a fresh compute.
        service._compute = lambda *a, **k: {"value": 1}
        assert service.handle("predict", request)["ok"]


class TestErrorReplies:
    def test_unknown_alias_is_a_400_with_failure_record(self, service):
        reply = service.handle("predict", {"alias": "ghost"})
        assert reply["code"] == 400
        assert reply["error"]["type"] == "ServeError"
        assert "unknown alias" in reply["failure_record"]

    def test_attempts_annotation_reaches_the_client(self, service):
        """The satellite fix: resilient_call's ``.attempts`` annotation
        must propagate into the error reply and its failure_record,
        exactly like a campaign failure record."""
        service.retry_policy = RetryPolicy(
            max_attempts=3, backoff_base=0.0
        )

        def flaky(*a, **k):
            raise OSError("injected store stall")

        service._compute = flaky
        reply = service.handle(
            "predict", {**CG_S, "scenario": "cpu-one-node", "env_seed": 5}
        )
        assert reply["code"] == 500
        assert reply["error"]["type"] == "OSError"
        assert reply["error"]["attempts"] == 3
        assert "after 3 attempt(s)" in reply["failure_record"]
        assert "[scenario cpu-one-node, seed 5]" in reply["failure_record"]

    def test_unexpected_exception_becomes_a_500_reply(self, service):
        """Bugs must not take the server down: any non-Repro exception
        still comes back as a structured 500 reply."""
        def bad(*a, **k):
            raise ZeroDivisionError("zero-length skeleton")

        service._compute = bad
        reply = service.handle(
            "predict", {**CG_S, "scenario": "cpu-one-node"}
        )
        assert reply["code"] == 500
        assert reply["error"]["type"] == "ZeroDivisionError"
        assert reply["error"]["attempts"] == 1
