"""Prediction layer tests: predictor, baselines, metrics, selection."""

from __future__ import annotations

import pytest

from repro.cluster import Scenario, cpu_one_node, paper_testbed
from repro.core import build_skeleton
from repro.errors import ReproError
from repro.predict import (
    ClassSPredictor,
    SkeletonPredictor,
    average_prediction_errors,
    select_nodes,
)
from repro.predict.metrics import Prediction, prediction_error_percent
from repro.sim import Compute, Program, run_program
from repro.trace import trace_program
from repro.workloads import get_program
from repro.workloads.synthetic import bsp_allreduce


class TestMetrics:
    def test_percent_error(self):
        assert prediction_error_percent(120.0, 100.0) == pytest.approx(20.0)

    def test_prediction_record(self):
        p = Prediction(
            program_name="x", scenario_name="s", method="skeleton",
            predicted_seconds=110.0, probe_seconds=1.1, scaling_ratio=100.0,
        )
        assert p.error_percent(100.0) == pytest.approx(10.0)


class TestSkeletonPredictor:
    def test_measured_ratio(self, cluster):
        prog = bsp_allreduce(supersteps=40)
        trace, ded = trace_program(prog, cluster)
        bundle = build_skeleton(trace, scaling_factor=10.0, warn=False)
        predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
        assert predictor.ratio == pytest.approx(
            ded.elapsed / predictor.skeleton_dedicated_seconds
        )
        # Ratio should be near the requested K.
        assert predictor.ratio == pytest.approx(10.0, rel=0.3)

    def test_prediction_accuracy_steady_scenario(self, cluster):
        """Under a steady scenario the prediction is near exact."""
        prog = bsp_allreduce(supersteps=40)
        trace, ded = trace_program(prog, cluster)
        bundle = build_skeleton(trace, scaling_factor=8.0, warn=False)
        predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
        scen = cpu_one_node(steady=True)
        prediction = predictor.predict(scen)
        actual = run_program(prog, cluster, scen).elapsed
        assert prediction.error_percent(actual) < 5.0

    def test_rejects_nonpositive_app_time(self, cluster):
        prog = bsp_allreduce(supersteps=4)
        with pytest.raises(ReproError):
            SkeletonPredictor(prog, 0.0, cluster)

    def test_probe_seed_varies_sample(self, cluster):
        # Long enough that the probe spans several load bursts.
        prog = bsp_allreduce(supersteps=300, compute_secs=0.01)
        trace, ded = trace_program(prog, cluster)
        bundle = build_skeleton(trace, scaling_factor=2.0, warn=False)
        predictor = SkeletonPredictor(bundle.program, ded.elapsed, cluster)
        scen = cpu_one_node()  # stochastic
        t1 = predictor.probe(scen, seed=1)
        t2 = predictor.probe(scen, seed=2)
        assert t1 != t2


class TestBaselines:
    def test_average_prediction_exact_for_uniform_slowdown(self):
        ded = {"a": 10.0, "b": 20.0}
        scen = {"a": 15.0, "b": 30.0}
        errs = average_prediction_errors(ded, scen)
        assert errs["a"] == pytest.approx(0.0)
        assert errs["b"] == pytest.approx(0.0)

    def test_average_prediction_errs_for_mixed_slowdowns(self):
        ded = {"a": 10.0, "b": 10.0}
        scen = {"a": 10.0, "b": 30.0}  # slowdowns 1 and 3, mean 2
        errs = average_prediction_errors(ded, scen)
        assert errs["a"] == pytest.approx(100.0)
        assert errs["b"] == pytest.approx(100.0 / 3.0)

    def test_mismatched_suites_rejected(self):
        with pytest.raises(ReproError):
            average_prediction_errors({"a": 1.0}, {"b": 1.0})
        with pytest.raises(ReproError):
            average_prediction_errors({}, {})

    def test_class_s_predictor_runs(self, cluster):
        app = get_program("cg", "S", 4)
        _, ded = trace_program(app, cluster)
        # Use an even smaller "class" stand-in: the same program as its
        # own baseline probe (ratio 1) — mechanics identical.
        predictor = ClassSPredictor(app, ded.elapsed, cluster)
        assert predictor.method == "class-s"
        assert predictor.ratio == pytest.approx(1.0, rel=0.05)


class TestSelection:
    def test_prefers_unloaded_nodes(self):
        """With competing load on nodes 0-1, a 2-rank skeleton placed
        on nodes 2-3 must win."""
        cluster = paper_testbed()

        def gen(rank, size):
            yield Compute(0.5)

        skeleton = Program("skel", 2, gen)
        scen = Scenario(name="busy01", competing={0: 2, 1: 2})
        result = select_nodes(
            skeleton,
            cluster,
            candidates=[(0, 1), (2, 3)],
            scenario=scen,
            labels=["loaded", "free"],
        )
        assert result.best.label == "free"
        assert result.ranking[0].skeleton_seconds <= result.ranking[1].skeleton_seconds

    def test_empty_candidates_rejected(self, cluster):
        def gen(rank, size):
            yield Compute(0.1)

        with pytest.raises(ReproError):
            select_nodes(Program("s", 2, gen), cluster, candidates=[])
