"""Synthetic workload tests."""

from __future__ import annotations

import pytest

from repro.cluster import paper_testbed
from repro.errors import WorkloadError
from repro.sim import run_program
from repro.trace import trace_program
from repro.workloads.synthetic import (
    bsp_allreduce,
    master_worker,
    ring_pipeline,
    stencil2d,
)


class TestStencil:
    def test_runs(self):
        cluster = paper_testbed()
        r = run_program(stencil2d(iterations=5), cluster)
        # 5 iterations x 10ms compute plus halo time.
        assert r.elapsed > 0.05

    def test_jitter_changes_times(self):
        cluster = paper_testbed()
        a = run_program(stencil2d(iterations=5, jitter=0.2, seed=1), cluster)
        b = run_program(stencil2d(iterations=5, jitter=0.2, seed=2), cluster)
        assert a.elapsed != b.elapsed

    def test_trace_has_nonblocking_pattern(self):
        cluster = paper_testbed()
        trace, _ = trace_program(stencil2d(iterations=3), cluster)
        calls = {r.call for r in trace.rank_records(0)}
        assert {"MPI_Irecv", "MPI_Isend", "MPI_Waitall"} <= calls


class TestRing:
    def test_serialises_computation(self):
        cluster = paper_testbed()
        r = run_program(ring_pipeline(rounds=5, compute_secs=0.01), cluster)
        # Token passes serially: >= rounds * nprocs * compute.
        assert r.elapsed >= 5 * 4 * 0.01

    def test_requires_two_ranks(self):
        with pytest.raises(WorkloadError):
            ring_pipeline(nprocs=1)


class TestMasterWorker:
    def test_completes(self):
        cluster = paper_testbed()
        r = run_program(master_worker(items_per_worker=5), cluster)
        assert r.elapsed > 0

    def test_worker_count_scaling_reduces_time(self):
        cluster = paper_testbed(8)
        few = run_program(
            master_worker(nprocs=2, items_per_worker=30), cluster
        ).elapsed
        many = run_program(
            master_worker(nprocs=7, items_per_worker=30 * 1 // 6 + 5), cluster
        ).elapsed
        assert many < few

    def test_requires_two_ranks(self):
        with pytest.raises(WorkloadError):
            master_worker(nprocs=1)


class TestBsp:
    def test_superstep_time(self):
        cluster = paper_testbed()
        r = run_program(bsp_allreduce(supersteps=10, compute_secs=0.01), cluster)
        assert r.elapsed >= 0.1


class TestGridReductions:
    def test_runs_and_skeletonises(self):
        from repro.core import build_skeleton
        from repro.trace import trace_program
        from repro.workloads.synthetic import grid_reductions

        cluster = paper_testbed()
        prog = grid_reductions(iterations=16)
        trace, ded = trace_program(prog, cluster)
        bundle = build_skeleton(trace, scaling_factor=4.0, warn=False)
        skel = run_program(bundle.program, cluster)
        import pytest as _pytest

        assert skel.elapsed == _pytest.approx(ded.elapsed / 4.0, rel=0.3)

    def test_requires_2d_grid(self):
        from repro.workloads.synthetic import grid_reductions

        with pytest.raises(WorkloadError):
            grid_reductions(nprocs=2)
