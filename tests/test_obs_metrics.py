"""Metrics registry unit tests and instrumentation integration tests."""

from __future__ import annotations

import json

import pytest

from repro.cluster import paper_testbed
from repro.core import build_skeleton, compress_trace
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    enabled_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.metrics import render_metrics
from repro.sim import run_program


class TestCounter:
    def test_inc_and_value(self):
        m = MetricsRegistry()
        c = m.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_are_independent(self):
        c = MetricsRegistry().counter("calls")
        c.labels(call="MPI_Send").inc(3)
        c.labels(call="MPI_Recv").inc(1)
        c.labels(call="MPI_Send").inc()
        snap = c.snapshot()
        assert snap["labels"]["call=MPI_Send"] == 4
        assert snap["labels"]["call=MPI_Recv"] == 1

    def test_same_name_same_object(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")

    def test_type_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13


class TestHistogram:
    def test_buckets_cumulative(self):
        h = MetricsRegistry().histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"1": 1, "10": 2, "100": 3}
        assert snap["sum"] == pytest.approx(555.5)
        assert snap["min"] == 0.5 and snap["max"] == 500
        assert h.mean == pytest.approx(555.5 / 4)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())

    def test_timer_records_wall_time(self):
        m = MetricsRegistry()
        with m.timer("stage") as t:
            sum(range(1000))
        assert t.elapsed >= 0
        assert m["stage_seconds"].count == 1


class TestDisabledRegistry:
    def test_disabled_returns_null_instrument(self):
        m = MetricsRegistry(enabled=False)
        c = m.counter("x")
        c.inc()
        c.labels(a=1).inc(5)
        assert c.value == 0.0
        assert m.snapshot() == {}

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1)
        assert NULL_REGISTRY.snapshot() == {}

    def test_default_active_registry_is_disabled(self):
        assert not get_metrics().enabled


class TestGlobalRegistry:
    def test_set_and_restore(self):
        mine = MetricsRegistry()
        prev = set_metrics(mine)
        try:
            assert get_metrics() is mine
        finally:
            set_metrics(prev)
        assert get_metrics() is prev

    def test_set_none_restores_null(self):
        prev = set_metrics(MetricsRegistry())
        set_metrics(None)
        assert get_metrics() is NULL_REGISTRY
        set_metrics(prev)

    def test_enabled_metrics_scope(self):
        before = get_metrics()
        with enabled_metrics() as m:
            assert get_metrics() is m
            assert m.enabled
        assert get_metrics() is before


class TestSerialisation:
    def test_json_round_trip(self):
        m = MetricsRegistry()
        m.counter("a").inc(2)
        m.gauge("b").set(1.5)
        m.histogram("c", buckets=(1,)).observe(0.5)
        data = json.loads(m.to_json())
        assert data["a"]["value"] == 2
        assert data["b"]["value"] == 1.5
        assert data["c"]["count"] == 1

    def test_write(self, tmp_path):
        m = MetricsRegistry()
        m.counter("a").inc()
        path = tmp_path / "m.json"
        m.write(str(path))
        assert json.loads(path.read_text())["a"]["value"] == 1

    def test_render_metrics(self):
        m = MetricsRegistry()
        m.counter("engine.events").inc(10)
        m.histogram("stage_seconds").observe(0.5)
        m.histogram("depth", buckets=(1, 2)).observe(1)
        text = render_metrics(m)
        assert "engine.events" in text
        assert "stage timings" in text
        assert "depth" in text

    def test_render_empty(self):
        assert render_metrics(MetricsRegistry()) == "no metrics recorded"


class TestEngineInstrumentation:
    def test_run_reports_counters(self, cluster, pingpong_program):
        with enabled_metrics() as m:
            result = run_program(pingpong_program, cluster)
        assert m["engine.runs"].value == 1
        assert m["engine.messages"].value == result.n_messages
        assert m["engine.events"].value == result.n_events
        assert m["engine.run_wall_seconds"].count == 1
        # Every message either matched a posted receive or was queued
        # unexpected — the two counters partition the message count.
        matched = m["match.sends_matched"].value
        unexpected = m["match.sends_unexpected"].value
        assert matched + unexpected == result.n_messages
        assert m["fluid.resettles"].value > 0

    def test_metrics_do_not_change_simulation(self, cluster, pingpong_program):
        baseline = run_program(pingpong_program, cluster)
        with enabled_metrics():
            instrumented = run_program(pingpong_program, cluster)
        assert instrumented == baseline


class TestConstructionInstrumentation:
    def test_compress_reports_counters(self, cg_s_trace):
        trace, _ = cg_s_trace
        with enabled_metrics() as m:
            sig = compress_trace(trace, target_ratio=2.0)
        assert m["construct.compressions"].value == 1
        assert m["construct.threshold_iterations"].value >= 1
        created = m["construct.clusters_created"].value
        merges = m["construct.cluster_merges"].value
        # Every clustered event either opened a cluster or was absorbed.
        # Coordinated collectives are assigned once per occurrence (not
        # per rank), so each search pass assigns at most trace_events.
        iterations = m["construct.threshold_iterations"].value
        assert 0 < created + merges <= iterations * sig.trace_events
        assert m["construct.fold_attempts"].value > 0
        assert m["construct.compress_seconds"].count == 1
        assert m["construct.last_compression_ratio"].value == pytest.approx(
            sig.compression_ratio
        )

    def test_build_skeleton_reports_stage_time(self, cg_s_trace):
        trace, _ = cg_s_trace
        with enabled_metrics() as m:
            build_skeleton(trace, target_seconds=0.05)
        assert m["construct.skeletons_built"].value == 1
        assert m["construct.build_skeleton_seconds"].count == 1


@pytest.mark.tier2
class TestCampaignInstrumentation:
    def test_runner_counts_runs(self, tmp_path, capsys):
        from repro.experiments import ExperimentConfig, run_experiments

        cfg = ExperimentConfig(
            benchmarks=("cg",), klass="S", skeleton_targets=(0.05,)
        )
        with enabled_metrics() as m:
            run_experiments(cfg, cache_dir=str(tmp_path), verbose=True)
        out = capsys.readouterr().out
        # Structured per-run lines: id, scenario, seed, durations, ETA.
        assert "id=cg.S/trace scenario=dedicated seed=0" in out
        assert "eta=" in out
        total = int(m["campaign.runs"].value)
        assert f"run {total}/{total} " in out
        assert m["campaign.run_wall_seconds"].count == total

    def test_runner_quiet_by_default(self, tmp_path, capsys):
        from repro.experiments import ExperimentConfig, run_experiments

        cfg = ExperimentConfig(
            benchmarks=("cg",), klass="S", skeleton_targets=(0.05,)
        )
        run_experiments(cfg, cache_dir=str(tmp_path))
        assert capsys.readouterr().out == ""
