"""Statistical sanity of the stochastic contention models."""

from __future__ import annotations

import pytest

from repro.cluster import Scenario, paper_testbed
from repro.cluster.contention import LoadModel, TrafficModel
from repro.sim import Compute, Program, Recv, Send, run_program


class TestLoadModelStatistics:
    def test_slowdown_within_duty_bounds(self):
        """Over a long run, a bursty 2-process competitor slows a rank
        by a factor between 1 (all idle) and 1.5 (always busy), with
        the expected value set by the duty cycle."""
        cluster = paper_testbed()
        model = LoadModel()  # busy (0.4, 1.8), idle (0.0, 0.45)
        scen = Scenario(name="b", competing={0: 2}, load_model=model)

        def gen(rank, size):
            for _ in range(4000):
                yield Compute(0.01)  # 40 s of work

        elapsed = run_program(Program("w", 1, gen), cluster, scen, seed=7).elapsed
        slowdown = elapsed / 40.0
        assert 1.0 < slowdown < 1.5
        # Duty cycle = E[busy] / (E[busy]+E[idle]) = 1.1/1.325 ~ 0.83;
        # with both competitors busy the rank gets 2/3. Expected
        # slowdown sits well inside (1.2, 1.45).
        assert 1.2 < slowdown < 1.45

    def test_long_run_averages_converge_across_seeds(self):
        """Two long runs under different seeds see nearly the same
        average contention (ergodicity), unlike short runs."""
        cluster = paper_testbed()
        scen = Scenario(name="b", competing={0: 2}, load_model=LoadModel())

        def make(n):
            def gen(rank, size):
                for _ in range(n):
                    yield Compute(0.01)

            return Program("w", 1, gen)

        long_a = run_program(make(6000), cluster, scen, seed=1).elapsed
        long_b = run_program(make(6000), cluster, scen, seed=2).elapsed
        short_a = run_program(make(60), cluster, scen, seed=1).elapsed
        short_b = run_program(make(60), cluster, scen, seed=2).elapsed
        long_spread = abs(long_a - long_b) / long_a
        short_spread = abs(short_a - short_b) / short_a
        assert long_spread < 0.02
        assert short_spread > long_spread


class TestTrafficModelStatistics:
    def test_mean_bandwidth_preserved(self):
        """The fluctuating cap is symmetric around the base: a long
        transfer takes roughly base-rate time."""
        cluster = paper_testbed()
        cap = 1.25e6
        scen = Scenario(
            name="t", nic_caps={0: cap}, traffic_model=TrafficModel()
        )

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=50_000_000, tag=1)  # 40 s at cap
            else:
                yield Recv(source=0, nbytes=50_000_000, tag=1)

        elapsed = run_program(Program("t", 2, gen), cluster, scen, seed=3).elapsed
        nominal = 50_000_000 / cap
        # Harmonic-mean effects bias slightly slow; allow 25%.
        assert elapsed == pytest.approx(nominal, rel=0.25)

    def test_fluctuation_bounded_by_swing(self):
        """No transfer can beat the best-case capacity (1+swing)."""
        cluster = paper_testbed()
        cap = 1.25e6
        model = TrafficModel()
        scen = Scenario(name="t", nic_caps={0: cap}, traffic_model=model)

        def gen(rank, size):
            if rank == 0:
                yield Send(dest=1, nbytes=10_000_000, tag=1)
            else:
                yield Recv(source=0, nbytes=10_000_000, tag=1)

        best_possible = 10_000_000 / (cap * (1 + model.swing))
        for seed in range(5):
            elapsed = run_program(
                Program("t", 2, gen), cluster, scen, seed=seed
            ).elapsed
            assert elapsed >= best_possible * 0.99
