"""ServiceClient transport error paths against a scripted socket peer.

The client promises: transport trouble raises :class:`ServeError`
with a message naming the failure; protocol-level failures come back
as replies. These tests script the peer byte-for-byte (accept-once
servers on an OS port) so each failure mode is exercised exactly.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import ServeError
from repro.serve import ServiceClient


class OneShotPeer:
    """Accept one connection, read one line, send ``response`` bytes,
    close. Captures the request line for assertions."""

    def __init__(self, response: bytes, read_request: bool = True):
        self.response = response
        self.read_request = read_request
        self.request_line: bytes = b""
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self) -> None:
        conn, _ = self._sock.accept()
        with conn:
            if self.read_request:
                fh = conn.makefile("rb")
                self.request_line = fh.readline()
            if self.response:
                conn.sendall(self.response)

    def __enter__(self) -> "OneShotPeer":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._thread.join(5)
        self._sock.close()


def _client(port: int) -> ServiceClient:
    return ServiceClient(port=port, timeout=5.0)


class TestTransportErrors:
    def test_connection_refused(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServeError, match="cannot reach"):
            _client(free_port).call("ping")

    def test_close_without_reply(self):
        with OneShotPeer(b"") as peer:
            with pytest.raises(ServeError, match="without replying"):
                _client(peer.port).call("ping")

    def test_malformed_reply_line(self):
        with OneShotPeer(b"this is not json\n") as peer:
            with pytest.raises(ServeError, match="malformed reply"):
                _client(peer.port).call("ping")

    def test_reply_not_an_object(self):
        with OneShotPeer(b"[1, 2, 3]\n") as peer:
            with pytest.raises(ServeError, match="not an object"):
                _client(peer.port).call("ping")

    def test_mid_reply_disconnect(self):
        # A reply truncated mid-JSON (no newline, connection closed):
        # readline returns the partial bytes, which fail to parse.
        with OneShotPeer(b'{"ok": true, "resu') as peer:
            with pytest.raises(ServeError, match="malformed reply"):
                _client(peer.port).call("ping")

    def test_well_formed_reply_passes_through(self):
        reply = {"id": None, "ok": True, "code": 200, "result": {}}
        wire = json.dumps(reply).encode("utf-8") + b"\n"
        with OneShotPeer(wire) as peer:
            assert _client(peer.port).call("ping") == reply


class TestRequestEncoding:
    def _roundtrip(self, **kwargs) -> dict:
        wire = b'{"id": null, "ok": true, "code": 200, "result": {}}\n'
        with OneShotPeer(wire) as peer:
            _client(peer.port).call("predict", {"alias": "a"}, **kwargs)
            return json.loads(peer.request_line)

    def test_minimal_request_has_no_optional_fields(self):
        request = self._roundtrip()
        assert request == {"verb": "predict", "params": {"alias": "a"}}

    def test_deadline_ms_passthrough(self):
        request = self._roundtrip(deadline_ms=1500)
        assert request["deadline_ms"] == 1500

    def test_request_id_passthrough(self):
        request = self._roundtrip(request_id="req-7")
        assert request["id"] == "req-7"

    def test_trace_context_passthrough(self):
        ctx = {"trace_id": "t", "span_id": "s"}
        request = self._roundtrip(trace=ctx)
        assert request["trace"] == ctx
