"""SP — Scalar Pentadiagonal solver benchmark model.

Same ADI skeleton as BT (:mod:`repro.workloads.adi`) but the solves
carry scalar pentadiagonal systems — roughly 10 doubles per face cell
(≈80 bytes) — and the code runs twice as many, cheaper time steps.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.program import Program
from repro.workloads.adi import build_adi
from repro.workloads.base import WorkloadSpec, grid_2d, register
from repro.workloads.npbdata import SP_FLOPS_PER_CELL, problem

#: Scalar pentadiagonal data per face cell, in bytes.
_SP_FACE_CELL_BYTES = 80


@register("sp")
def build(spec: WorkloadSpec) -> Program:
    rows, cols = grid_2d(spec.nprocs)
    if rows * cols != spec.nprocs:
        raise WorkloadError("SP requires a factorable process count")
    params = problem("sp", spec.klass)
    return build_adi(spec, params, SP_FLOPS_PER_CELL, _SP_FACE_CELL_BYTES)
