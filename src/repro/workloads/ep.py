"""EP — Embarrassingly Parallel benchmark model (beyond the paper's
six, for suite completeness).

NPB EP generates pairs of Gaussian deviates with no communication at
all until three small ``MPI_Allreduce`` calls collect the counts at
the end. It is the degenerate case for performance skeletons: the
trace has almost no structure, the dominant "sequence" is one long
compute phase, and prediction reduces to pure CPU-share scaling — a
useful boundary test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.sim.ops import Allreduce, Barrier, Op
from repro.sim.program import Program
from repro.workloads.base import ComputeModel, WorkloadSpec, compute_seconds, register


@dataclass(frozen=True)
class EPParams:
    log2_pairs: int  # M: 2^M random pairs


EP_TABLE: dict[str, EPParams] = {
    "S": EPParams(24),
    "W": EPParams(25),
    "A": EPParams(28),
    "B": EPParams(30),
}

#: flops per generated pair (LCG + acceptance test + accumulation).
_FLOPS_PER_PAIR = 40.0

#: The compute is emitted in chunks (the code's k-loop blocks), giving
#: the tracer's gap reconstruction something realistic to see.
_CHUNKS = 16


def _rank_gen(spec: WorkloadSpec, rank: int, size: int) -> Iterator[Op]:
    try:
        params = EP_TABLE[spec.klass]
    except KeyError:
        raise WorkloadError(f"EP has no class {spec.klass!r}") from None
    cm = ComputeModel(spec, rank)

    pairs = (1 << params.log2_pairs) // size
    total_secs = compute_seconds(pairs * _FLOPS_PER_PAIR)

    yield Barrier()
    for _chunk in range(_CHUNKS):
        yield cm.compute(total_secs / _CHUNKS)
        # The chunk boundary is invisible to MPI; emit a zero-byte
        # progress reduction only at the very end (below).
    # sx, sy, and the 10 annulus counts.
    yield Allreduce(nbytes=8)
    yield Allreduce(nbytes=8)
    yield Allreduce(nbytes=80)
    yield Barrier()


@register("ep")
def build(spec: WorkloadSpec) -> Program:
    if spec.nprocs < 1:
        raise WorkloadError("EP needs at least one rank")
    return Program(
        name=f"ep.{spec.klass}.{spec.nprocs}",
        nranks=spec.nprocs,
        make=lambda rank, size: _rank_gen(spec, rank, size),
    )
