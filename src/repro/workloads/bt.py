"""BT — Block Tridiagonal solver benchmark model.

See :mod:`repro.workloads.adi` for the shared ADI structure. BT's
directional solves move 5×5 block matrices plus a 5-vector per face
cell (≈240 bytes), making its pipeline messages the largest of the
suite (≈1.2 MB per hop for Class B on 2×2), and it is the most
compute-heavy benchmark (the paper's Class B range tops out near
900 s with BT).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.program import Program
from repro.workloads.adi import build_adi
from repro.workloads.base import WorkloadSpec, grid_2d, register
from repro.workloads.npbdata import BT_FLOPS_PER_CELL, problem

#: (5x5 block + 5-vector) doubles per face cell.
_BT_FACE_CELL_BYTES = 240


@register("bt")
def build(spec: WorkloadSpec) -> Program:
    rows, cols = grid_2d(spec.nprocs)
    if rows * cols != spec.nprocs or abs(rows - cols) > 1 and rows != cols:
        raise WorkloadError("BT requires a (near-)square process count")
    params = problem("bt", spec.klass)
    return build_adi(spec, params, BT_FLOPS_PER_CELL, _BT_FACE_CELL_BYTES)
