"""CG — Conjugate Gradient benchmark model.

Structure follows NPB 2.x CG: processes form a 2D grid; each outer
iteration runs ``inner_iters`` conjugate-gradient steps, each step
being a sparse matrix–vector product followed by (a) partial-sum
exchanges across the process row, (b) a vector exchange with the
transpose partner, and (c) two scalar dot-product reductions done with
explicit send/recv pairs along the row (CG does not use MPI
collectives). For the 2×2 Class B layout the vector exchanges are
na/2 doubles = 300 KB, matching the real code's dominant messages.

The sparse matvec is memory-bound; its effective rate is
``CG_MATVEC_EFFICIENCY`` of the reference flop rate (see npbdata).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import WorkloadError
from repro.sim.ops import Barrier, Bcast, Op, Sendrecv
from repro.sim.program import Program
from repro.workloads.base import (
    ComputeModel,
    WorkloadSpec,
    compute_seconds,
    grid_2d,
    register,
)
from repro.workloads.npbdata import CG_MATVEC_EFFICIENCY, problem

_TAG_SUM = 1
_TAG_TRANSPOSE = 2
_TAG_DOT = 3


def _rank_gen(spec: WorkloadSpec, rank: int, size: int) -> Iterator[Op]:
    params = problem("cg", spec.klass)
    rows, cols = grid_2d(size)
    row, col = divmod(rank, cols)
    cm = ComputeModel(spec, rank)

    chunk_doubles = max(1, params.na // cols)
    chunk_bytes = 8 * chunk_doubles
    matvec_flops = 2.0 * params.nnz / size
    matvec_secs = compute_seconds(matvec_flops, CG_MATVEC_EFFICIENCY)
    vector_secs = compute_seconds(10.0 * params.na / size, 0.5)
    dot_secs = compute_seconds(2.0 * params.na / size, 0.5)

    # Row-internal reduction partners (recursive halving over columns).
    def row_steps() -> list[int]:
        steps, step = [], 1
        while step < cols:
            steps.append(row * cols + (col ^ step))
            step <<= 1
        return steps

    # Transpose partner for the vector exchange (square grids transpose
    # the coordinates; otherwise pair with the diametrically opposite
    # rank, which preserves the "one large exchange" structure).
    if rows == cols:
        transpose = col * cols + row
    else:
        transpose = (rank + size // 2) % size

    def row_sum(nbytes: int, tag: int) -> Iterator[Op]:
        for partner in row_steps():
            yield Sendrecv(
                dest=partner, send_nbytes=nbytes, send_tag=tag,
                source=partner, recv_tag=tag,
            )

    def cg_step() -> Iterator[Op]:
        yield cm.compute(matvec_secs)                 # q = A.p (local part)
        yield from row_sum(chunk_bytes, _TAG_SUM)     # sum partials over row
        if transpose != rank:
            yield Sendrecv(
                dest=transpose, send_nbytes=chunk_bytes,
                send_tag=_TAG_TRANSPOSE, source=transpose,
                recv_tag=_TAG_TRANSPOSE,
            )
        yield cm.compute(dot_secs)                    # d = p.q
        yield from row_sum(8, _TAG_DOT)
        yield cm.compute(vector_secs)                 # z,r,p updates
        yield cm.compute(dot_secs)                    # rho = r.r
        yield from row_sum(8, _TAG_DOT)

    # -- program body ---------------------------------------------------
    # makea: matrix generation, then parameter broadcast + barrier.
    yield cm.compute(3.0 * matvec_secs)
    yield Bcast(root=0, nbytes=16)
    yield Barrier()

    for _outer in range(params.niter):
        for _inner in range(params.inner_iters):
            yield from cg_step()
        # zeta norm: one more matvec-lite plus two reductions.
        yield cm.compute(0.5 * matvec_secs)
        yield from row_sum(8, _TAG_DOT)
        yield from row_sum(8, _TAG_DOT)

    yield Barrier()


@register("cg")
def build(spec: WorkloadSpec) -> Program:
    if spec.nprocs & (spec.nprocs - 1):
        raise WorkloadError("CG requires a power-of-two process count")
    return Program(
        name=f"cg.{spec.klass}.{spec.nprocs}",
        nranks=spec.nprocs,
        make=lambda rank, size: _rank_gen(spec, rank, size),
    )
