"""NAS Parallel Benchmark problem-class parameter tables.

Grid sizes, iteration counts, and problem scales follow the NPB 2.x
specifications (Bailey et al., NAS TR 95-020). Per-point/per-key work
coefficients are calibration constants chosen so the simulated Class B
benchmarks on the 4-node reference testbed land in the paper's reported
30–900 s range; they are documented per benchmark and scale consistently
across classes, so Class S programs come out well under a second, as
the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

#: Problem classes implemented (paper uses S as a baseline and B for
#: the main experiments; W, A, and C are provided for completeness).
CLASSES = ("S", "W", "A", "B", "C")


@dataclass(frozen=True)
class CGParams:
    na: int          # matrix order
    nonzer: int      # nonzeros per row parameter
    niter: int       # outer iterations
    shift: float
    inner_iters: int = 25  # CG iterations inside cgitmax

    @property
    def nnz(self) -> int:
        """Approximate matrix nonzero count (na rows of ~nonzer*11)."""
        return self.na * self.nonzer * 11


@dataclass(frozen=True)
class ISParams:
    total_keys: int  # N
    max_key: int
    niter: int = 10
    key_bytes: int = 4
    n_buckets: int = 1024


@dataclass(frozen=True)
class GridParams:
    """Shared shape for the structured-grid codes (BT, SP, LU, MG)."""

    nx: int
    ny: int
    nz: int
    niter: int


CG_TABLE: dict[str, CGParams] = {
    "S": CGParams(na=1400, nonzer=7, niter=15, shift=10.0),
    "W": CGParams(na=7000, nonzer=8, niter=15, shift=12.0),
    "A": CGParams(na=14000, nonzer=11, niter=15, shift=20.0),
    "B": CGParams(na=75000, nonzer=13, niter=75, shift=60.0),
    "C": CGParams(na=150000, nonzer=15, niter=75, shift=110.0),
}

IS_TABLE: dict[str, ISParams] = {
    "S": ISParams(total_keys=1 << 16, max_key=1 << 11),
    "W": ISParams(total_keys=1 << 20, max_key=1 << 16),
    "A": ISParams(total_keys=1 << 23, max_key=1 << 19),
    "B": ISParams(total_keys=1 << 25, max_key=1 << 21),
    "C": ISParams(total_keys=1 << 27, max_key=1 << 23),
}

BT_TABLE: dict[str, GridParams] = {
    "S": GridParams(12, 12, 12, 60),
    "W": GridParams(24, 24, 24, 200),
    "A": GridParams(64, 64, 64, 200),
    "B": GridParams(102, 102, 102, 200),
    "C": GridParams(162, 162, 162, 200),
}

SP_TABLE: dict[str, GridParams] = {
    "S": GridParams(12, 12, 12, 100),
    "W": GridParams(36, 36, 36, 400),
    "A": GridParams(64, 64, 64, 400),
    "B": GridParams(102, 102, 102, 400),
    "C": GridParams(162, 162, 162, 400),
}

LU_TABLE: dict[str, GridParams] = {
    "S": GridParams(12, 12, 12, 50),
    "W": GridParams(33, 33, 33, 300),
    "A": GridParams(64, 64, 64, 250),
    "B": GridParams(102, 102, 102, 250),
    "C": GridParams(162, 162, 162, 250),
}

MG_TABLE: dict[str, GridParams] = {
    # niter here is the number of V-cycles (nit in the NPB spec).
    "S": GridParams(32, 32, 32, 4),
    "W": GridParams(128, 128, 128, 4),
    "A": GridParams(256, 256, 256, 4),
    "B": GridParams(256, 256, 256, 20),
    "C": GridParams(512, 512, 512, 20),
}

_TABLES = {
    "cg": CG_TABLE,
    "is": IS_TABLE,
    "bt": BT_TABLE,
    "sp": SP_TABLE,
    "lu": LU_TABLE,
    "mg": MG_TABLE,
}


def problem(benchmark: str, klass: str):
    """Parameter record for a benchmark/class pair."""
    benchmark = benchmark.lower()
    klass = klass.upper()
    try:
        table = _TABLES[benchmark]
    except KeyError:
        raise WorkloadError(f"unknown benchmark {benchmark!r}") from None
    try:
        return table[klass]
    except KeyError:
        raise WorkloadError(
            f"benchmark {benchmark!r} has no class {klass!r} "
            f"(available: {sorted(table)})"
        ) from None


# ----------------------------------------------------------------------
# Work-rate calibration constants (reference CPU = 1.7 GHz Xeon class).
# ----------------------------------------------------------------------

# The constants below are calibrated so that the simulated Class B
# benchmarks on the 4-node testbed match the per-iteration times the
# paper reports implicitly through Figure 4 (one iteration of the
# dominant sequence: BT ~1.0 s, CG ~0.13 s, IS ~3 s, LU ~1.97 s,
# SP ~0.34 s), which also puts total runtimes inside the paper's
# 30–900 s Class B range.

#: BT: flops per grid point per time step (compute_rhs + three
#: block-tridiagonal sweeps).
BT_FLOPS_PER_CELL = 1400.0
#: SP: flops per grid point per time step (scalar pentadiagonal sweeps).
SP_FLOPS_PER_CELL = 470.0
#: LU: flops per grid point per SSOR iteration, split between the two
#: wavefront sweeps (jacld/blts, jacu/buts) and the RHS update.
LU_FLOPS_PER_CELL = 2800.0
LU_SWEEP_SHARE = 0.8  # fraction of per-iteration flops in the sweeps
#: MG: flops per finest-grid point per V-cycle (smooth+resid+interp).
MG_FLOPS_PER_CELL = 115.0
#: CG: effective matvec rate is memory-bound, well below peak; the
#: sparse matvec runs at this fraction of the reference flop rate.
CG_MATVEC_EFFICIENCY = 0.115
#: IS: seconds of (memory-bound) key handling per key per iteration;
#: covers bucket counting plus local ranking passes.
IS_SECONDS_PER_KEY = 2.9e-7
