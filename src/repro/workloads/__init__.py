"""Model implementations of the NAS Parallel Benchmarks used in the
paper's evaluation (BT, CG, IS, LU, MG, SP), plus synthetic workloads
for examples and tests.

These are *communication-and-computation models*, not numerical ports:
each issues the communication pattern of the corresponding NPB 2.x code
(message partners, sizes derived from the published problem-class
parameters and domain decompositions, collective usage, iteration
structure) interleaved with compute phases whose durations follow the
published operation counts on a reference CPU. Skeleton construction
consumes only the execution trace, so this is exactly the fidelity the
framework sees from a real benchmark run.
"""

from repro.workloads.base import (
    REFERENCE_FLOPS,
    WorkloadSpec,
    available_benchmarks,
    compute_seconds,
    get_program,
    grid_2d,
)
from repro.workloads.npbdata import CLASSES, problem
from repro.workloads import bt, cg, ep, ft, is_, lu, mg, sp, synthetic

__all__ = [
    "REFERENCE_FLOPS",
    "WorkloadSpec",
    "available_benchmarks",
    "compute_seconds",
    "get_program",
    "grid_2d",
    "CLASSES",
    "problem",
    "bt",
    "cg",
    "ep",
    "ft",
    "is_",
    "lu",
    "mg",
    "sp",
    "synthetic",
]
