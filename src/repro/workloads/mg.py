"""MG — Multigrid benchmark model.

NPB MG runs V-cycles on a hierarchy of grids. Processes split the x–y
plane (2×2 for four ranks); every level visit smooths/averages the
local block and exchanges one-cell-deep halo faces with the four plane
neighbours. Face sizes shrink by ~4× per level descent, so an MG trace
mixes messages spanning three orders of magnitude — the workload that
exercises the clusterer's similarity threshold hardest.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.sim.ops import Allreduce, Barrier, Irecv, Isend, Op, Waitall
from repro.sim.program import Program
from repro.workloads.base import (
    ComputeModel,
    WorkloadSpec,
    compute_seconds,
    grid_2d,
    register,
)
from repro.workloads.npbdata import MG_FLOPS_PER_CELL, problem

_TAG_NS = 1
_TAG_EW = 2


def _rank_gen(spec: WorkloadSpec, rank: int, size: int) -> Iterator[Op]:
    params = problem("mg", spec.klass)
    rows, cols = grid_2d(size)
    row, col = divmod(rank, cols)
    cm = ComputeModel(spec, rank)

    north: Optional[int] = rank - cols if row > 0 else None
    south: Optional[int] = rank + cols if row < rows - 1 else None
    west: Optional[int] = rank - 1 if col > 0 else None
    east: Optional[int] = rank + 1 if col < cols - 1 else None

    # Grid levels, finest first, down to 4^3 (NPB's coarsest useful grid).
    levels: list[tuple[int, int, int]] = []
    nx, ny, nz = params.nx, params.ny, params.nz
    while min(nx, ny, nz) >= 4:
        levels.append((nx, ny, nz))
        nx, ny, nz = nx // 2, ny // 2, nz // 2

    def halo(level: tuple[int, int, int]) -> Iterator[Op]:
        lx, ly, lz = level
        ns_bytes = max(8, (lx // cols) * lz * 8)
        ew_bytes = max(8, (ly // rows) * lz * 8)
        reqs = []
        for peer, nbytes, tag in (
            (north, ns_bytes, _TAG_NS),
            (south, ns_bytes, _TAG_NS),
            (west, ew_bytes, _TAG_EW),
            (east, ew_bytes, _TAG_EW),
        ):
            if peer is not None:
                reqs.append((yield Irecv(source=peer, nbytes=nbytes, tag=tag)))
        for peer, nbytes, tag in (
            (north, ns_bytes, _TAG_NS),
            (south, ns_bytes, _TAG_NS),
            (west, ew_bytes, _TAG_EW),
            (east, ew_bytes, _TAG_EW),
        ):
            if peer is not None:
                reqs.append((yield Isend(dest=peer, nbytes=nbytes, tag=tag)))
        if reqs:
            yield Waitall(tuple(reqs))

    def level_secs(level: tuple[int, int, int], share: float) -> float:
        lx, ly, lz = level
        cells = (lx // cols) * (ly // rows) * lz
        return compute_seconds(max(1, cells) * MG_FLOPS_PER_CELL * share)

    def v_cycle() -> Iterator[Op]:
        # Descend: residual then restriction, each with its own halo
        # exchange (as resid and rprj3 both communicate in NPB MG).
        for level in levels:
            yield cm.compute(level_secs(level, 0.35))
            yield from halo(level)
            yield cm.compute(level_secs(level, 0.25))
            yield from halo(level)
        # Ascend: interpolate + smooth back to the finest level.
        for level in reversed(levels):
            yield cm.compute(level_secs(level, 0.4))
            yield from halo(level)

    # zran3 initialisation + initial residual.
    yield cm.compute(level_secs(levels[0], 1.0))
    yield from halo(levels[0])
    yield Barrier()

    for _it in range(params.niter):
        yield from v_cycle()
        # rnm2 residual norm after each cycle.
        yield Allreduce(nbytes=16)

    yield Barrier()


@register("mg")
def build(spec: WorkloadSpec) -> Program:
    if spec.nprocs & (spec.nprocs - 1):
        raise WorkloadError("MG requires a power-of-two process count")
    return Program(
        name=f"mg.{spec.klass}.{spec.nprocs}",
        nranks=spec.nprocs,
        make=lambda rank, size: _rank_gen(spec, rank, size),
    )
