"""LU — SSOR solver benchmark model.

NPB LU decomposes the grid over a 2D process array in x–y and sweeps
wavefronts along z. Each SSOR iteration performs a *lower* sweep
(dependencies flow from the north-west corner: receive thin pencil
messages from north and west, compute the k-plane block, forward to
south and east) and a mirrored *upper* sweep from the south-east
corner, followed by an RHS update with full-face halo exchanges. The
pencil messages are small (5 doubles per boundary cell per plane —
about 2 KB per plane for Class B on 2×2), which makes LU the
latency-sensitive, message-rich benchmark of the suite; planes are
exchanged in blocks of ``K_BLOCK`` as the real code does with its
pipelining buffer.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.sim.ops import Allreduce, Barrier, Op, Recv, Send, Sendrecv
from repro.sim.program import Program
from repro.workloads.base import (
    ComputeModel,
    WorkloadSpec,
    compute_seconds,
    grid_2d,
    register,
)
from repro.workloads.npbdata import LU_FLOPS_PER_CELL, LU_SWEEP_SHARE, problem

#: Planes exchanged per pipeline message (the real code's buffering).
K_BLOCK = 2

_TAG_LOWER_NS = 1
_TAG_LOWER_EW = 2
_TAG_UPPER_NS = 3
_TAG_UPPER_EW = 4
_TAG_RHS_NS = 5
_TAG_RHS_EW = 6


def _rank_gen(spec: WorkloadSpec, rank: int, size: int) -> Iterator[Op]:
    params = problem("lu", spec.klass)
    rows, cols = grid_2d(size)
    row, col = divmod(rank, cols)
    cm = ComputeModel(spec, rank)

    local_nx = max(1, params.nx // cols)
    local_ny = max(1, params.ny // rows)
    nz = params.nz
    nblocks = max(1, nz // K_BLOCK)

    north: Optional[int] = rank - cols if row > 0 else None
    south: Optional[int] = rank + cols if row < rows - 1 else None
    west: Optional[int] = rank - 1 if col > 0 else None
    east: Optional[int] = rank + 1 if col < cols - 1 else None

    ns_pencil = 5 * local_nx * K_BLOCK * 8
    ew_pencil = 5 * local_ny * K_BLOCK * 8
    ns_face = 5 * local_nx * nz * 8
    ew_face = 5 * local_ny * nz * 8

    cells_per_block = local_nx * local_ny * K_BLOCK
    sweep_secs = compute_seconds(
        cells_per_block * LU_FLOPS_PER_CELL * LU_SWEEP_SHARE / 2.0
    )
    rhs_secs = compute_seconds(
        local_nx * local_ny * nz * LU_FLOPS_PER_CELL * (1.0 - LU_SWEEP_SHARE)
    )

    def lower_sweep() -> Iterator[Op]:
        for _blk in range(nblocks):
            if north is not None:
                yield Recv(source=north, nbytes=ns_pencil, tag=_TAG_LOWER_NS)
            if west is not None:
                yield Recv(source=west, nbytes=ew_pencil, tag=_TAG_LOWER_EW)
            yield cm.compute(sweep_secs)
            if south is not None:
                yield Send(dest=south, nbytes=ns_pencil, tag=_TAG_LOWER_NS)
            if east is not None:
                yield Send(dest=east, nbytes=ew_pencil, tag=_TAG_LOWER_EW)

    def upper_sweep() -> Iterator[Op]:
        for _blk in range(nblocks):
            if south is not None:
                yield Recv(source=south, nbytes=ns_pencil, tag=_TAG_UPPER_NS)
            if east is not None:
                yield Recv(source=east, nbytes=ew_pencil, tag=_TAG_UPPER_EW)
            yield cm.compute(sweep_secs)
            if north is not None:
                yield Send(dest=north, nbytes=ns_pencil, tag=_TAG_UPPER_NS)
            if west is not None:
                yield Send(dest=west, nbytes=ew_pencil, tag=_TAG_UPPER_EW)

    def rhs_exchange() -> Iterator[Op]:
        if north is not None:
            yield Sendrecv(dest=north, send_nbytes=ns_face, send_tag=_TAG_RHS_NS,
                           source=north, recv_tag=_TAG_RHS_NS)
        if south is not None:
            yield Sendrecv(dest=south, send_nbytes=ns_face, send_tag=_TAG_RHS_NS,
                           source=south, recv_tag=_TAG_RHS_NS)
        if west is not None:
            yield Sendrecv(dest=west, send_nbytes=ew_face, send_tag=_TAG_RHS_EW,
                           source=west, recv_tag=_TAG_RHS_EW)
        if east is not None:
            yield Sendrecv(dest=east, send_nbytes=ew_face, send_tag=_TAG_RHS_EW,
                           source=east, recv_tag=_TAG_RHS_EW)

    # setbv/setiv/erhs initialisation, then synchronise.
    yield cm.compute(2.0 * rhs_secs)
    yield Barrier()

    for it in range(params.niter):
        yield from lower_sweep()
        yield from upper_sweep()
        yield cm.compute(rhs_secs)
        yield from rhs_exchange()
        # Residual norm every 20 iterations and on the last (inorm).
        if (it + 1) % 20 == 0 or it == params.niter - 1:
            yield Allreduce(nbytes=40)

    yield Barrier()


@register("lu")
def build(spec: WorkloadSpec) -> Program:
    if spec.nprocs & (spec.nprocs - 1):
        raise WorkloadError("LU requires a power-of-two process count")
    return Program(
        name=f"lu.{spec.klass}.{spec.nprocs}",
        nranks=spec.nprocs,
        make=lambda rank, size: _rank_gen(spec, rank, size),
    )
