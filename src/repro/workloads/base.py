"""Shared workload machinery: compute-time conversion, decomposition
helpers, the compute-jitter model, and the benchmark registry."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.sim.ops import Compute, Op
from repro.sim.program import Program
from repro.util.rng import make_rng

#: Sustained flop rate of the reference CPU (a 1.7 GHz Xeon running
#: compiled NPB kernels sustains a few hundred Mflop/s).
REFERENCE_FLOPS: float = 4.0e8


def compute_seconds(flops: float, efficiency: float = 1.0) -> float:
    """Convert a flop count into reference-CPU seconds."""
    if flops < 0:
        raise WorkloadError("negative flop count")
    if efficiency <= 0:
        raise WorkloadError("efficiency must be positive")
    return flops / (REFERENCE_FLOPS * efficiency)


def grid_2d(nprocs: int) -> tuple[int, int]:
    """Near-square 2D process grid (rows, cols) with rows*cols = nprocs."""
    if nprocs < 1:
        raise WorkloadError("nprocs must be >= 1")
    rows = int(math.sqrt(nprocs))
    while rows > 1 and nprocs % rows != 0:
        rows -= 1
    return rows, nprocs // rows


@dataclass(frozen=True)
class WorkloadSpec:
    """Identifies one benchmark instance.

    ``jitter`` is the relative amplitude of per-phase compute-duration
    variability (load imbalance, cache effects); skeleton construction
    averages it away, which is one of the paper's acknowledged error
    sources for unbalanced sharing scenarios, so it must exist in the
    model for the reproduction to be honest.
    """

    benchmark: str
    klass: str = "B"
    nprocs: int = 4
    seed: int = 12345
    jitter: float = 0.04


class ComputeModel:
    """Per-rank deterministic jittered compute durations.

    Each call to :meth:`compute` returns a ``Compute`` op whose duration
    is the nominal value scaled by ``1 + jitter*u`` with ``u`` drawn
    uniformly from [-1, 1] by a per-rank seeded generator, plus a
    persistent per-rank skew (some ranks are systematically a touch
    slower — boundary work, NUMA placement) of the same amplitude.
    """

    def __init__(self, spec: WorkloadSpec, rank: int):
        self._rng = make_rng(spec.seed, spec.benchmark, spec.klass, rank)
        self._jitter = spec.jitter
        # Persistent rank skew in [-jitter/2, +jitter/2].
        self._skew = 1.0 + self._jitter * (self._rng.random() - 0.5)

    def compute(self, seconds: float) -> Compute:
        if seconds <= 0:
            return Compute(0.0)
        u = 2.0 * self._rng.random() - 1.0
        return Compute(seconds * self._skew * (1.0 + self._jitter * u))


#: A benchmark builder takes a spec and returns a runnable Program.
Builder = Callable[[WorkloadSpec], Program]

_REGISTRY: dict[str, Builder] = {}


def register(name: str) -> Callable[[Builder], Builder]:
    """Decorator used by benchmark modules to register a builder."""

    def _wrap(builder: Builder) -> Builder:
        if name in _REGISTRY:
            raise WorkloadError(f"benchmark {name!r} registered twice")
        _REGISTRY[name] = builder
        return builder

    return _wrap


def available_benchmarks() -> list[str]:
    """Names of registered benchmarks, sorted."""
    return sorted(_REGISTRY)


def get_program(
    benchmark: str,
    klass: str = "B",
    nprocs: int = 4,
    seed: int = 12345,
    jitter: float = 0.04,
) -> Program:
    """Build a runnable :class:`Program` for a benchmark instance."""
    benchmark = benchmark.lower()
    try:
        builder = _REGISTRY[benchmark]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {benchmark!r}; available: {available_benchmarks()}"
        ) from None
    spec = WorkloadSpec(
        benchmark=benchmark, klass=klass.upper(), nprocs=nprocs, seed=seed,
        jitter=jitter,
    )
    return builder(spec)


def perturbed_counts(
    rng: np.random.Generator, total: int, parts: int, amplitude: float = 0.05
) -> list[int]:
    """Split ``total`` into ``parts`` near-equal integer shares with
    multiplicative noise (used e.g. for IS key distributions)."""
    if parts < 1:
        raise WorkloadError("parts must be >= 1")
    base = total / parts
    weights = 1.0 + amplitude * (2.0 * rng.random(parts) - 1.0)
    weights /= weights.sum()
    counts = [int(round(total * w)) for w in weights]
    # Fix rounding drift on the last element, keeping it non-negative.
    drift = total - sum(counts)
    counts[-1] = max(0, counts[-1] + drift)
    return counts
