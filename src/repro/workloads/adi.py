"""Shared structure of the ADI solvers BT and SP.

Both codes run time steps of: RHS computation with full-face halo
exchanges in the decomposed dimensions, then directional solves in x,
y, z. On a 2D process grid the x and y solves are forward/backward
substitution pipelines along the respective grid dimension (boundary
data flows rank-to-rank), while the z solve is process-local. BT and
SP differ in the per-face payload (5×5 block matrices + 5-vector ≈
240 B/cell for BT versus scalar pentadiagonal data ≈ 80 B/cell for SP)
and in per-cell flop cost / iteration count.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.sim.ops import Allreduce, Barrier, Op, Recv, Send, Sendrecv
from repro.sim.program import Program
from repro.workloads.base import (
    ComputeModel,
    WorkloadSpec,
    compute_seconds,
    grid_2d,
)
from repro.workloads.npbdata import GridParams

_TAG_RHS_NS = 1
_TAG_RHS_EW = 2
_TAG_X_FWD = 3
_TAG_X_BWD = 4
_TAG_Y_FWD = 5
_TAG_Y_BWD = 6

#: Fraction of a time step's flops in each phase.
_RHS_SHARE = 0.16
_SOLVE_SHARE = 0.28  # per direction (x, y, z)

#: The substitution pipelines are chunked along z (as the real codes
#: buffer their sweeps) so downstream ranks start before the upstream
#: rank has finished its whole face — without this the 2-hop pipeline
#: would serialise half of every solve.
PIPELINE_CHUNKS = 8


def adi_rank_gen(
    spec: WorkloadSpec,
    rank: int,
    size: int,
    params: GridParams,
    flops_per_cell: float,
    solve_bytes_per_face_cell: int,
) -> Iterator[Op]:
    rows, cols = grid_2d(size)
    row, col = divmod(rank, cols)
    cm = ComputeModel(spec, rank)

    local_nx = max(1, params.nx // cols)
    local_ny = max(1, params.ny // rows)
    nz = params.nz
    cells = local_nx * local_ny * nz

    north: Optional[int] = rank - cols if row > 0 else None
    south: Optional[int] = rank + cols if row < rows - 1 else None
    west: Optional[int] = rank - 1 if col > 0 else None
    east: Optional[int] = rank + 1 if col < cols - 1 else None

    rhs_ns_bytes = 5 * local_nx * nz * 8
    rhs_ew_bytes = 5 * local_ny * nz * 8
    x_face_bytes = local_ny * nz * solve_bytes_per_face_cell
    y_face_bytes = local_nx * nz * solve_bytes_per_face_cell

    step_secs = compute_seconds(cells * flops_per_cell)
    rhs_secs = step_secs * _RHS_SHARE
    solve_secs = step_secs * _SOLVE_SHARE

    def rhs_exchange() -> Iterator[Op]:
        for peer, nbytes, tag in (
            (north, rhs_ns_bytes, _TAG_RHS_NS),
            (south, rhs_ns_bytes, _TAG_RHS_NS),
            (west, rhs_ew_bytes, _TAG_RHS_EW),
            (east, rhs_ew_bytes, _TAG_RHS_EW),
        ):
            if peer is not None:
                yield Sendrecv(dest=peer, send_nbytes=nbytes, send_tag=tag,
                               source=peer, recv_tag=tag)

    def pipeline(
        pred: Optional[int], succ: Optional[int],
        fwd_tag: int, bwd_tag: int, face_bytes: int,
    ) -> Iterator[Op]:
        chunk_bytes = max(8, face_bytes // PIPELINE_CHUNKS)
        chunk_secs = solve_secs / 2.0 / PIPELINE_CHUNKS
        # Forward substitution flows pred -> succ.
        for _c in range(PIPELINE_CHUNKS):
            if pred is not None:
                yield Recv(source=pred, nbytes=chunk_bytes, tag=fwd_tag)
            yield cm.compute(chunk_secs)
            if succ is not None:
                yield Send(dest=succ, nbytes=chunk_bytes, tag=fwd_tag)
        # Backward substitution flows succ -> pred.
        for _c in range(PIPELINE_CHUNKS):
            if succ is not None:
                yield Recv(source=succ, nbytes=chunk_bytes, tag=bwd_tag)
            yield cm.compute(chunk_secs)
            if pred is not None:
                yield Send(dest=pred, nbytes=chunk_bytes, tag=bwd_tag)

    # Initialisation: exact_rhs + initial halo fill.
    yield cm.compute(2.0 * rhs_secs)
    yield from rhs_exchange()
    yield Barrier()

    for _it in range(params.niter):
        yield cm.compute(rhs_secs)
        yield from rhs_exchange()
        yield from pipeline(west, east, _TAG_X_FWD, _TAG_X_BWD, x_face_bytes)
        yield from pipeline(north, south, _TAG_Y_FWD, _TAG_Y_BWD, y_face_bytes)
        yield cm.compute(solve_secs)  # z solve is process-local

    # Verification: residual norms.
    yield cm.compute(rhs_secs)
    yield Allreduce(nbytes=40)
    yield Barrier()


def build_adi(
    spec: WorkloadSpec,
    params: GridParams,
    flops_per_cell: float,
    solve_bytes_per_face_cell: int,
) -> Program:
    return Program(
        name=f"{spec.benchmark}.{spec.klass}.{spec.nprocs}",
        nranks=spec.nprocs,
        make=lambda rank, size: adi_rank_gen(
            spec, rank, size, params, flops_per_cell, solve_bytes_per_face_cell
        ),
    )
