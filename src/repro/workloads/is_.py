"""IS — Integer Sort benchmark model.

NPB IS ranks ``total_keys`` integer keys per iteration via bucket
counting: each rank counts its local keys into buckets, an
``MPI_Allreduce`` combines bucket sizes, an ``MPI_Alltoallv``
redistributes the keys themselves (the dominant communication — for
Class B on 4 ranks roughly N/P/P × 4 B ≈ 8.4 MB per rank pair), and a
local ranking pass finishes the iteration. The per-destination key
counts vary slightly between iterations (the key distribution is
random), which our model reproduces with seeded multiplicative noise —
this is what gives the trace clusterer genuinely *similar but unequal*
events to merge.

Key handling is memory-latency bound (random access histogramming), so
work is expressed directly in seconds/key (``IS_SECONDS_PER_KEY``).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import WorkloadError
from repro.sim.ops import Allreduce, Alltoallv, Barrier, Op
from repro.sim.program import Program
from repro.util.rng import make_rng
from repro.workloads.base import (
    ComputeModel,
    WorkloadSpec,
    perturbed_counts,
    register,
)
from repro.workloads.npbdata import IS_SECONDS_PER_KEY, problem


def _rank_gen(spec: WorkloadSpec, rank: int, size: int) -> Iterator[Op]:
    params = problem("is", spec.klass)
    cm = ComputeModel(spec, rank)
    counts_rng = make_rng(spec.seed, "is-counts", spec.klass, rank)

    local_keys = params.total_keys // size
    key_secs = IS_SECONDS_PER_KEY * local_keys
    bucket_bytes = params.n_buckets * params.key_bytes
    total_out_bytes = local_keys * params.key_bytes

    # Key generation (one cheap pass) and warm-up ranking, then sync.
    yield cm.compute(0.25 * key_secs)
    yield Barrier()

    for _it in range(params.niter):
        # Bucket counting over the local keys.
        yield cm.compute(0.6 * key_secs)
        # Combine bucket sizes.
        yield Allreduce(nbytes=bucket_bytes)
        # Redistribute the keys. Both the per-destination split and the
        # per-iteration total wobble with the random key distribution —
        # the genuinely-similar-but-unequal events the paper's
        # similarity threshold exists to merge.
        it_total = int(total_out_bytes * (1.0 + 0.05 * (2.0 * counts_rng.random() - 1.0)))
        counts = perturbed_counts(counts_rng, it_total, size, 0.06)
        yield Alltoallv(send_counts=tuple(counts))
        # Local ranking of received keys.
        yield cm.compute(0.4 * key_secs)

    # full_verify: a final counting pass plus a scalar reduction.
    yield cm.compute(0.5 * key_secs)
    yield Allreduce(nbytes=8)
    yield Barrier()


@register("is")
def build(spec: WorkloadSpec) -> Program:
    if spec.nprocs & (spec.nprocs - 1):
        raise WorkloadError("IS requires a power-of-two process count")
    return Program(
        name=f"is.{spec.klass}.{spec.nprocs}",
        nranks=spec.nprocs,
        make=lambda rank, size: _rank_gen(spec, rank, size),
    )
