"""Synthetic workloads for examples, tests, and quick demonstrations.

These are small, parameterised programs with a clear repeating
structure, useful when a full NPB model run would be overkill:

* :func:`stencil2d` — iterative 4-neighbour halo exchange + compute.
* :func:`ring_pipeline` — token passing around a ring.
* :func:`master_worker` — rank 0 farms fixed-size work items.
* :func:`bsp_allreduce` — compute + allreduce supersteps.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.sim.ops import (
    Allreduce,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Op,
    Recv,
    Send,
    Waitall,
)
from repro.sim.program import Program
from repro.util.rng import make_rng
from repro.workloads.base import grid_2d


def stencil2d(
    nprocs: int = 4,
    iterations: int = 50,
    compute_secs: float = 0.01,
    halo_bytes: int = 64 * 1024,
    jitter: float = 0.0,
    seed: int = 0,
) -> Program:
    """Jacobi-style 2D stencil: compute then exchange halos each step."""
    rows, cols = grid_2d(nprocs)

    def gen(rank: int, size: int) -> Iterator[Op]:
        row, col = divmod(rank, cols)
        rng = make_rng(seed, "stencil", rank)
        north: Optional[int] = rank - cols if row > 0 else None
        south: Optional[int] = rank + cols if row < rows - 1 else None
        west: Optional[int] = rank - 1 if col > 0 else None
        east: Optional[int] = rank + 1 if col < cols - 1 else None
        neighbours = [p for p in (north, south, west, east) if p is not None]

        yield Barrier()
        for _it in range(iterations):
            secs = compute_secs
            if jitter > 0:
                secs *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
            yield Compute(secs)
            reqs = []
            for peer in neighbours:
                reqs.append((yield Irecv(source=peer, nbytes=halo_bytes, tag=7)))
            for peer in neighbours:
                reqs.append((yield Isend(dest=peer, nbytes=halo_bytes, tag=7)))
            if reqs:
                yield Waitall(tuple(reqs))
        yield Barrier()

    return Program(f"stencil2d.{nprocs}", nprocs, gen)


def ring_pipeline(
    nprocs: int = 4,
    rounds: int = 20,
    token_bytes: int = 4096,
    compute_secs: float = 0.002,
) -> Program:
    """A token circulates the ring; each holder computes then forwards."""
    if nprocs < 2:
        raise WorkloadError("ring needs >= 2 ranks")

    def gen(rank: int, size: int) -> Iterator[Op]:
        nxt = (rank + 1) % size
        prv = (rank - 1) % size
        yield Barrier()
        for _r in range(rounds):
            if rank == 0:
                yield Compute(compute_secs)
                yield Send(dest=nxt, nbytes=token_bytes, tag=3)
                yield Recv(source=prv, tag=3)
            else:
                yield Recv(source=prv, tag=3)
                yield Compute(compute_secs)
                yield Send(dest=nxt, nbytes=token_bytes, tag=3)
        yield Barrier()

    return Program(f"ring.{nprocs}", nprocs, gen)


def master_worker(
    nprocs: int = 4,
    items_per_worker: int = 25,
    item_bytes: int = 100_000,
    work_secs: float = 0.005,
) -> Program:
    """Rank 0 dispatches items round-robin and collects results."""
    if nprocs < 2:
        raise WorkloadError("master/worker needs >= 2 ranks")
    nworkers = nprocs - 1
    total_items = items_per_worker * nworkers

    def gen(rank: int, size: int) -> Iterator[Op]:
        yield Barrier()
        if rank == 0:
            for item in range(total_items):
                worker = 1 + item % nworkers
                yield Send(dest=worker, nbytes=item_bytes, tag=1)
            for item in range(total_items):
                worker = 1 + item % nworkers
                yield Recv(source=worker, nbytes=item_bytes // 10, tag=2)
        else:
            for _item in range(items_per_worker):
                yield Recv(source=0, nbytes=item_bytes, tag=1)
                yield Compute(work_secs)
                yield Send(dest=0, nbytes=item_bytes // 10, tag=2)
        yield Barrier()

    return Program(f"master_worker.{nprocs}", nprocs, gen)


def bsp_allreduce(
    nprocs: int = 4,
    supersteps: int = 40,
    compute_secs: float = 0.005,
    reduce_bytes: int = 1024,
) -> Program:
    """Bulk-synchronous compute + allreduce supersteps."""

    def gen(rank: int, size: int) -> Iterator[Op]:
        yield Barrier()
        for _s in range(supersteps):
            yield Compute(compute_secs)
            yield Allreduce(nbytes=reduce_bytes)
        yield Barrier()

    return Program(f"bsp.{nprocs}", nprocs, gen)


def grid_reductions(
    nprocs: int = 4,
    iterations: int = 30,
    compute_secs: float = 0.005,
    row_bytes: int = 64 * 1024,
    col_bytes: int = 512,
) -> Program:
    """2D process grid with row and column sub-communicator
    reductions — the communicator pattern of dense linear algebra
    (summing partial products along rows, pivots along columns)."""
    rows, cols = grid_2d(nprocs)
    if rows < 2 or cols < 2:
        raise WorkloadError("grid_reductions needs a 2D process grid")

    def gen(rank: int, size: int) -> Iterator[Op]:
        my_row, my_col = divmod(rank, cols)
        row_group = tuple(my_row * cols + c for c in range(cols))
        col_group = tuple(r * cols + my_col for r in range(rows))
        yield Barrier()
        for _it in range(iterations):
            yield Compute(compute_secs)
            yield Allreduce(nbytes=row_bytes, group=row_group)
            yield Compute(compute_secs / 4)
            yield Allreduce(nbytes=col_bytes, group=col_group)
        yield Barrier()

    return Program(f"grid_reductions.{nprocs}", nprocs, gen)
