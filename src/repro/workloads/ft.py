"""FT — 3D FFT benchmark model (beyond the paper's six, for suite
completeness).

NPB FT computes forward/inverse 3D FFTs on a complex grid with a slab
decomposition: each time step applies 1D FFTs along two local
dimensions, then performs a global transpose — an ``MPI_Alltoall`` of
essentially the entire local array — before the third dimension's
FFTs. FT is the communication-volume-heaviest NPB code, a useful
stress case for skeleton construction (huge collectives, few events).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.sim.ops import Allreduce, Alltoall, Barrier, Op
from repro.sim.program import Program
from repro.workloads.base import ComputeModel, WorkloadSpec, compute_seconds, register


@dataclass(frozen=True)
class FTParams:
    nx: int
    ny: int
    nz: int
    niter: int


FT_TABLE: dict[str, FTParams] = {
    "S": FTParams(64, 64, 64, 6),
    "W": FTParams(128, 128, 32, 6),
    "A": FTParams(256, 256, 128, 6),
    "B": FTParams(512, 256, 256, 20),
}

#: Complex doubles.
_POINT_BYTES = 16
#: flops per grid point per 1D-FFT pass ~ 5·log2(n); we charge the
#: 3 passes together using the geometric-mean dimension.
_FFT_FLOP_FACTOR = 5.0


def _rank_gen(spec: WorkloadSpec, rank: int, size: int) -> Iterator[Op]:
    try:
        params = FT_TABLE[spec.klass]
    except KeyError:
        raise WorkloadError(f"FT has no class {spec.klass!r}") from None
    cm = ComputeModel(spec, rank)

    points = params.nx * params.ny * params.nz
    local_points = points // size
    mean_dim = (params.nx * params.ny * params.nz) ** (1.0 / 3.0)
    fft_pass_secs = compute_seconds(
        local_points * _FFT_FLOP_FACTOR * math.log2(max(2.0, mean_dim))
    )
    # Transpose moves the whole local slab, split across all ranks.
    transpose_pair_bytes = max(1, local_points * _POINT_BYTES // size)
    evolve_secs = compute_seconds(local_points * 6.0)

    # compute_initial_conditions + warm-up FFT.
    yield cm.compute(2.0 * fft_pass_secs)
    yield Barrier()

    for _it in range(params.niter):
        yield cm.compute(evolve_secs)          # evolve (frequency shift)
        yield cm.compute(2.0 * fft_pass_secs)  # FFTs along local dims
        yield Alltoall(nbytes=transpose_pair_bytes)   # global transpose
        yield cm.compute(fft_pass_secs)        # FFT along the third dim
        yield cm.compute(0.2 * fft_pass_secs)  # checksum partials
        yield Allreduce(nbytes=16)             # complex checksum

    yield Barrier()


@register("ft")
def build(spec: WorkloadSpec) -> Program:
    if spec.nprocs & (spec.nprocs - 1):
        raise WorkloadError("FT requires a power-of-two process count")
    return Program(
        name=f"ft.{spec.klass}.{spec.nprocs}",
        nranks=spec.nprocs,
        make=lambda rank, size: _rank_gen(spec, rank, size),
    )
