"""The prediction service: request → prediction, warm or cold.

:class:`PredictionService` is the transport-free core of
:mod:`repro.serve` — the asyncio server (:mod:`repro.serve.server`)
and the tests drive the same :meth:`~PredictionService.handle` entry
point, so every protocol semantic lives here and is unit-testable
without sockets.

Request handling:

* **warm path** — if :func:`~repro.predict.online.is_warm` says every
  artifact is in the store, the prediction is reconstructed inline
  from the :class:`~repro.store.memo.PipelineCache` (microseconds of
  JSON, no simulation);
* **cold path** — the computation is dispatched to the
  :class:`~repro.serve.pool.WorkerPool` (when attached) so a hung
  simulation cannot wedge the serving process; the pool's Supervisor
  cancels and respawns stuck workers;
* **single flight** — identical concurrent requests (same
  :func:`~repro.predict.online.request_key`) coalesce: one leader
  computes, followers share the same result future
  (``serve.coalesced``).

Error replies carry the retry count from
:func:`~repro.faults.resilience.resilient_call`'s ``attempts``
annotation and a ``failure_record`` line rendered by
:func:`~repro.experiments.report.format_failure_record`, so a
client-visible serving failure reads exactly like a campaign failure
record.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Mapping, Optional

from repro.cluster.topology import Cluster, paper_testbed
from repro.errors import RemoteComputeError, ReproError, ServeError
from repro.experiments.report import format_failure_record
from repro.faults.resilience import RetryPolicy, resilient_call
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer, render_span_tree
from repro.predict import online
from repro.serve.registry import RegistryEntry, SkeletonRegistry
from repro.store.memo import PipelineCache, workload_params
from repro.store.store import ArtifactStore
from repro.trace.tracer import trace_program
from repro.workloads import get_program

__all__ = ["PredictionService", "VERBS"]

#: Protocol verbs, cheap ones first (the server answers these inline).
VERBS = ("ping", "healthz", "metricz", "tracez", "slowz", "resolve",
         "list", "publish", "predict")


class PredictionService:
    """Verb dispatcher over a store, a registry, and an optional pool.

    Thread-safe: :meth:`handle` may be called from any number of
    threads (the server drives it from an executor). ``pool=None``
    computes cold requests inline — the single-process mode used by
    most tests.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        cluster: Optional[Cluster] = None,
        pool=None,
        retry_policy: Optional[RetryPolicy] = None,
        lru_size: int = 32,
    ):
        self.cluster = cluster if cluster is not None else paper_testbed()
        self.store = ArtifactStore(cache_dir)
        self.cache = PipelineCache(self.store, self.cluster)
        self.registry = SkeletonRegistry(self.store, lru_size=lru_size)
        self.pool = pool
        self.retry_policy = retry_policy or RetryPolicy()
        # key -> (result Future, leader span id) for single-flight
        # coalescing; followers link their spans to the leader's.
        self._inflight: dict[str, tuple] = {}
        self._lock = threading.Lock()
        # Injectable for tests (e.g. to simulate slow/failing computes).
        self._compute = online.compute_prediction

    # -- public entry point ---------------------------------------------

    def handle(
        self,
        verb: str,
        params: Optional[Mapping] = None,
        ctx=None,
    ) -> dict:
        """Execute one verb; always returns a reply envelope
        (``{"ok", "code", "result" | "error" [, "failure_record"]}``)
        — protocol errors become replies, never exceptions.

        ``ctx`` is an optional parent :class:`~repro.obs.tracing
        .TraceContext` (the server passes its request span); with
        tracing enabled the whole verb runs under a ``service.<verb>``
        span, and error replies dump the flight recorder.
        """
        params = dict(params or {})
        verb = str(verb)
        metrics = get_metrics()
        tracer = get_tracer()
        t0 = time.perf_counter()
        if metrics.enabled:
            metrics.counter("serve.requests", "requests by verb").labels(
                verb=verb
            ).inc()
        scope = tracer.span(
            f"service.{verb}", parent=ctx, component="service",
            attrs={"verb": verb},
        )
        span = scope.__enter__()
        reply: Optional[dict] = None
        try:
            try:
                result = self._dispatch(verb, params)
                reply = {"ok": True, "code": 200, "result": result}
            except RemoteComputeError as exc:
                reply = self._error_reply(500, exc, params)
            except ServeError as exc:
                reply = self._error_reply(400, exc, params)
            except ReproError as exc:
                reply = self._error_reply(500, exc, params)
            except Exception as exc:  # never let a bug take the server down
                reply = self._error_reply(500, exc, params)
        finally:
            if tracer.enabled and reply is not None and not reply["ok"]:
                span.set_attr("code", reply["code"])
                span.status = "error"
            scope.__exit__(None, None, None)
        if tracer.enabled and not reply["ok"]:
            # The span just closed (and recorded) above, so on an error
            # reply the ring holds the whole request — this dump is the
            # complete post-mortem.
            tracer.recorder.record_event(
                "error_reply", verb=verb, code=reply["code"],
                error=reply["error"]["type"],
                trace_id=span.context.trace_id,
            )
            tracer.recorder.maybe_dump("error_reply")
        if metrics.enabled:
            elapsed = time.perf_counter() - t0
            metrics.histogram(
                "serve.latency_seconds", "request latency"
            ).observe(elapsed)
            metrics.histogram(
                f"serve.latency.{verb}_seconds", f"{verb} latency"
            ).observe(elapsed)
            if not reply["ok"]:
                metrics.counter("serve.errors", "error replies").labels(
                    code=reply["code"]
                ).inc()
        return reply

    def _dispatch(self, verb: str, params: dict):
        if verb == "ping":
            return {"pong": True}
        if verb == "healthz":
            return self.healthz()
        if verb == "metricz":
            return get_metrics().snapshot()
        if verb == "tracez":
            return self.tracez(params)
        if verb == "slowz":
            return self.slowz(params)
        if verb == "resolve":
            return self.registry.resolve(
                self._require(params, "alias")
            ).to_dict()
        if verb == "list":
            return {"entries": [e.to_dict() for e in self.registry.list()]}
        if verb == "publish":
            return self.publish(params).to_dict()
        if verb == "predict":
            return self.predict(params)
        raise ServeError(
            f"unknown verb {verb!r}; choose from {list(VERBS)}"
        )

    @staticmethod
    def _require(params: Mapping, name: str):
        value = params.get(name)
        if value is None:
            raise ServeError(f"missing required parameter {name!r}")
        return value

    def _error_reply(self, code: int, exc: Exception, params: dict) -> dict:
        # RemoteComputeError carries the *worker-side* class name; local
        # failures use their own. Either way the attempts annotation
        # from resilient_call reaches the client.
        error_type = getattr(exc, "error_type", type(exc).__name__)
        attempts = int(getattr(exc, "attempts", 1))
        bench = str(params.get("bench", params.get("alias", "?")))
        klass = str(params.get("klass", "S"))
        info = {
            "run": (
                f"{bench}.{klass}/serve"
                f"::{params.get('scenario', '?')}"
                f"::{params.get('env_seed', 0)}"
            ),
            "error_type": error_type,
            "error": str(exc),
            "attempts": attempts,
        }
        return {
            "ok": False,
            "code": code,
            "error": {
                "type": error_type,
                "message": str(exc),
                "attempts": attempts,
            },
            "failure_record": format_failure_record(bench, info),
        }

    # -- verbs -----------------------------------------------------------

    def healthz(self) -> dict:
        """Liveness + the two degradation signals operators care about:
        a degraded (read-only) store and the worker-pool state."""
        degraded = bool(getattr(self.store, "degraded", False))
        pool_state = self.pool.stats() if self.pool is not None else None
        pool_ok = pool_state is None or pool_state.get("alive", 0) > 0
        return {
            "status": "ok" if not degraded and pool_ok else "degraded",
            "store": {"root": str(self.store.root), "degraded": degraded},
            "pool": pool_state,
            "inflight": len(self._inflight),
        }

    def tracez(self, params: Mapping) -> dict:
        """Flight-recorder introspection: recent spans and events, or —
        with a ``trace_id`` parameter — one trace's span forest."""
        tracer = get_tracer()
        if not tracer.enabled:
            return {"enabled": False, "spans": [], "events": []}
        trace_id = params.get("trace_id")
        if trace_id is not None:
            spans = tracer.recorder.trace_spans(str(trace_id))
            return {
                "enabled": True,
                "trace_id": str(trace_id),
                "spans": spans,
                "tree": render_span_tree(spans),
            }
        limit = int(params.get("limit", 64))
        out = tracer.recorder.snapshot(limit)
        out["enabled"] = True
        return out

    def slowz(self, params: Mapping) -> dict:
        """Top-K slowest requests with per-stage time breakdown."""
        tracer = get_tracer()
        if not tracer.enabled:
            return {"enabled": False, "slowest": []}
        k = int(params.get("k", 10))
        return {
            "enabled": True,
            "slowest": tracer.recorder.slowest(k),
            "recorded_spans": tracer.recorder.n_spans,
            "dropped_spans": tracer.recorder.dropped_spans,
        }

    def publish(self, params: Mapping) -> "RegistryEntry":
        """Build (or load from the store) a workload's skeleton and
        register it under an alias.

        Runs the trace → skeleton stages through the
        :class:`PipelineCache`, so publishing also *warms* the store:
        a subsequent predict for the same workload only needs the two
        cheap skeleton runs.
        """
        alias = str(self._require(params, "alias"))
        req = online.normalize_request(
            bench=str(self._require(params, "bench")),
            klass=str(params.get("klass", "S")),
            nprocs=int(params.get("nprocs", 4)),
            workload_seed=int(params.get("workload_seed", 12345)),
            target=float(params.get("target", 5.0)),
            scenario="dedicated",
            env_seed=int(params.get("env_seed", 0)),
        )
        app_params = workload_params(
            req["bench"], req["klass"], req["nprocs"], req["workload_seed"]
        )
        program = get_program(
            req["bench"], req["klass"], req["nprocs"], req["workload_seed"]
        )
        trace, dedicated = self.cache.traced_run(
            app_params, lambda: trace_program(program, self.cluster)
        )
        trace_digest = self.cache.trace_key(app_params).digest
        skel_digest = self.cache.skeleton_key(
            trace_digest, req["target"]
        ).digest
        bundle = self.registry.bundles.get(skel_digest)
        if bundle is None:
            import warnings as _warnings

            from repro.core.construct import build_skeleton
            from repro.errors import SkeletonQualityWarning

            def _build():
                with _warnings.catch_warnings():
                    _warnings.simplefilter("ignore", SkeletonQualityWarning)
                    return build_skeleton(
                        trace, target_seconds=req["target"]
                    )

            bundle = self.cache.skeleton(trace_digest, req["target"], _build)
            self.registry.bundles[skel_digest] = bundle
        return self.registry.publish(
            alias,
            workload={
                "bench": req["bench"],
                "klass": req["klass"],
                "nprocs": req["nprocs"],
                "seed": req["workload_seed"],
            },
            target=req["target"],
            trace_digest=trace_digest,
            skeleton_digest=skel_digest,
            app_dedicated_seconds=dedicated.elapsed,
        )

    def predict(self, params: Mapping) -> dict:
        """One prediction, single-flighted.

        ``params`` names the workload either directly (``bench`` /
        ``klass`` / ``nprocs`` / ``workload_seed`` / ``target``) or via
        a registry ``alias``; plus ``scenario`` and ``env_seed``.
        """
        req = self._normalize(params)
        key = online.request_key(req)
        metrics = get_metrics()
        tracer = get_tracer()
        span = tracer.current()
        span_id = (
            span.context.span_id
            if span is not None and span.context is not None
            else None
        )
        with self._lock:
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                fut = Future()
                self._inflight[key] = (fut, span_id)
            else:
                fut, leader_span_id = entry
        if not leader:
            if metrics.enabled:
                metrics.counter(
                    "serve.coalesced",
                    "requests answered by an in-flight twin",
                ).inc()
            # The follower's span links to the leader whose compute it
            # rode, so a trace shows *why* this request was instant.
            if span is not None:
                span.set_attr("coalesced", True)
                if leader_span_id:
                    span.set_attr("leader_span_id", leader_span_id)
            return fut.result()
        try:
            payload = self._execute(req)
            fut.set_result(payload)
            return payload
        except BaseException as exc:
            fut.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            # A Future nobody awaits must not warn about an unretrieved
            # exception; the leader re-raises it to its own caller.
            fut.exception()

    def _normalize(self, params: Mapping) -> dict:
        alias = params.get("alias")
        if alias is not None:
            entry = self.registry.resolve(str(alias))
            return online.normalize_request(
                bench=entry.workload["bench"],
                klass=entry.workload["klass"],
                nprocs=entry.workload["nprocs"],
                workload_seed=entry.workload["seed"],
                target=entry.target,
                scenario=str(params.get("scenario", "cpu-one-node")),
                env_seed=int(params.get("env_seed", 0)),
            )
        return online.normalize_request(
            bench=str(self._require(params, "bench")),
            klass=str(params.get("klass", "S")),
            nprocs=int(params.get("nprocs", 4)),
            workload_seed=int(params.get("workload_seed", 12345)),
            target=float(params.get("target", 5.0)),
            scenario=str(params.get("scenario", "cpu-one-node")),
            env_seed=int(params.get("env_seed", 0)),
        )

    def _execute(self, req: dict) -> dict:
        metrics = get_metrics()
        tracer = get_tracer()
        warm = online.is_warm(req, self.cache)
        if metrics.enabled:
            which = "hits" if warm else "misses"
            metrics.counter(
                f"serve.cache_{which}", "warm/cold request split"
            ).inc()
        span = tracer.current()
        if span is not None:
            span.set_attr("warm", warm)
        if warm or self.pool is None:
            value, _attempts = resilient_call(
                lambda: self._compute(
                    req, self.cache, self.cluster, self.registry.bundles
                ),
                self.retry_policy,
            )
            return value
        # Hand the forked worker our span's context so its
        # ``worker.compute`` span joins this trace across the process
        # boundary (the worker ships completed spans back, see pool.py).
        ctx = (
            span.context.to_dict()
            if span is not None and span.context is not None
            else None
        )
        return self.pool.submit(req, ctx=ctx)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
