"""Online skeleton-prediction serving (see ``docs/SERVING.md``).

Three layers, composable and individually testable:

* :class:`~repro.serve.registry.SkeletonRegistry` — named, versioned
  aliases over the content-addressed store, with an LRU of
  deserialized skeletons;
* :class:`~repro.serve.service.PredictionService` — verb dispatch,
  warm-path cache answers, single-flight request coalescing, and the
  supervised :class:`~repro.serve.pool.WorkerPool` for cold compute;
* :class:`~repro.serve.server.PredictionServer` /
  :class:`~repro.serve.client.ServiceClient` — newline-delimited
  JSON-over-TCP with bounded admission, per-request deadlines,
  explicit overload replies, and graceful SIGTERM drain.
"""

from repro.serve.client import ServiceClient
from repro.serve.pool import WorkerPool
from repro.serve.registry import LRUCache, RegistryEntry, SkeletonRegistry
from repro.serve.server import PredictionServer
from repro.serve.service import PredictionService

__all__ = [
    "LRUCache",
    "PredictionServer",
    "PredictionService",
    "RegistryEntry",
    "ServiceClient",
    "SkeletonRegistry",
    "WorkerPool",
]
