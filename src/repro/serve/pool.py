"""Process pool for cold predictions, supervised against hangs.

Cold requests run real simulations; running them in the serving
process would couple request latency to simulation time and let one
pathological run (an NFS stall inside the store, a runaway workload)
wedge the whole service. The pool keeps compute in child processes
and re-uses the campaign machinery for safety:

* each worker pushes monotonic **heartbeats** through the shared
  result queue from a daemon thread (it survives a hung main thread);
* the parent-side collector drives the same
  :class:`~repro.parallel.supervisor.Supervisor` the campaign
  scheduler uses — per-task soft/hard deadlines plus heartbeat-stall
  detection — and cancels offenders with SIGTERM → SIGKILL
  escalation, respawning a fresh worker;
* a worker-side failure is shipped back as ``(type, message,
  attempts)`` — the ``attempts`` annotation from
  :func:`~repro.faults.resilience.resilient_call` — and re-raised in
  the parent as :class:`~repro.errors.RemoteComputeError`, so the
  service's error reply carries the true worker-side cause and retry
  count.

Workers write into the same artifact store as the parent (atomic
writes make concurrent producers benign), so a cold computation warms
the cache for every later request.

Tests monkeypatch :func:`repro.predict.online.compute_prediction`
*before* constructing the pool: workers are forked, so they inherit
the patched module attribute — that is how the hung-worker paths are
exercised without a genuinely slow simulation.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future
from typing import Optional

from repro.errors import (
    RemoteComputeError,
    ServeError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.faults.resilience import RetryPolicy, resilient_call
from repro.obs.log import get_logger
from repro.obs.tracing import TraceContext, get_tracer
from repro.parallel.supervisor import Supervisor, SupervisorConfig

__all__ = ["WorkerPool"]

_log = get_logger("serve.pool")


def _shipped_spans(tracer, span) -> list:
    """The completed spans of this task's trace, for the result
    envelope (the parent adopts them into its flight recorder)."""
    if not tracer.enabled or span.context is None:
        return []
    return tracer.recorder.trace_spans(span.context.trace_id)


def _worker_main(
    worker_id: int,
    cache_dir: Optional[str],
    tasks,
    results,
    heartbeat_interval: float,
    retry_policy: RetryPolicy,
) -> None:
    """Worker loop: pull a request, compute, ship the payload back.

    ``ok``/``err`` payloads are envelopes carrying the worker-side
    spans of the task's trace alongside the result; the ``start`` ack
    carries the opened span's identity so the parent can synthesize a
    closed span if this process hangs or dies mid-task.
    """
    if heartbeat_interval > 0:

        def _beat() -> None:
            while True:
                results.put(("beat", worker_id, None, None))
                time.sleep(heartbeat_interval)

        threading.Thread(target=_beat, daemon=True).start()

    from repro.cluster.topology import paper_testbed
    from repro.predict import online
    from repro.store.memo import PipelineCache
    from repro.store.store import ArtifactStore

    cluster = paper_testbed()
    cache = PipelineCache(ArtifactStore(cache_dir), cluster)
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, params, ctx = item
        # Workers are forked, so they inherit the parent's tracer (and
        # any monkeypatched compute_prediction — see the module note).
        tracer = get_tracer()
        scope = tracer.span(
            "worker.compute",
            parent=TraceContext.from_dict(ctx) if ctx else None,
            component="worker",
            attrs={"worker_id": worker_id, "task_id": task_id},
        )
        span = scope.__enter__()
        start_info = None
        if span.context is not None:
            start_info = {
                "name": "worker.compute",
                "trace_id": span.context.trace_id,
                "span_id": span.context.span_id,
                "parent_id": span.context.parent_id,
                "ts": span.ts,
                "worker_id": worker_id,
            }
        results.put(("start", worker_id, task_id, start_info))
        try:
            # Resolved through the module so a patch installed in the
            # parent before fork takes effect here too.
            value, _ = resilient_call(
                lambda: online.compute_prediction(params, cache, cluster),
                retry_policy,
            )
            scope.__exit__(None, None, None)
            results.put((
                "ok",
                worker_id,
                task_id,
                {"payload": value, "spans": _shipped_spans(tracer, span)},
            ))
        except BaseException as exc:  # ship, never kill the loop
            scope.__exit__(type(exc), exc, exc.__traceback__)
            results.put((
                "err",
                worker_id,
                task_id,
                {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "attempts": int(getattr(exc, "attempts", 1)),
                    "spans": _shipped_spans(tracer, span),
                },
            ))


class WorkerPool:
    """Forked prediction workers with supervision and respawn.

    :meth:`submit` blocks until the prediction payload is back (the
    service calls it from its executor threads), raising
    :class:`RemoteComputeError`, :class:`TaskTimeoutError`, or
    :class:`WorkerCrashError` on the corresponding failure.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        supervisor: Optional[SupervisorConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if workers < 1:
            raise ServeError("worker pool needs at least 1 worker")
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._cache_dir = cache_dir
        self._retry_policy = retry_policy or RetryPolicy()
        self._config = supervisor or SupervisorConfig(task_timeout=120.0)
        self.supervisor = Supervisor(self._config)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._futures: dict[int, Future] = {}
        #: worker id -> task id it is currently running.
        self._running: dict[int, int] = {}
        #: task id -> params, until a worker reports it started. A
        #: worker can die between dequeueing a task and flushing its
        #: "start" notification (the queue feeder thread dies with the
        #: process), leaving the task unattributable; these are
        #: resubmitted on such a death. Duplicate execution is benign:
        #: compute is idempotent against the content-addressed store.
        self._unstarted: dict[int, tuple] = {}
        self._requeued: dict[int, int] = {}
        #: worker id -> span-start info from its "start" ack, so a
        #: hung or dead worker still contributes a (synthesized)
        #: closed span to the flight recorder.
        self._span_starts: dict[int, dict] = {}
        self._max_requeues = 1
        self._lock = threading.Lock()
        self._next_task = 0
        self._next_worker = 0
        self._closed = False
        self.n_crashes = 0
        for _ in range(workers):
            self._spawn()
        self._collector = threading.Thread(
            target=self._collect, name="serve-pool-collector", daemon=True
        )
        self._collector.start()

    # -- worker lifecycle ------------------------------------------------

    def _spawn(self) -> None:
        worker_id = self._next_worker
        self._next_worker += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._cache_dir,
                self._tasks,
                self._results,
                self._config.heartbeat_interval,
                self._retry_policy,
            ),
            daemon=True,
            name=f"serve-worker-{worker_id}",
        )
        proc.start()
        self._procs[worker_id] = proc
        _log.info("worker_spawn", worker_id=worker_id, pid=proc.pid)

    def _kill(self, worker_id: int) -> None:
        proc = self._procs.pop(worker_id, None)
        if proc is None:
            return
        proc.terminate()
        proc.join(self._config.grace_seconds)
        if proc.is_alive():
            proc.kill()
            proc.join(1.0)

    # -- submission ------------------------------------------------------

    def submit(self, params: dict, ctx: Optional[dict] = None) -> dict:
        """Run one normalized request in a worker; block for the result.

        ``ctx`` is an optional trace-context dict (the service passes
        its span's); the worker parents its ``worker.compute`` span to
        it, joining the trace across the fork boundary.
        """
        if self._closed:
            raise ServeError("worker pool is closed")
        with self._lock:
            task_id = self._next_task
            self._next_task += 1
            fut: Future = Future()
            self._futures[task_id] = fut
            self._unstarted[task_id] = (dict(params), ctx)
        self._tasks.put((task_id, dict(params), ctx))
        return fut.result()

    # -- parent-side collection ------------------------------------------

    def _collect(self) -> None:
        while not self._closed:
            try:
                kind, wid, task_id, payload = self._results.get(timeout=0.2)
            except queue.Empty:
                self._reap()
                self._enforce()
                continue
            if kind == "beat":
                self.supervisor.heartbeat(wid)
            elif kind == "start":
                self.supervisor.task_started(wid, str(task_id))
                with self._lock:
                    self._running[wid] = task_id
                    self._unstarted.pop(task_id, None)
                    if payload:
                        self._span_starts[wid] = payload
            elif kind in ("ok", "err"):
                _, started_at = self.supervisor._tasks.get(
                    wid, (None, None)
                )
                self.supervisor.task_finished(wid)
                if started_at is not None:
                    self.supervisor.observe_wall(
                        time.monotonic() - started_at
                    )
                with self._lock:
                    self._running.pop(wid, None)
                    self._unstarted.pop(task_id, None)
                    self._requeued.pop(task_id, None)
                    self._span_starts.pop(wid, None)
                    fut = self._futures.pop(task_id, None)
                # Adopt the worker's completed spans before resolving
                # the future, so the service span that wakes up sees a
                # complete trace in the flight recorder.
                tracer = get_tracer()
                if (
                    tracer.enabled
                    and isinstance(payload, dict)
                    and payload.get("spans")
                ):
                    tracer.recorder.record_remote(payload["spans"])
                if fut is None:
                    continue
                if kind == "ok":
                    fut.set_result(payload["payload"])
                else:
                    fut.set_exception(
                        RemoteComputeError(
                            payload["message"],
                            error_type=payload["type"],
                            attempts=payload["attempts"],
                        )
                    )
            self._enforce()

    def _synthesize_span(self, wid: int, status: str, reason: str) -> None:
        """A worker that hangs or dies cannot close its own span —
        close it here from the "start" ack, record it, and dump the
        flight recorder. Runs *before* the task's future is failed so
        the waiting service span sees the worker span in the ring."""
        tracer = get_tracer()
        with self._lock:
            info = self._span_starts.pop(wid, None)
        if not tracer.enabled or not info:
            return
        ts = float(info.get("ts", time.time()))
        tracer.recorder.record({
            "name": info.get("name", "worker.compute"),
            "trace_id": info.get("trace_id"),
            "span_id": info.get("span_id"),
            "parent_id": info.get("parent_id"),
            "component": "worker",
            "ts": ts,
            "dur": max(0.0, time.time() - ts),
            "status": status,
            "attrs": {
                "worker_id": wid,
                "synthesized": True,
                "reason": reason,
            },
        })
        tracer.recorder.record_event(
            f"worker_{status}",
            worker_id=wid,
            trace_id=info.get("trace_id"),
            reason=reason,
        )
        tracer.recorder.maybe_dump(f"worker_{status}")

    def _enforce(self) -> None:
        """Cancel overdue workers; fail their futures; respawn."""
        for wid, key, runtime, reason in self.supervisor.overdue():
            why = f"{reason} after {runtime:.1f}s"
            _log.warning(
                "worker_timeout",
                f"prediction task hung in worker {wid} ({why})",
                worker_id=wid,
            )
            self._synthesize_span(wid, "timeout", why)
            self._fail_worker_task(
                wid,
                TaskTimeoutError(
                    f"prediction task hung in worker {wid} "
                    f"({reason} after {runtime:.1f}s); worker cancelled"
                ),
            )
            self._kill(wid)
            if not self._closed:
                self._spawn()

    def _reap(self) -> None:
        """Detect workers that died while holding a task."""
        if self._closed:
            return
        dead = [
            wid for wid, proc in list(self._procs.items())
            if not proc.is_alive()
        ]
        for wid in dead:
            self._procs.pop(wid, None)
            self.n_crashes += 1
            self.supervisor.task_finished(wid)
            with self._lock:
                had_task = wid in self._running
            _log.warning(
                "worker_crash",
                f"serve worker {wid} died"
                + (" while computing a prediction" if had_task else ""),
                worker_id=wid,
            )
            if had_task:
                self._synthesize_span(wid, "crashed", "worker died")
                self._fail_worker_task(
                    wid,
                    WorkerCrashError(
                        f"serve worker {wid} died while computing "
                        f"a prediction"
                    ),
                )
            else:
                self._requeue_unstarted()
            if not self._closed:
                self._spawn()

    def _requeue_unstarted(self) -> None:
        """A worker died without an attributable task: anything not yet
        visibly started may have gone down with it. Resubmit those
        tasks — at most :attr:`_max_requeues` times each, so a
        deterministic crasher surfaces as :class:`WorkerCrashError`
        instead of a crash/respawn loop."""
        with self._lock:
            items = list(self._unstarted.items())
        for task_id, (params, ctx) in items:
            if self._requeued.get(task_id, 0) >= self._max_requeues:
                with self._lock:
                    self._unstarted.pop(task_id, None)
                    self._requeued.pop(task_id, None)
                    fut = self._futures.pop(task_id, None)
                if fut is not None and not fut.done():
                    fut.set_exception(
                        WorkerCrashError(
                            f"prediction task {task_id} lost to "
                            f"crashing workers "
                            f"{self._max_requeues + 1} times; giving up"
                        )
                    )
            else:
                self._requeued[task_id] = (
                    self._requeued.get(task_id, 0) + 1
                )
                self._tasks.put((task_id, params, ctx))

    def _fail_worker_task(self, wid: int, exc: Exception) -> None:
        with self._lock:
            task_id = self._running.pop(wid, None)
            fut = (
                self._futures.pop(task_id, None)
                if task_id is not None
                else None
            )
        if fut is not None and not fut.done():
            fut.set_exception(exc)

    # -- introspection / shutdown ----------------------------------------

    def stats(self) -> dict:
        with self._lock:
            busy = len(self._running)
        return {
            "alive": sum(1 for p in self._procs.values() if p.is_alive()),
            "busy": busy,
            "timeouts": self.supervisor.n_timeouts,
            "crashes": self.n_crashes,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            self._tasks.put(None)
        for proc in list(self._procs.values()):
            proc.join(self._config.grace_seconds)
        for wid in list(self._procs):
            self._kill(wid)
        with self._lock:
            futures = list(self._futures.values())
            self._futures.clear()
        for fut in futures:
            if not fut.done():
                fut.set_exception(ServeError("worker pool closed"))
        self._collector.join(2.0)
        self._tasks.close()
        self._results.close()
