"""Newline-delimited JSON-over-TCP transport with backpressure.

Protocol (see ``docs/SERVING.md``): one request per line,
``{"id"?, "verb", "params"?, "deadline_ms"?}``; one reply per line,
``{"id", "ok", "code", "result" | "error" [, "failure_record"]}``.
Replies may arrive out of request order on a pipelined connection —
the echoed ``id`` is the correlation key. Codes follow HTTP idiom:
200 success, 400 bad request, 500 compute failure, 503 overload or
draining, 504 deadline exceeded.

Backpressure is explicit, not emergent: heavy verbs (``predict``,
``publish``) pass through a **bounded admission count** —
``max_pending`` requests admitted (queued + running) — and anything
beyond that is *immediately* refused with a 503 ``Overloaded`` reply
(``serve.overload``), so saturation shows up as cheap explicit sheds
instead of unbounded latency growth. Admitted work runs on a
``max_concurrency``-thread executor with a per-request deadline
(``deadline_ms``, default ``default_deadline``) enforced by
``asyncio.wait_for`` → 504. Cheap verbs (``ping``, ``healthz``,
``metricz``, ``resolve``, ``list``) bypass admission so operability
endpoints stay responsive under overload.

SIGTERM/SIGINT triggers a graceful drain: stop accepting connections,
refuse new heavy work with 503 ``Draining``, wait up to
``drain_grace`` seconds for in-flight requests, then exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from typing import Optional

from repro.obs.log import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.tracing import TraceContext, get_tracer
from repro.serve.service import PredictionService
from repro.store.store import canonical_json

__all__ = ["PredictionServer", "CHEAP_VERBS"]

#: Verbs answered inline, outside the admission queue.
CHEAP_VERBS = frozenset(
    ("ping", "healthz", "metricz", "tracez", "slowz", "resolve", "list")
)

_log = get_logger("serve.server")


class PredictionServer:
    """Asyncio front end over a :class:`PredictionService`."""

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 16,
        max_concurrency: int = 2,
        default_deadline: float = 120.0,
        drain_grace: float = 10.0,
        access_log: bool = False,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = int(max_pending)
        self.max_concurrency = int(max_concurrency)
        self.default_deadline = float(default_deadline)
        self.drain_grace = float(drain_grace)
        self.access_log = bool(access_log)
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = None
        self._pending = 0
        self._draining = False
        self._inflight: set = set()
        self.n_overloads = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="serve-exec",
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Stop accepting, let in-flight work finish, shut down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight:
            await asyncio.wait(
                self._inflight, timeout=self.drain_grace
            )
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self.service.close()
        # Final flight-recorder dump: what the server saw last, kept
        # for post-mortems after the process is gone.
        tracer = get_tracer()
        if tracer.enabled:
            tracer.recorder.record_event("drain")
            tracer.recorder.maybe_dump("drain")

    def run(self, ready_stream=None) -> None:
        """Serve until SIGTERM/SIGINT, then drain; blocks the caller.

        Prints exactly ``serving on HOST:PORT`` to ``ready_stream``
        (default stdout) once accepting — scripts and CI parse it.
        """
        asyncio.run(self._main(ready_stream or sys.stdout))

    async def _main(self, ready_stream) -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platform without support
        await self.start()
        # Exact line contract: scripts and CI parse this from stdout.
        print(f"serving on {self.host}:{self.port}",
              file=ready_stream, flush=True)
        _log.info("serving", host=self.host, port=self.port,
                  max_pending=self.max_pending,
                  max_concurrency=self.max_concurrency)
        await stop.wait()
        _log.info("drain", "draining ...")
        await self.drain()
        # "drained, bye" stays greppable in stderr (CI asserts a clean
        # drain by finding it).
        _log.info("drained", "drained, bye")

    # -- connection handling ---------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(stripped, writer)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError, asyncio.CancelledError):
                # Loop shutdown cancels idle connection handlers mid
                # wait_closed; there is nothing left to clean up.
                pass

    async def _serve_line(self, raw: bytes, writer) -> None:
        t0 = time.perf_counter()
        try:
            request = json.loads(raw.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            await self._reply(writer, {
                "id": None, "ok": False, "code": 400,
                "error": {"type": "BadRequest",
                          "message": f"invalid request line: {exc}",
                          "attempts": 1},
            })
            return
        verb = str(request.get("verb", ""))
        tracer = get_tracer()
        # The wire "trace" field is the client's context; a traced
        # request gets its spans echoed back in the reply. Manual
        # (non-ambient) span: interleaved requests share this thread.
        wire_ctx = (
            TraceContext.from_dict(request.get("trace"))
            if tracer.enabled and request.get("trace") is not None
            else None
        )
        traced = wire_ctx is not None
        span = tracer.start_span(
            "server.request", parent=wire_ctx, component="server",
            attrs={"verb": verb},
        )
        reply = await self._process(request, span.context)
        if tracer.enabled and span.context is not None:
            span.set_attr("code", reply.get("code"))
            span.finish("ok" if reply.get("ok") else "error")
            if not reply.get("ok") and reply.get("code", 0) >= 500:
                # The service's own dump ran before our span closed;
                # re-dump so the file links server → service → worker.
                tracer.recorder.maybe_dump("error_reply")
            if traced:
                reply["trace"] = {
                    "trace_id": span.context.trace_id,
                    "spans": tracer.recorder.trace_spans(
                        span.context.trace_id
                    ),
                }
        reply["id"] = request.get("id")
        if self.access_log:
            _log.info(
                "access",
                verb=verb,
                code=reply.get("code"),
                ok=bool(reply.get("ok")),
                seconds=round(time.perf_counter() - t0, 6),
                id=request.get("id"),
                **(
                    {"trace_id": span.context.trace_id}
                    if span.context is not None
                    else {}
                ),
            )
        await self._reply(writer, reply)

    async def _process(self, request: dict, ctx=None) -> dict:
        verb = str(request.get("verb", ""))
        params = request.get("params") or {}
        if verb in CHEAP_VERBS:
            return self.service.handle(verb, params, ctx)
        if self._draining:
            return self._refusal("Draining", "server is draining")
        if self._pending >= self.max_pending:
            self.n_overloads += 1
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "serve.overload", "requests shed at admission"
                ).inc()
            return self._refusal(
                "Overloaded",
                f"admission queue full ({self.max_pending} pending); "
                f"retry later",
            )
        deadline = self.default_deadline
        if request.get("deadline_ms") is not None:
            deadline = max(0.001, float(request["deadline_ms"]) / 1000.0)
        loop = asyncio.get_running_loop()
        self._pending += 1
        self._set_depth()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(
                    self._executor, self.service.handle, verb, params, ctx
                ),
                timeout=deadline,
            )
        except asyncio.TimeoutError:
            # The executor thread keeps running (its artifacts still
            # land in the store); only the *reply* gives up.
            return {
                "ok": False, "code": 504,
                "error": {"type": "DeadlineExceeded",
                          "message": f"request exceeded {deadline:g}s "
                                     f"deadline",
                          "attempts": 1},
            }
        finally:
            self._pending -= 1
            self._set_depth()

    @staticmethod
    def _refusal(kind: str, message: str) -> dict:
        return {
            "ok": False, "code": 503,
            "error": {"type": kind, "message": message, "attempts": 1},
        }

    def _set_depth(self) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "serve.queue_depth", "admitted heavy requests"
            ).set(self._pending)

    @staticmethod
    async def _reply(writer, reply: dict) -> None:
        try:
            writer.write(canonical_json(reply).encode("utf-8") + b"\n")
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass
