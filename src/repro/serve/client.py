"""Minimal synchronous client for the serving protocol.

One TCP connection per call — deliberately boring, so tests, CI, and
``repro-skeleton call`` exercise exactly the wire protocol a real
client would (connect, one JSON line out, one JSON line back).
"""

from __future__ import annotations

import json
import socket
from typing import Mapping, Optional

from repro.errors import ServeError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON-lines client: ``call(verb, params) -> reply``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    def call(
        self,
        verb: str,
        params: Optional[Mapping] = None,
        deadline_ms: Optional[int] = None,
        request_id: Optional[str] = None,
        trace: Optional[Mapping] = None,
    ) -> dict:
        """Send one request, return the decoded reply envelope.

        Transport trouble (refused connection, timeout, truncated
        reply) raises :class:`ServeError`; protocol-level failures
        come back as normal ``ok=False`` replies. ``trace`` is an
        optional trace-context dict (see
        :meth:`repro.obs.tracing.TraceContext.to_dict`); a traced
        request's reply carries the server-side spans under a
        ``trace`` key when tracing is enabled server-side.
        """
        request: dict = {"verb": str(verb), "params": dict(params or {})}
        if deadline_ms is not None:
            request["deadline_ms"] = int(deadline_ms)
        if request_id is not None:
            request["id"] = request_id
        if trace is not None:
            request["trace"] = dict(trace)
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
                with sock.makefile("rb") as fh:
                    line = fh.readline()
        except OSError as exc:
            raise ServeError(
                f"cannot reach prediction service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        if not line:
            raise ServeError(
                f"prediction service at {self.host}:{self.port} closed "
                f"the connection without replying"
            )
        try:
            reply = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise ServeError(f"malformed reply from service: {exc}") from exc
        if not isinstance(reply, dict):
            raise ServeError("malformed reply from service: not an object")
        return reply
