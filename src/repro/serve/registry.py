"""Named, versioned skeleton aliases over the content-addressed store.

The store addresses artifacts by digest — perfect for integrity,
useless for humans. The registry maps mutable, versioned **aliases**
(``lu.4r.k16@v3``) onto the immutable skeleton artifacts a prediction
needs: the workload identity, the skeleton target, and the trace /
skeleton digests of the Merkle chain.

Persistence rides :mod:`repro.store` (stage ``"registry"``), so every
store guarantee applies for free: writes are atomic (temp file +
rename — a torn publish is never *served*, it reads as a miss),
reads are integrity-verified, and ``fsck``/``doctor``/``gc`` maintain
registry objects like any other artifact. A registry object's store
key is derived from its alias alone, which makes the alias a mutable
pointer with content-verified reads — re-publishing an alias
atomically replaces it.

Alias grammar: ``name`` or ``name@vN`` where ``name`` is
``[A-Za-z0-9._-]+``. Publishing a bare ``name`` auto-assigns the next
version and also updates the bare alias as a *latest* pointer;
resolving a bare ``name`` follows that pointer.

An in-memory LRU (:class:`LRUCache`) of deserialized skeleton bundles
sits in front of the store so repeat requests for a hot alias skip
signature deserialisation entirely (``serve.bundle_lru_*`` metrics).
"""

from __future__ import annotations

import re
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ServeError
from repro.obs.metrics import get_metrics
from repro.store.store import ArtifactStore, StoreKey

__all__ = ["LRUCache", "RegistryEntry", "SkeletonRegistry", "REGISTRY_STAGE"]

#: The store stage registry objects are filed under.
REGISTRY_STAGE = "registry"

_ALIAS_RE = re.compile(r"^(?P<name>[A-Za-z0-9._-]+?)(?:@v(?P<version>\d+))?$")


def split_alias(alias: str) -> tuple[str, Optional[int]]:
    """``"lu.4r@v3"`` → ``("lu.4r", 3)``; ``"lu.4r"`` → ``("lu.4r", None)``."""
    m = _ALIAS_RE.match(alias or "")
    if m is None:
        raise ServeError(
            f"invalid alias {alias!r}: expected NAME or NAME@vN with NAME "
            f"of [A-Za-z0-9._-]"
        )
    version = m.group("version")
    return m.group("name"), None if version is None else int(version)


class LRUCache:
    """A tiny thread-unsafe LRU mapping (the service serialises access
    through its single-flight lock). ``capacity <= 0`` disables it."""

    def __init__(self, capacity: int = 32):
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def __setitem__(self, key, value) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


@dataclass(frozen=True)
class RegistryEntry:
    """One published alias: naming plus the digests a prediction needs."""

    alias: str
    name: str
    version: int
    workload: dict
    target: float
    trace_digest: str
    skeleton_digest: str
    app_dedicated_seconds: float
    created: float

    def to_dict(self) -> dict:
        return {
            "alias": self.alias,
            "name": self.name,
            "version": self.version,
            "workload": dict(self.workload),
            "target": self.target,
            "trace_digest": self.trace_digest,
            "skeleton_digest": self.skeleton_digest,
            "app_dedicated_seconds": self.app_dedicated_seconds,
            "created": self.created,
        }


class SkeletonRegistry:
    """Publish/resolve/list named skeletons, persisted in the store."""

    def __init__(self, store: ArtifactStore, lru_size: int = 32):
        self.store = store
        #: skeleton digest -> deserialized SkeletonBundle (LRU).
        self.bundles = LRUCache(lru_size)

    def key(self, alias: str) -> StoreKey:
        """Store key of an alias (derived from the alias alone)."""
        return self.store.key(REGISTRY_STAGE, {"alias": alias})

    # -- publish ---------------------------------------------------------

    def publish(
        self,
        alias: str,
        workload: dict,
        target: float,
        trace_digest: str,
        skeleton_digest: str,
        app_dedicated_seconds: float,
    ) -> RegistryEntry:
        """Publish (or replace) an alias.

        A bare ``name`` auto-assigns the next version; an explicit
        ``name@vN`` publishes exactly that version. Either way the bare
        ``name`` pointer is updated when the published version is the
        newest. Raises :class:`ServeError` if the store cannot persist
        the entry (degraded cache) — a publish must never silently
        vanish.
        """
        name, version = split_alias(alias)
        existing = [e.version for e in self.list() if e.name == name]
        if version is None:
            version = (max(existing) + 1) if existing else 1
        entry = RegistryEntry(
            alias=f"{name}@v{version}",
            name=name,
            version=version,
            workload=dict(workload),
            target=float(target),
            trace_digest=trace_digest,
            skeleton_digest=skeleton_digest,
            app_dedicated_seconds=float(app_dedicated_seconds),
            created=time.time(),
        )
        content = entry.to_dict()
        self._put(entry.alias, content)
        if not existing or version >= max(existing):
            self._put(name, content)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "serve.published", "registry aliases published"
            ).inc()
        return entry

    def _put(self, alias: str, content: dict) -> None:
        if self.store.put(self.key(alias), content) is None:
            raise ServeError(
                f"could not publish alias {alias!r}: artifact store at "
                f"{self.store.root} is degraded (run `repro-skeleton "
                f"doctor`)"
            )

    # -- resolve / list --------------------------------------------------

    def resolve(self, alias: str) -> RegistryEntry:
        """Resolve an alias to its entry (a bare name follows the
        latest pointer). A missing *or corrupt* entry raises
        :class:`ServeError` — a torn publish is never served."""
        split_alias(alias)  # validate grammar
        artifact = self.store.get(self.key(alias))
        if artifact is None:
            raise ServeError(f"unknown alias {alias!r}")
        return self._entry_from_content(artifact.content)

    @staticmethod
    def _entry_from_content(content: dict) -> RegistryEntry:
        try:
            return RegistryEntry(
                alias=str(content["alias"]),
                name=str(content["name"]),
                version=int(content["version"]),
                workload=dict(content["workload"]),
                target=float(content["target"]),
                trace_digest=str(content["trace_digest"]),
                skeleton_digest=str(content["skeleton_digest"]),
                app_dedicated_seconds=float(
                    content["app_dedicated_seconds"]
                ),
                created=float(content.get("created", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed registry entry: {exc}") from exc

    def list(self) -> list[RegistryEntry]:
        """Every published *versioned* entry, deterministically ordered
        by ``(name, version)``. Bare latest pointers are folded in (a
        pointer and its versioned entry carry identical content);
        corrupt objects are skipped — the read path never serves them.
        """
        out: dict[str, RegistryEntry] = {}
        for meta in self.store.entries():
            if meta.get("stage") != REGISTRY_STAGE or meta.get("corrupt"):
                continue
            artifact = self.store.get(meta["digest"])
            if artifact is None:
                continue
            try:
                entry = self._entry_from_content(artifact.content)
            except ServeError:
                continue
            out[entry.alias] = entry
        return sorted(out.values(), key=lambda e: (e.name, e.version))

    # -- deserialized-bundle LRU ----------------------------------------

    def cached_bundle(self, skeleton_digest: str):
        """LRU lookup of a deserialized bundle (None on miss); counts
        ``serve.bundle_lru_hits`` / ``serve.bundle_lru_misses``."""
        bundle = self.bundles.get(skeleton_digest)
        metrics = get_metrics()
        if metrics.enabled:
            which = "hits" if bundle is not None else "misses"
            metrics.counter(
                f"serve.bundle_lru_{which}",
                "deserialized-skeleton LRU lookups",
            ).inc()
        return bundle
