"""Experiment matrix configuration (paper §4.1–4.2).

Defaults reproduce the paper: the six Class B NAS benchmarks on a
4-node dual-CPU testbed, skeletons of 10/5/2/1/0.5 seconds, the five
sharing scenarios, plus Class S runs for the §4.5 baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field


#: Benchmarks evaluated in the paper, in its presentation order.
PAPER_BENCHMARKS = ("bt", "cg", "is", "lu", "mg", "sp")

#: Intended skeleton execution times, in seconds (paper §4.2).
PAPER_SKELETON_TARGETS = (10.0, 5.0, 2.0, 1.0, 0.5)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that identifies one experiment campaign."""

    benchmarks: tuple[str, ...] = PAPER_BENCHMARKS
    klass: str = "B"
    baseline_klass: str = "S"
    nprocs: int = 4
    nnodes: int = 4
    skeleton_targets: tuple[float, ...] = PAPER_SKELETON_TARGETS
    #: Workload seed (compute jitter, IS key distributions).
    workload_seed: int = 12345
    #: Environment seed (load bursts, traffic fluctuation).
    environment_seed: int = 777
    #: Steady (deterministic) contention instead of bursty sharing.
    steady: bool = False
    #: Also score skeletons under the volatile fault-plan scenarios
    #: (:func:`repro.cluster.scenarios.volatile_scenarios`).
    include_volatile: bool = False

    def key(self) -> str:
        """Stable content hash used as the results-cache key."""
        blob = json.dumps(asdict(self), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class QuickConfig(ExperimentConfig):
    """A scaled-down matrix for tests and smoke runs: the three
    fastest benchmarks and two skeleton sizes."""

    benchmarks: tuple[str, ...] = ("cg", "is", "mg")
    skeleton_targets: tuple[float, ...] = (5.0, 0.5)
