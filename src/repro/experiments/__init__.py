"""The paper's experiment matrix and figure regeneration (section 4)."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.journal import CampaignJournal
from repro.experiments.runner import ExperimentResults, ExperimentRunner, run_experiments
from repro.experiments.figures import (
    figure2_activity,
    figure3_error_by_benchmark,
    figure4_good_skeletons,
    figure5_error_by_size,
    figure6_error_by_scenario,
    figure7_baselines,
)
from repro.experiments.report import full_report
from repro.experiments.anatomy import ErrorAnatomy, analyze_error_sources
from repro.experiments.sweeps import SizeSweep, SweepPoint, sweep_skeleton_sizes

__all__ = [
    "ErrorAnatomy",
    "analyze_error_sources",
    "SizeSweep",
    "SweepPoint",
    "sweep_skeleton_sizes",
    "CampaignJournal",
    "ExperimentConfig",
    "ExperimentResults",
    "ExperimentRunner",
    "run_experiments",
    "figure2_activity",
    "figure3_error_by_benchmark",
    "figure4_good_skeletons",
    "figure5_error_by_size",
    "figure6_error_by_scenario",
    "figure7_baselines",
    "full_report",
]
