"""Skeleton-size sweeps: the §3.4 accuracy/overhead frontier.

"It is desirable that the performance skeletons be short running since
execution of the performance skeleton is an overhead ... However, the
prediction accuracy is likely to be lower for shorter running
skeletons." — this module sweeps skeleton sizes for one application
and reports both sides of that trade, annotated with the framework's
own shortest-good-skeleton estimate so the §3.4 heuristic can be
judged against measured errors.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.contention import Scenario
from repro.cluster.scenarios import paper_scenarios
from repro.cluster.topology import Cluster
from repro.core.construct import build_skeleton
from repro.errors import ReproError, SkeletonQualityWarning
from repro.predict.predictor import SkeletonPredictor
from repro.sim.program import Program, run_program
from repro.trace.tracer import trace_program
from repro.util.rng import derive_seed
from repro.util.tables import Table


@dataclass(frozen=True)
class SweepPoint:
    """One skeleton size on the frontier."""

    target_seconds: float
    skeleton_dedicated_seconds: float  # the actual overhead paid
    average_error_percent: float
    worst_error_percent: float
    flagged: bool


@dataclass
class SizeSweep:
    """The measured accuracy/overhead frontier for one application."""

    program_name: str
    app_dedicated_seconds: float
    min_good_seconds: float
    points: list[SweepPoint] = field(default_factory=list)

    def knee(self) -> SweepPoint:
        """The cheapest point whose average error is within 1.5x of the
        best point's — a practical 'smallest skeleton worth using'."""
        best = min(p.average_error_percent for p in self.points)
        eligible = [
            p for p in self.points if p.average_error_percent <= 1.5 * best + 0.5
        ]
        return min(eligible, key=lambda p: p.skeleton_dedicated_seconds)

    def render(self) -> str:
        table = Table(
            title=(
                f"Skeleton size sweep — {self.program_name} "
                f"(dedicated {self.app_dedicated_seconds:.1f}s; "
                f"estimated min good {self.min_good_seconds:.2f}s)"
            ),
            columns=["target (s)", "overhead (s)", "avg err %",
                     "worst err %", "flagged"],
        )
        for p in self.points:
            table.add_row(
                p.target_seconds,
                p.skeleton_dedicated_seconds,
                p.average_error_percent,
                p.worst_error_percent,
                "yes" if p.flagged else "",
            )
        return table.render()


def sweep_skeleton_sizes(
    program: Program,
    cluster: Cluster,
    targets: Sequence[float],
    scenarios: Optional[Sequence[Scenario]] = None,
    seed: int = 0,
) -> SizeSweep:
    """Measure prediction error and probe overhead at each size."""
    if not targets:
        raise ReproError("no sweep targets")
    if scenarios is None:
        scenarios = paper_scenarios(cluster.nnodes)

    trace, dedicated = trace_program(program, cluster)
    actuals = {
        scen.name: run_program(
            program, cluster, scen,
            seed=derive_seed(seed, "sweep-actual", scen.name),
        ).elapsed
        for scen in scenarios
    }

    sweep: Optional[SizeSweep] = None
    points = []
    for target in targets:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SkeletonQualityWarning)
            bundle = build_skeleton(trace, target_seconds=target)
        if sweep is None:
            sweep = SizeSweep(
                program_name=program.name,
                app_dedicated_seconds=dedicated.elapsed,
                min_good_seconds=bundle.goodness.min_good_seconds,
            )
        predictor = SkeletonPredictor(
            bundle.program, dedicated.elapsed, cluster, seed=seed
        )
        errors = [
            predictor.predict(scen).error_percent(actuals[scen.name])
            for scen in scenarios
        ]
        points.append(
            SweepPoint(
                target_seconds=target,
                skeleton_dedicated_seconds=predictor.skeleton_dedicated_seconds,
                average_error_percent=sum(errors) / len(errors),
                worst_error_percent=max(errors),
                flagged=bundle.flagged,
            )
        )
    assert sweep is not None
    sweep.points = points
    return sweep
