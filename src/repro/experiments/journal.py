"""JSON-lines campaign journal: exact checkpoint/resume for campaigns.

Every completed (or permanently failed) run is appended to a journal
file as one JSON line, flushed and fsync'd immediately so a campaign
killed at any instant loses at most the line being written. On
``--resume`` the journal is replayed: runs recorded as ``ok`` are
reconstructed from their journaled measurements instead of being
re-executed, so resuming an interrupted campaign re-runs *zero*
completed work and — because journaled floats round-trip exactly
through JSON — produces byte-identical results.

The journal is append-only; when the same key appears twice the last
entry wins. Loading tolerates a truncated or corrupt trailing line
(the signature of a mid-write kill) by skipping it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union


class CampaignJournal:
    """Append-only JSON-lines record of campaign run outcomes.

    Keys are opaque strings (the runner uses
    ``"{run_id}::{scenario}::{seed}"``); values are JSON-serialisable
    dicts carrying at least ``{"status": "ok" | "failed"}``.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self._fh = None

    # -- reading ---------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Replay the journal into ``{key: last entry}``.

        Corrupt or truncated lines (a kill mid-write) are skipped;
        everything durably written before them is still honoured.
        """
        entries: dict[str, dict] = {}
        if not self.path.exists():
            return entries
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(obj, dict) and "key" in obj:
                    entries[str(obj["key"])] = obj
        return entries

    # -- writing ---------------------------------------------------------

    def record(self, key: str, entry: dict) -> None:
        """Append one entry and force it to disk before returning."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        payload = {"key": key, **entry}
        self._fh.write(json.dumps(payload) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def remove(self) -> None:
        """Delete the journal file (campaign finished or restarted)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
