"""JSON-lines campaign journal: exact checkpoint/resume for campaigns.

Every completed (or permanently failed) run is appended to a journal
file as one JSON line, flushed and fsync'd immediately so a campaign
killed at any instant loses at most the line being written. On
``--resume`` the journal is replayed: runs recorded as ``ok`` are
reconstructed from their journaled measurements instead of being
re-executed, so resuming an interrupted campaign re-runs *zero*
completed work and — because journaled floats round-trip exactly
through JSON — produces byte-identical results.

The journal is append-only; when the same key appears twice the last
entry wins. Loading tolerates a truncated or corrupt trailing line
(the signature of a mid-write kill) by skipping it.

Writes are safe under *concurrent writers*: each entry is appended to
an ``O_APPEND`` descriptor in a single ``write`` syscall, so lines
from two processes journaling into the same file never interleave
mid-line — ``load()`` recovers the union of everything both wrote
(exercised by ``tests/test_journal_concurrent.py``). The parallel
campaign scheduler relies on this when re-journaling after a worker
respawn.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.faults import io as _fio

#: Allowed values of ``CampaignJournal(durability=...)``.
DURABILITY_MODES = ("fsync", "flush")


class CampaignJournal:
    """Append-only JSON-lines record of campaign run outcomes.

    Keys are opaque strings (the runner uses
    ``"{run_id}::{scenario}::{seed}"``); values are JSON-serialisable
    dicts carrying at least ``{"status": "ok" | "failed"}``.

    ``durability`` selects the crash-safety/throughput tradeoff per
    appended line: ``"fsync"`` (default) forces every line to stable
    storage before returning — a power loss at any instant costs at
    most the line being written; ``"flush"`` stops at the OS page
    cache — an order of magnitude cheaper on spinning disks and
    network filesystems, surviving process crashes but not kernel
    panics or power loss (see ``docs/ROBUSTNESS.md``).
    """

    def __init__(
        self, path: Union[str, os.PathLike], durability: str = "fsync"
    ):
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"unknown journal durability {durability!r}; "
                f"choose from {DURABILITY_MODES}"
            )
        self.path = Path(path)
        self.durability = durability
        self._fd: Optional[int] = None

    # -- reading ---------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Replay the journal into ``{key: last entry}``.

        Corrupt or truncated lines (a kill mid-write) are skipped;
        everything durably written before them is still honoured.
        """
        entries: dict[str, dict] = {}
        if not self.path.exists():
            return entries
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(obj, dict) and "key" in obj:
                    entries[str(obj["key"])] = obj
        return entries

    # -- writing ---------------------------------------------------------

    def record(self, key: str, entry: dict) -> None:
        """Append one entry (fsync'd first, under ``durability="fsync"``).

        The whole line goes out in one ``os.write`` on an ``O_APPEND``
        descriptor: atomic with respect to other writers of the same
        file, so concurrent journaling never corrupts a line.
        """
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        payload = {"key": key, **entry}
        data = (json.dumps(payload) + "\n").encode("utf-8")
        written = _fio.write_fd(self._fd, data, path=self.path)
        while written < len(data):
            written += _fio.write_fd(self._fd, data[written:], path=self.path)
        if self.durability == "fsync":
            _fio.fsync(self._fd, path=self.path)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def remove(self) -> None:
        """Delete the journal file (campaign finished or restarted)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
