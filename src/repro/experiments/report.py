"""Whole-evaluation report rendering."""

from __future__ import annotations

from repro.experiments.figures import (
    figure2_activity,
    figure3_error_by_benchmark,
    figure4_good_skeletons,
    figure5_error_by_size,
    figure6_error_by_scenario,
    figure7_baselines,
)
from repro.experiments.runner import ExperimentResults
from repro.util.charts import bar_chart


def error_charts(results: ExperimentResults) -> str:
    """ASCII bar charts echoing the paper's bar-chart presentation:
    average error by skeleton size and by scenario (10 s skeletons)."""
    benches = results.benchmarks()
    by_size = {
        f"{t:g} s": sum(results.skeleton_avg_error(b, t) for b in benches)
        / len(benches)
        for t in results.targets()
    }
    top_target = max(results.targets())
    by_scenario = {
        scen: sum(results.skeleton_error(b, top_target, scen) for b in benches)
        / len(benches)
        for scen in results.scenario_names
    }
    return "\n\n".join(
        [
            bar_chart("Average error by skeleton size", by_size, unit="%"),
            bar_chart(
                f"Average error by scenario ({top_target:g} s skeletons)",
                by_scenario,
                unit="%",
            ),
        ]
    )


def overall_average_error(results: ExperimentResults) -> float:
    """Mean prediction error across all benchmarks, scenarios, and
    skeleton sizes — the paper's headline 6.7% number."""
    errors = [
        results.skeleton_error(bench, target, scen)
        for bench in results.benchmarks()
        for target in results.targets()
        for scen in results.scenario_names
    ]
    return sum(errors) / len(errors)


def format_failure_record(bench: str, info: dict) -> str:
    """One uniform line for any benchmark failure record.

    Every cause — model errors (``DeadlockError``), host trouble,
    worker crashes (``WorkerCrashError``), supervision timeouts
    (``TaskTimeoutError``) — renders the same way: cause class, run id,
    scenario, seed, attempt count, message. The run key is the
    journal's ``run_id::scenario::seed``.
    """
    key = str(info.get("run", "?"))
    parts = key.split("::")
    if len(parts) == 3:
        run_id, scenario, seed = parts
        where = f"{run_id} [scenario {scenario}, seed {seed}]"
    else:
        where = key
    attempts = info.get("attempts", 1)
    return (
        f"{bench}: {info.get('error_type', 'error')} in {where} "
        f"after {attempts} attempt(s): {info.get('error', '')}"
    )


def partial_banner(results: ExperimentResults) -> str:
    """A prominent banner describing failed benchmarks, or ``""``."""
    if not results.is_partial:
        return ""
    lines = [
        "=" * 64,
        f"PARTIAL RESULTS: {len(results.failures)} benchmark(s) failed "
        f"and are excluded below",
    ]
    for bench, info in sorted(results.failures.items()):
        lines.append("  " + format_failure_record(bench, info))
    lines.append("=" * 64)
    return "\n".join(lines)


def full_report(results: ExperimentResults) -> str:
    """Render every figure plus the headline summary as text.

    Partial campaigns (some benchmarks failed) render what completed,
    behind a banner; a figure that cannot be computed from the partial
    data degrades to a one-line note instead of killing the report.
    """
    if not results.benchmarks():
        banner = partial_banner(results)
        return (banner + "\n" if banner else "") + (
            "no completed benchmarks: nothing to report"
        )

    def render(label: str, fn) -> str:
        try:
            return fn()
        except (ArithmeticError, KeyError, IndexError, ValueError) as exc:
            return f"[{label} unavailable on partial results: {exc}]"

    parts = [
        f"Benchmarks: {', '.join(b.upper() for b in results.benchmarks())} "
        f"(class {results.config['klass']}, {results.config['nprocs']} ranks)",
        "",
        render("figure 2", lambda: figure2_activity(results).render()),
        "",
        render("figure 3", lambda: figure3_error_by_benchmark(results).render()),
        "",
        render("figure 4", lambda: figure4_good_skeletons(results).render()),
        "",
        render("figure 5", lambda: figure5_error_by_size(results).render()),
        "",
        render(
            "figure 6",
            lambda: figure6_error_by_scenario(
                results, results.targets()[0]
            ).render(),
        ),
        "",
        render("figure 7", lambda: figure7_baselines(results).render()),
        "",
        render("error charts", lambda: error_charts(results)),
        "",
        render(
            "overall error",
            lambda: (
                f"Overall average prediction error: "
                f"{overall_average_error(results):.1f}% "
                f"(paper reports 6.7%)"
            ),
        ),
    ]
    banner = partial_banner(results)
    if banner:
        parts = [banner, ""] + parts
    return "\n".join(parts)
