"""Builders for every figure in the paper's evaluation (section 4).

Each function takes :class:`~repro.experiments.runner.ExperimentResults`
and returns a :class:`~repro.util.tables.Table` whose rows carry the
same quantities the paper plots; the raw numbers are also retrievable
from the table rows for assertions in tests/benches.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResults
from repro.util.stats import summarize_errors
from repro.util.tables import Table


def _fmt_target(target: float) -> str:
    return f"{target:g} s"


def figure2_activity(results: ExperimentResults) -> Table:
    """Figure 2: % time in compute vs MPI, application vs skeletons."""
    table = Table(
        title="Figure 2 — execution activity split (application vs skeletons)",
        columns=["program", "variant", "compute %", "MPI %"],
    )
    for bench in results.benchmarks():
        app = results.apps[bench]
        table.add_row(
            bench.upper(), "application",
            app["compute_percent"], app["mpi_percent"],
        )
        for target in results.targets():
            skel = results.skeletons[bench][f"{target:g}"]
            table.add_row(
                bench.upper(), f"{_fmt_target(target)} skeleton",
                skel["compute_percent"], skel["mpi_percent"],
            )
    return table


def figure3_error_by_benchmark(results: ExperimentResults) -> Table:
    """Figure 3: prediction error per benchmark across skeleton sizes,
    averaged over the sharing scenarios."""
    targets = results.targets()
    table = Table(
        title="Figure 3 — prediction error (%) by benchmark, avg over scenarios",
        columns=["benchmark"] + [_fmt_target(t) for t in targets],
    )
    per_target_totals = [0.0] * len(targets)
    benches = results.benchmarks()
    for bench in benches:
        errs = [results.skeleton_avg_error(bench, t) for t in targets]
        for i, e in enumerate(errs):
            per_target_totals[i] += e
        table.add_row(bench.upper(), *errs)
    table.add_row(
        "Average", *[tot / len(benches) for tot in per_target_totals]
    )
    return table


def figure4_good_skeletons(results: ExperimentResults) -> Table:
    """Figure 4: estimated minimum execution time of the smallest good
    skeleton for each benchmark."""
    table = Table(
        title="Figure 4 — smallest good skeleton per benchmark",
        columns=["application", "smallest skeleton (s)", "flagged targets"],
    )
    for bench in results.benchmarks():
        any_target = f"{results.targets()[0]:g}"
        min_good = results.skeletons[bench][any_target]["min_good"]
        flagged = [
            _fmt_target(t)
            for t in results.targets()
            if t < min_good
        ]
        table.add_row(bench.upper(), min_good, ", ".join(flagged) or "-")
    return table


def figure5_error_by_size(results: ExperimentResults) -> Table:
    """Figure 5: the Figure 3 data grouped by skeleton size."""
    benches = results.benchmarks()
    table = Table(
        title="Figure 5 — prediction error (%) by skeleton size",
        columns=["skeleton size"] + [b.upper() for b in benches] + ["Average"],
    )
    for target in results.targets():
        errs = [results.skeleton_avg_error(b, target) for b in benches]
        table.add_row(
            _fmt_target(target), *errs, sum(errs) / len(errs)
        )
    return table


def figure6_error_by_scenario(
    results: ExperimentResults, target: float = 10.0
) -> Table:
    """Figure 6: prediction error per sharing scenario (10 s skeletons)."""
    benches = results.benchmarks()
    table = Table(
        title=f"Figure 6 — prediction error (%) by scenario ({target:g} s skeletons)",
        columns=["scenario"] + [b.upper() for b in benches] + ["Average"],
    )
    for scen in results.scenario_names:
        errs = [results.skeleton_error(b, target, scen) for b in benches]
        table.add_row(scen, *errs, sum(errs) / len(errs))
    return table


def figure7_baselines(
    results: ExperimentResults, scenario: str = "cpu+link-one"
) -> Table:
    """Figure 7: min/avg/max error of every prediction method under the
    combined sharing scenario — skeletons of each size versus the
    Class S and Average baselines."""
    benches = results.benchmarks()
    table = Table(
        title=(
            f"Figure 7 — min/avg/max prediction error (%) under "
            f"'{scenario}' by method"
        ),
        columns=["method", "min %", "avg %", "max %"],
    )
    for target in results.targets():
        summary = summarize_errors(
            results.skeleton_error(b, target, scenario) for b in benches
        )
        table.add_row(f"{_fmt_target(target)} skeleton", *summary.as_row())
    summary = summarize_errors(
        results.class_s_error(b, scenario) for b in benches
    )
    table.add_row("Class S", *summary.as_row())
    summary = summarize_errors(
        results.average_prediction_error(b, scenario) for b in benches
    )
    table.add_row("Average", *summary.as_row())
    return table
