"""Experiment campaign runner with artifact caching, crash resilience,
and parallel execution.

Executes the paper's full matrix:

* each benchmark traced on the dedicated testbed (the skeleton input
  and the dedicated reference time);
* each benchmark measured under every sharing scenario (ground truth);
* skeletons of every target size built, measured dedicated (scaling
  ratio) and probed under every scenario;
* Class S runs for the §4.5 baseline.

Caching (see :mod:`repro.store`): every pipeline stage — traced runs,
signatures, skeletons, simulated runs, and the assembled campaign
results — is memoized in the content-addressed artifact store under
the resolved cache root (``REPRO_CACHE_DIR`` or
``<project root>/.repro_cache``). A warm store re-runs the campaign
with zero recomputation; ``force=True`` only bypasses the *results*
artifact, still reusing per-stage artifacts. Campaign results written
by older versions as ``results-<key>.json`` are still read (legacy
shim).

Parallelism (see :mod:`repro.parallel`): ``workers > 1`` fans the
campaign's runs out over worker processes; results are byte-identical
to serial execution (same seeds, order-independent aggregation).

Resilience (see :mod:`repro.faults.resilience` and
:mod:`repro.experiments.journal`):

* every run executes under a :class:`~repro.faults.resilience.RetryPolicy`
  — wall-clock timeout plus bounded, seed-stable retries of host-level
  failures;
* a run that fails permanently becomes a structured record in
  ``ExperimentResults.failures`` for its benchmark instead of killing
  the campaign (remaining benchmarks still run);
* every completed run is journaled (JSON-lines, fsync'd), so a killed
  campaign resumed with ``run(resume=True)`` re-executes zero
  completed runs and produces byte-identical results.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.cluster.scenarios import paper_scenarios, volatile_scenarios
from repro.cluster.topology import Cluster, paper_testbed
from repro.core.construct import build_skeleton
from repro.errors import ExperimentError, SkeletonQualityWarning, StoreError, TraceError
from repro.experiments.config import ExperimentConfig
from repro.experiments.journal import CampaignJournal
from repro.faults.resilience import RetryPolicy, resilient_call
from repro.obs.metrics import get_metrics
from repro.predict.metrics import prediction_error_percent
from repro.sim.engine import RunResult
from repro.sim.program import run_program
from repro.store.memo import (
    PipelineCache,
    skeleton_program_params,
    workload_params,
)
from repro.store.store import ArtifactStore, DEFAULT_CACHE_DIR_NAME, resolve_cache_dir
from repro.trace.analysis import activity_breakdown
from repro.trace.io import read_trace, write_trace
from repro.trace.tracer import trace_program
from repro.util.rng import derive_seed
from repro.workloads import get_program

#: Kept for backwards compatibility: the cache directory *basename*.
#: The effective default location is resolved by
#: :func:`repro.store.store.resolve_cache_dir` (``REPRO_CACHE_DIR`` or
#: the project root), no longer the bare CWD-relative path.
DEFAULT_CACHE_DIR = DEFAULT_CACHE_DIR_NAME


def campaign_scenarios(config: ExperimentConfig) -> list:
    """The campaign's scenario list, derived purely from ``config``.

    Module-level (not a runner method) because parallel workers rebuild
    the identical list from the pickled config — :class:`Scenario`
    itself is not picklable (frozen ``MappingProxyType`` fields).
    """
    scenarios = paper_scenarios(config.nnodes, steady=config.steady)
    if config.include_volatile:
        scenarios += volatile_scenarios(
            config.nnodes, seed=config.environment_seed
        )
    return scenarios


@dataclass
class ExperimentResults:
    """All raw measurements of one campaign plus derived errors.

    ``failures`` maps each benchmark that could not be completed to a
    structured failure record (``run`` key, exception type, message);
    its partial measurements are dropped so every benchmark present in
    ``apps``/``skeletons``/``class_s`` is complete.
    """

    config: dict
    scenario_names: list[str]
    apps: dict = field(default_factory=dict)
    skeletons: dict = field(default_factory=dict)
    class_s: dict = field(default_factory=dict)
    failures: dict = field(default_factory=dict)

    # -- derived quantities ---------------------------------------------

    def benchmarks(self) -> list[str]:
        """Completed benchmarks, in configuration order."""
        return [
            b
            for b in self.config["benchmarks"]
            if b in self.apps and b in self.skeletons and b in self.class_s
        ]

    def targets(self) -> list[float]:
        return [float(t) for t in self.config["skeleton_targets"]]

    @property
    def is_partial(self) -> bool:
        """True when at least one benchmark failed to complete."""
        return bool(self.failures)

    def skeleton_error(self, bench: str, target: float, scenario: str) -> float:
        """Percent error of the skeleton prediction (paper §4.2)."""
        app = self.apps[bench]
        skel = self.skeletons[bench][f"{target:g}"]
        ratio = app["dedicated"] / skel["dedicated"]
        predicted = skel["scenarios"][scenario] * ratio
        return prediction_error_percent(predicted, app["scenarios"][scenario])

    def skeleton_avg_error(self, bench: str, target: float) -> float:
        errs = [
            self.skeleton_error(bench, target, s) for s in self.scenario_names
        ]
        return sum(errs) / len(errs)

    def class_s_error(self, bench: str, scenario: str) -> float:
        """Percent error of the Class S baseline prediction."""
        app = self.apps[bench]
        s_run = self.class_s[bench]
        ratio = app["dedicated"] / s_run["dedicated"]
        predicted = s_run["scenarios"][scenario] * ratio
        return prediction_error_percent(predicted, app["scenarios"][scenario])

    def average_prediction_error(self, bench: str, scenario: str) -> float:
        """Percent error of the suite-average-slowdown baseline."""
        slowdowns = [
            self.apps[b]["scenarios"][scenario] / self.apps[b]["dedicated"]
            for b in self.benchmarks()
        ]
        mean_slowdown = sum(slowdowns) / len(slowdowns)
        app = self.apps[bench]
        predicted = app["dedicated"] * mean_slowdown
        return prediction_error_percent(predicted, app["scenarios"][scenario])

    # -- (de)serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "scenario_names": self.scenario_names,
            "apps": self.apps,
            "skeletons": self.skeletons,
            "class_s": self.class_s,
            "failures": self.failures,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    @staticmethod
    def from_dict(obj: dict) -> "ExperimentResults":
        return ExperimentResults(
            config=obj["config"],
            scenario_names=obj["scenario_names"],
            apps=obj["apps"],
            skeletons=obj["skeletons"],
            class_s=obj["class_s"],
            failures=obj.get("failures", {}),
        )

    @staticmethod
    def from_json(text: str) -> "ExperimentResults":
        return ExperimentResults.from_dict(json.loads(text))


class _CampaignProgress:
    """Per-run progress accounting: counters and a wall-clock ETA."""

    def __init__(self, total_runs: int):
        self.total = total_runs
        self.done = 0
        self._t0 = time.perf_counter()

    def record(self) -> None:
        self.done += 1

    def eta_seconds(self) -> float:
        """Remaining wall time extrapolated from the completed runs."""
        if self.done == 0:
            return float("nan")
        rate = (time.perf_counter() - self._t0) / self.done
        return rate * (self.total - self.done)

    def line(
        self, run_id: str, scenario: str, seed: int, sim: float, wall: float
    ) -> str:
        """One structured per-run log line."""
        return (
            f"run {self.done}/{self.total} id={run_id} "
            f"scenario={scenario} seed={seed} "
            f"sim={sim:.3f}s wall={wall:.2f}s eta={self.eta_seconds():.0f}s"
        )


class _RunFailed(Exception):
    """Internal: one campaign run failed permanently (after retries)."""

    def __init__(self, key: str, cause: BaseException):
        super().__init__(f"{key}: {type(cause).__name__}: {cause}")
        self.key = key
        self.cause = cause


class ExperimentRunner:
    """Runs (or loads) one experiment campaign.

    ``retry_policy`` governs per-run resilience (timeout, retries); it
    deliberately lives here and not on :class:`ExperimentConfig`, so
    tuning it never invalidates cached results. ``workers > 1``
    executes the campaign on a multiprocess scheduler
    (:mod:`repro.parallel`) with byte-identical results. ``use_store``
    turns stage memoization off (runs still journal and cache results).
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        cluster: Optional[Cluster] = None,
        cache_dir: Union[str, os.PathLike, None] = None,
        verbose: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        workers: int = 1,
        store: Optional[ArtifactStore] = None,
        use_store: bool = True,
        supervisor=None,
        journal_durability: str = "fsync",
    ):
        # Deferred import: repro.parallel pulls in this module's package.
        from repro.parallel.supervisor import SupervisorConfig

        self.config = config or ExperimentConfig()
        self.cluster = cluster or paper_testbed(self.config.nnodes)
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.verbose = verbose
        self.retry_policy = retry_policy or RetryPolicy()
        #: Hang-detection tuning for parallel campaigns
        #: (:class:`repro.parallel.supervisor.SupervisorConfig`).
        self.supervisor = supervisor or SupervisorConfig()
        #: Journal durability mode (``"fsync"`` or ``"flush"``).
        self.journal_durability = journal_durability
        if workers < 1:
            raise ExperimentError("workers must be >= 1")
        self.workers = int(workers)
        self.store = store or ArtifactStore(self.cache_dir)
        self.pipeline = PipelineCache(self.store, self.cluster, enabled=use_store)
        self.scenarios = campaign_scenarios(self.config)
        #: Runs actually executed / reconstructed from the journal in
        #: the last ``run()`` call (resume accounting, used by tests).
        self.n_executed = 0
        self.n_resumed = 0
        #: Per-task worker spans of the last parallel run (for the
        #: campaign timeline export); empty after serial runs.
        self.campaign_spans: list = []
        self._journal: Optional[CampaignJournal] = None
        self._journal_state: dict[str, dict] = {}

    # -- cache -----------------------------------------------------------

    @property
    def results_key(self):
        """Store key of this campaign's assembled results artifact."""
        return self.store.key("results", {"config": self.config.key()})

    @property
    def cache_path(self) -> Path:
        """Path of the results artifact in the store."""
        return self.store.object_path(self.results_key)

    @property
    def legacy_cache_path(self) -> Path:
        """Pre-store results location (read-only compatibility shim)."""
        return self.cache_dir / f"results-{self.config.key()}.json"

    @property
    def journal_path(self) -> Path:
        return self.cache_dir / f"journal-{self.config.key()}.jsonl"

    def load_cached(self) -> Optional[ExperimentResults]:
        """Load the campaign's results artifact, or a legacy
        ``results-<key>.json`` file when the store has none."""
        try:
            artifact = self.store.get(self.results_key, on_error="raise")
        except StoreError as exc:
            raise ExperimentError(
                f"corrupt results artifact {self.cache_path}: {exc}"
            ) from exc
        if artifact is not None:
            return ExperimentResults.from_dict(artifact.content)
        legacy = self.legacy_cache_path
        if legacy.exists():
            try:
                return ExperimentResults.from_json(legacy.read_text())
            except (json.JSONDecodeError, KeyError) as exc:
                raise ExperimentError(
                    f"corrupt cache file {legacy}: {exc}"
                ) from exc
        return None

    def _store_results(self, results: ExperimentResults) -> None:
        self.store.put(self.results_key, results.to_dict())

    # -- journal ---------------------------------------------------------

    def _trace_file(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        return self.cache_dir / "traces" / f"{digest}.trace"

    def _journal_ok(self, key: str, value) -> None:
        """Journal one successful run (storing its trace, if any)."""
        if self._journal is None:
            return
        traced = isinstance(value, tuple)
        result: RunResult = value[1] if traced else value
        entry = {
            "status": "ok",
            "result": {
                "program": result.program_name,
                "scenario": result.scenario_name,
                "nranks": result.nranks,
                "finish_times": list(result.finish_times),
                "elapsed": result.elapsed,
                "n_messages": result.n_messages,
                "n_events": result.n_events,
            },
        }
        if traced:
            path = self._trace_file(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            write_trace(value[0], path)
            entry["trace_file"] = str(path.relative_to(self.cache_dir))
        self._journal.record(key, entry)

    def _journal_failed(self, key: str, exc: BaseException, attempts: int) -> None:
        if self._journal is None:
            return
        self._journal.record(
            key,
            {
                "status": "failed",
                "error": str(exc),
                "error_type": type(exc).__name__,
                "attempts": attempts,
            },
        )

    def _reconstruct(self, entry: dict):
        """Rebuild a run's value from its journal entry, or None if the
        journaled artifacts are unusable (forces re-execution)."""
        res = entry.get("result")
        if not isinstance(res, dict):
            return None
        try:
            result = RunResult(
                program_name=str(res["program"]),
                scenario_name=str(res["scenario"]),
                nranks=int(res["nranks"]),
                finish_times=tuple(float(t) for t in res["finish_times"]),
                elapsed=float(res["elapsed"]),
                n_messages=int(res["n_messages"]),
                n_events=int(res["n_events"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
        if "trace_file" not in entry:
            return result
        try:
            trace = read_trace(self.cache_dir / entry["trace_file"])
        except (OSError, TraceError):
            return None
        return trace, result

    # -- execution ---------------------------------------------------------

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[experiments] {msg}", flush=True)

    def _planned_runs(self) -> int:
        """Total simulated runs the campaign will execute (for ETA)."""
        cfg = self.config
        nscen = len(self.scenarios)
        per_bench = (
            (1 + nscen)                                   # app: trace + scenarios
            + len(cfg.skeleton_targets) * (1 + nscen)     # skeletons
            + (1 + nscen)                                 # Class S baseline
        )
        return len(cfg.benchmarks) * per_bench

    def _app_params(self, bench: str, klass: str) -> dict:
        cfg = self.config
        return workload_params(bench, klass, cfg.nprocs, cfg.workload_seed)

    def _measure(
        self,
        progress: _CampaignProgress,
        run_id: str,
        scenario_name: str,
        seed: int,
        fn: Callable,
    ):
        """Execute one run resiliently, journal it, count it.

        ``fn`` returns either a ``RunResult`` or a ``(trace, RunResult)``
        pair; the value is passed through unchanged. Runs already in
        the loaded journal are reconstructed instead of re-executed.
        A run that still fails after retries is journaled as a failure
        and surfaces as :class:`_RunFailed`.
        """
        key = f"{run_id}::{scenario_name}::{seed}"
        metrics = get_metrics()
        entry = self._journal_state.get(key)
        if entry is not None and entry.get("status") == "ok":
            value = self._reconstruct(entry)
            if value is not None:
                self.n_resumed += 1
                progress.record()
                if metrics.enabled:
                    metrics.counter(
                        "campaign.resumed", "runs reconstructed from journal"
                    ).inc()
                self._log(f"resumed from journal: {key}")
                return value

        def _on_retry(attempt: int, exc: BaseException) -> None:
            if metrics.enabled:
                metrics.counter("campaign.retries", "campaign run retries").inc()
            self._log(f"retry {attempt} for {key}: {type(exc).__name__}: {exc}")

        t0 = time.perf_counter()
        try:
            value, attempts = resilient_call(
                fn, self.retry_policy, on_retry=_on_retry
            )
        except Exception as exc:
            if metrics.enabled:
                metrics.counter("campaign.failures", "campaign runs failed").inc()
            self._journal_failed(
                key, exc,
                getattr(exc, "attempts", self.retry_policy.max_attempts),
            )
            raise _RunFailed(key, exc) from exc
        wall = time.perf_counter() - t0
        result = value[1] if isinstance(value, tuple) else value
        self.n_executed += 1
        progress.record()
        if metrics.enabled:
            metrics.counter("campaign.runs", "campaign runs completed").inc()
            metrics.histogram(
                "campaign.run_wall_seconds", "wall time per campaign run"
            ).observe(wall)
        self._journal_ok(key, value)
        self._log(progress.line(run_id, scenario_name, seed, result.elapsed, wall))
        return value

    def _run_benchmark(
        self, bench: str, results: ExperimentResults, progress: _CampaignProgress
    ) -> None:
        """The full per-benchmark matrix; raises :class:`_RunFailed` on
        the first run that fails permanently."""
        cfg = self.config
        env = cfg.environment_seed
        pipeline = self.pipeline
        program = get_program(bench, cfg.klass, cfg.nprocs, cfg.workload_seed)
        app_params = self._app_params(bench, cfg.klass)
        trace, ded = self._measure(
            progress, f"{bench}.{cfg.klass}/trace", "dedicated", 0,
            lambda: pipeline.traced_run(
                app_params, lambda: trace_program(program, self.cluster)
            ),
        )
        breakdown = activity_breakdown(trace)
        app_entry = {
            "dedicated": ded.elapsed,
            "mpi_percent": breakdown.mpi_percent,
            "compute_percent": breakdown.compute_percent,
            "n_calls": trace.n_calls(),
            "scenarios": {},
        }
        for scen in self.scenarios:
            seed = derive_seed(env, "app", bench, scen.name)
            run = self._measure(
                progress, f"{bench}.{cfg.klass}/app", scen.name, seed,
                lambda: pipeline.simulated_run(
                    app_params, scen, seed,
                    lambda: run_program(program, self.cluster, scen, seed=seed),
                ),
            )
            app_entry["scenarios"][scen.name] = run.elapsed
        results.apps[bench] = app_entry

        # Skeletons of every target size. The skeleton is keyed by the
        # digest of the trace artifact it derives from.
        trace_digest = pipeline.trace_key(app_params).digest
        results.skeletons[bench] = {}
        for target in cfg.skeleton_targets:
            def _build(trace=trace, target=target):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", SkeletonQualityWarning)
                    return build_skeleton(trace, target_seconds=target)

            bundle = pipeline.skeleton(trace_digest, target, _build)
            skel_digest = pipeline.skeleton_key(trace_digest, target).digest
            skel_params = skeleton_program_params(skel_digest)
            skel_id = f"{bench}.{cfg.klass}/skel-{target:g}"
            skel_trace, skel_ded = self._measure(
                progress, skel_id, "dedicated", 0,
                lambda: pipeline.traced_run(
                    skel_params,
                    lambda: trace_program(bundle.program, self.cluster),
                ),
            )
            skel_breakdown = activity_breakdown(skel_trace)
            entry = {
                "K": bundle.K,
                "threshold": bundle.signature.threshold,
                "compression_ratio": bundle.signature.compression_ratio,
                "dedicated": skel_ded.elapsed,
                "mpi_percent": skel_breakdown.mpi_percent,
                "compute_percent": skel_breakdown.compute_percent,
                "min_good": bundle.goodness.min_good_seconds,
                "flagged": bundle.flagged,
                "scenarios": {},
            }
            for scen in self.scenarios:
                seed = derive_seed(env, "skel", bench, target, scen.name)
                run = self._measure(
                    progress, skel_id, scen.name, seed,
                    lambda: pipeline.simulated_run(
                        skel_params, scen, seed,
                        lambda: run_program(
                            bundle.program, self.cluster, scen, seed=seed
                        ),
                    ),
                )
                entry["scenarios"][scen.name] = run.elapsed
            results.skeletons[bench][f"{target:g}"] = entry
            self._log(
                f"  skeleton {target:g}s: K={bundle.K:.1f} "
                f"dedicated={skel_ded.elapsed:.3f}s"
            )

        # Class S baseline runs.
        s_prog = get_program(
            bench, cfg.baseline_klass, cfg.nprocs, cfg.workload_seed
        )
        s_params = self._app_params(bench, cfg.baseline_klass)
        s_id = f"{bench}.{cfg.baseline_klass}/class-s"
        from repro.cluster.contention import DEDICATED

        s_ded = self._measure(
            progress, s_id, "dedicated", 0,
            lambda: pipeline.simulated_run(
                s_params, DEDICATED, 0,
                lambda: run_program(s_prog, self.cluster),
            ),
        )
        s_entry = {"dedicated": s_ded.elapsed, "scenarios": {}}
        for scen in self.scenarios:
            seed = derive_seed(env, "class_s", bench, scen.name)
            run = self._measure(
                progress, s_id, scen.name, seed,
                lambda: pipeline.simulated_run(
                    s_params, scen, seed,
                    lambda: run_program(s_prog, self.cluster, scen, seed=seed),
                ),
            )
            s_entry["scenarios"][scen.name] = run.elapsed
        results.class_s[bench] = s_entry

    def _run_serial(self, progress: _CampaignProgress) -> ExperimentResults:
        cfg = self.config
        from dataclasses import asdict

        results = ExperimentResults(
            config={k: list(v) if isinstance(v, tuple) else v
                    for k, v in asdict(cfg).items()},
            scenario_names=[s.name for s in self.scenarios],
        )
        for bench in cfg.benchmarks:
            try:
                self._run_benchmark(bench, results, progress)
            except _RunFailed as fail:
                # Crash isolation: drop the benchmark's partial
                # measurements, keep a structured failure record,
                # and carry on with the remaining benchmarks.
                results.apps.pop(bench, None)
                results.skeletons.pop(bench, None)
                results.class_s.pop(bench, None)
                results.failures[bench] = {
                    "run": fail.key,
                    "error_type": type(fail.cause).__name__,
                    "error": str(fail.cause),
                    "attempts": getattr(
                        fail.cause, "attempts", self.retry_policy.max_attempts
                    ),
                }
                self._log(f"benchmark {bench} FAILED: {fail}")
        return results

    def run(self, force: bool = False, resume: bool = False) -> ExperimentResults:
        """Run (or load) the campaign.

        ``force`` ignores the results cache (per-stage artifacts are
        still reused); ``resume`` replays the campaign journal of an
        interrupted run, re-executing nothing already completed.
        Without ``resume`` any stale journal is discarded and the
        campaign starts from scratch.
        """
        if not force:
            cached = self.load_cached()
            if cached is not None:
                self._log(f"loaded cached results {self.cache_path}")
                return cached

        cfg = self.config
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        journal = CampaignJournal(
            self.journal_path, durability=self.journal_durability
        )
        if not resume:
            journal.remove()
        self._journal = journal
        self._journal_state = journal.load() if resume else {}
        self.n_executed = 0
        self.n_resumed = 0
        self.campaign_spans = []

        progress = _CampaignProgress(self._planned_runs())
        self._log(
            f"campaign: {len(cfg.benchmarks)} benchmarks x "
            f"{len(self.scenarios)} scenarios x "
            f"{len(cfg.skeleton_targets)} skeleton sizes = "
            f"{progress.total} runs"
            + (f" on {self.workers} workers" if self.workers > 1 else "")
        )
        if resume and self._journal_state:
            self._log(
                f"resuming: journal holds {len(self._journal_state)} "
                f"completed run(s)"
            )

        try:
            if self.workers > 1:
                from repro.parallel.scheduler import run_parallel_campaign

                results = run_parallel_campaign(self)
            else:
                results = self._run_serial(progress)
        finally:
            journal.close()
            self._journal = None
            self._journal_state = {}

        self._store_results(results)
        journal.remove()
        self._log(
            f"stored results at {self.cache_path} "
            f"({self.n_executed} executed, {self.n_resumed} resumed, "
            f"{len(results.failures)} failed benchmark(s))"
        )
        return results

    def write_campaign_timeline(self, path: Union[str, os.PathLike]) -> int:
        """Export the last parallel run's per-worker task spans as a
        Perfetto-loadable Chrome trace; returns the span count."""
        from repro.parallel.scheduler import write_campaign_timeline

        return write_campaign_timeline(self.campaign_spans, path)


def run_experiments(
    config: Optional[ExperimentConfig] = None,
    cluster: Optional[Cluster] = None,
    cache_dir: Union[str, os.PathLike, None] = None,
    force: bool = False,
    resume: bool = False,
    verbose: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
    workers: int = 1,
    supervisor=None,
    journal_durability: str = "fsync",
) -> ExperimentResults:
    """Run or load the experiment campaign for ``config``."""
    runner = ExperimentRunner(
        config=config,
        cluster=cluster,
        cache_dir=cache_dir,
        verbose=verbose,
        retry_policy=retry_policy,
        workers=workers,
        supervisor=supervisor,
        journal_durability=journal_durability,
    )
    return runner.run(force=force, resume=resume)
