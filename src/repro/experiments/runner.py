"""Experiment campaign runner with result caching.

Executes the paper's full matrix:

* each benchmark traced on the dedicated testbed (the skeleton input
  and the dedicated reference time);
* each benchmark measured under every sharing scenario (ground truth);
* skeletons of every target size built, measured dedicated (scaling
  ratio) and probed under every scenario;
* Class S runs for the §4.5 baseline.

Raw measurements are cached as JSON under ``.repro_cache/`` keyed by
the configuration hash, so all figure benches share one campaign.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.cluster.scenarios import paper_scenarios
from repro.cluster.topology import Cluster, paper_testbed
from repro.core.construct import build_skeleton
from repro.errors import ExperimentError, SkeletonQualityWarning
from repro.experiments.config import ExperimentConfig
from repro.obs.metrics import get_metrics
from repro.predict.metrics import prediction_error_percent
from repro.sim.program import run_program
from repro.trace.analysis import activity_breakdown
from repro.trace.tracer import trace_program
from repro.util.rng import derive_seed
from repro.workloads import get_program

DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class ExperimentResults:
    """All raw measurements of one campaign plus derived errors."""

    config: dict
    scenario_names: list[str]
    apps: dict = field(default_factory=dict)
    skeletons: dict = field(default_factory=dict)
    class_s: dict = field(default_factory=dict)

    # -- derived quantities ---------------------------------------------

    def benchmarks(self) -> list[str]:
        return list(self.config["benchmarks"])

    def targets(self) -> list[float]:
        return [float(t) for t in self.config["skeleton_targets"]]

    def skeleton_error(self, bench: str, target: float, scenario: str) -> float:
        """Percent error of the skeleton prediction (paper §4.2)."""
        app = self.apps[bench]
        skel = self.skeletons[bench][f"{target:g}"]
        ratio = app["dedicated"] / skel["dedicated"]
        predicted = skel["scenarios"][scenario] * ratio
        return prediction_error_percent(predicted, app["scenarios"][scenario])

    def skeleton_avg_error(self, bench: str, target: float) -> float:
        errs = [
            self.skeleton_error(bench, target, s) for s in self.scenario_names
        ]
        return sum(errs) / len(errs)

    def class_s_error(self, bench: str, scenario: str) -> float:
        """Percent error of the Class S baseline prediction."""
        app = self.apps[bench]
        s_run = self.class_s[bench]
        ratio = app["dedicated"] / s_run["dedicated"]
        predicted = s_run["scenarios"][scenario] * ratio
        return prediction_error_percent(predicted, app["scenarios"][scenario])

    def average_prediction_error(self, bench: str, scenario: str) -> float:
        """Percent error of the suite-average-slowdown baseline."""
        slowdowns = [
            self.apps[b]["scenarios"][scenario] / self.apps[b]["dedicated"]
            for b in self.benchmarks()
        ]
        mean_slowdown = sum(slowdowns) / len(slowdowns)
        app = self.apps[bench]
        predicted = app["dedicated"] * mean_slowdown
        return prediction_error_percent(predicted, app["scenarios"][scenario])

    # -- (de)serialisation ------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "config": self.config,
                "scenario_names": self.scenario_names,
                "apps": self.apps,
                "skeletons": self.skeletons,
                "class_s": self.class_s,
            },
            indent=1,
        )

    @staticmethod
    def from_json(text: str) -> "ExperimentResults":
        obj = json.loads(text)
        return ExperimentResults(
            config=obj["config"],
            scenario_names=obj["scenario_names"],
            apps=obj["apps"],
            skeletons=obj["skeletons"],
            class_s=obj["class_s"],
        )


class _CampaignProgress:
    """Per-run progress accounting: counters and a wall-clock ETA."""

    def __init__(self, total_runs: int):
        self.total = total_runs
        self.done = 0
        self._t0 = time.perf_counter()

    def record(self) -> None:
        self.done += 1

    def eta_seconds(self) -> float:
        """Remaining wall time extrapolated from the completed runs."""
        if self.done == 0:
            return float("nan")
        rate = (time.perf_counter() - self._t0) / self.done
        return rate * (self.total - self.done)

    def line(
        self, run_id: str, scenario: str, seed: int, sim: float, wall: float
    ) -> str:
        """One structured per-run log line."""
        return (
            f"run {self.done}/{self.total} id={run_id} "
            f"scenario={scenario} seed={seed} "
            f"sim={sim:.3f}s wall={wall:.2f}s eta={self.eta_seconds():.0f}s"
        )


class ExperimentRunner:
    """Runs (or loads) one experiment campaign."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        cluster: Optional[Cluster] = None,
        cache_dir: str = DEFAULT_CACHE_DIR,
        verbose: bool = False,
    ):
        self.config = config or ExperimentConfig()
        self.cluster = cluster or paper_testbed(self.config.nnodes)
        self.cache_dir = Path(cache_dir)
        self.verbose = verbose
        self.scenarios = paper_scenarios(
            self.config.nnodes, steady=self.config.steady
        )

    # -- cache -----------------------------------------------------------

    @property
    def cache_path(self) -> Path:
        return self.cache_dir / f"results-{self.config.key()}.json"

    def load_cached(self) -> Optional[ExperimentResults]:
        path = self.cache_path
        if path.exists():
            try:
                return ExperimentResults.from_json(path.read_text())
            except (json.JSONDecodeError, KeyError) as exc:
                raise ExperimentError(f"corrupt cache file {path}: {exc}") from exc
        return None

    def _store(self, results: ExperimentResults) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.cache_path.with_suffix(".tmp")
        tmp.write_text(results.to_json())
        os.replace(tmp, self.cache_path)

    # -- execution ---------------------------------------------------------

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[experiments] {msg}", flush=True)

    def _planned_runs(self) -> int:
        """Total simulated runs the campaign will execute (for ETA)."""
        cfg = self.config
        nscen = len(self.scenarios)
        per_bench = (
            (1 + nscen)                                   # app: trace + scenarios
            + len(cfg.skeleton_targets) * (1 + nscen)     # skeletons
            + (1 + nscen)                                 # Class S baseline
        )
        return len(cfg.benchmarks) * per_bench

    def _measure(
        self,
        progress: _CampaignProgress,
        run_id: str,
        scenario_name: str,
        seed: int,
        fn: Callable,
    ):
        """Execute one run, emit its structured log line, count it.

        ``fn`` returns either a ``RunResult`` or a ``(trace, RunResult)``
        pair; the value is passed through unchanged.
        """
        t0 = time.perf_counter()
        value = fn()
        wall = time.perf_counter() - t0
        result = value[1] if isinstance(value, tuple) else value
        progress.record()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("campaign.runs", "campaign runs completed").inc()
            metrics.histogram(
                "campaign.run_wall_seconds", "wall time per campaign run"
            ).observe(wall)
        self._log(progress.line(run_id, scenario_name, seed, result.elapsed, wall))
        return value

    def run(self, force: bool = False) -> ExperimentResults:
        if not force:
            cached = self.load_cached()
            if cached is not None:
                self._log(f"loaded cached results {self.cache_path}")
                return cached

        cfg = self.config
        env = cfg.environment_seed
        from dataclasses import asdict

        results = ExperimentResults(
            config={k: list(v) if isinstance(v, tuple) else v
                    for k, v in asdict(cfg).items()},
            scenario_names=[s.name for s in self.scenarios],
        )
        progress = _CampaignProgress(self._planned_runs())
        self._log(
            f"campaign: {len(cfg.benchmarks)} benchmarks x "
            f"{len(self.scenarios)} scenarios x "
            f"{len(cfg.skeleton_targets)} skeleton sizes = "
            f"{progress.total} runs"
        )

        for bench in cfg.benchmarks:
            program = get_program(bench, cfg.klass, cfg.nprocs, cfg.workload_seed)
            trace, ded = self._measure(
                progress, f"{bench}.{cfg.klass}/trace", "dedicated", 0,
                lambda: trace_program(program, self.cluster),
            )
            breakdown = activity_breakdown(trace)
            app_entry = {
                "dedicated": ded.elapsed,
                "mpi_percent": breakdown.mpi_percent,
                "compute_percent": breakdown.compute_percent,
                "n_calls": trace.n_calls(),
                "scenarios": {},
            }
            for scen in self.scenarios:
                seed = derive_seed(env, "app", bench, scen.name)
                run = self._measure(
                    progress, f"{bench}.{cfg.klass}/app", scen.name, seed,
                    lambda: run_program(program, self.cluster, scen, seed=seed),
                )
                app_entry["scenarios"][scen.name] = run.elapsed
            results.apps[bench] = app_entry

            # Skeletons of every target size.
            results.skeletons[bench] = {}
            for target in cfg.skeleton_targets:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", SkeletonQualityWarning)
                    bundle = build_skeleton(trace, target_seconds=target)
                skel_id = f"{bench}.{cfg.klass}/skel-{target:g}"
                skel_trace, skel_ded = self._measure(
                    progress, skel_id, "dedicated", 0,
                    lambda: trace_program(bundle.program, self.cluster),
                )
                skel_breakdown = activity_breakdown(skel_trace)
                entry = {
                    "K": bundle.K,
                    "threshold": bundle.signature.threshold,
                    "compression_ratio": bundle.signature.compression_ratio,
                    "dedicated": skel_ded.elapsed,
                    "mpi_percent": skel_breakdown.mpi_percent,
                    "compute_percent": skel_breakdown.compute_percent,
                    "min_good": bundle.goodness.min_good_seconds,
                    "flagged": bundle.flagged,
                    "scenarios": {},
                }
                for scen in self.scenarios:
                    seed = derive_seed(env, "skel", bench, target, scen.name)
                    run = self._measure(
                        progress, skel_id, scen.name, seed,
                        lambda: run_program(
                            bundle.program, self.cluster, scen, seed=seed
                        ),
                    )
                    entry["scenarios"][scen.name] = run.elapsed
                results.skeletons[bench][f"{target:g}"] = entry
                self._log(
                    f"  skeleton {target:g}s: K={bundle.K:.1f} "
                    f"dedicated={skel_ded.elapsed:.3f}s"
                )

            # Class S baseline runs.
            s_prog = get_program(
                bench, cfg.baseline_klass, cfg.nprocs, cfg.workload_seed
            )
            s_id = f"{bench}.{cfg.baseline_klass}/class-s"
            s_ded = self._measure(
                progress, s_id, "dedicated", 0,
                lambda: run_program(s_prog, self.cluster),
            )
            s_entry = {"dedicated": s_ded.elapsed, "scenarios": {}}
            for scen in self.scenarios:
                seed = derive_seed(env, "class_s", bench, scen.name)
                run = self._measure(
                    progress, s_id, scen.name, seed,
                    lambda: run_program(s_prog, self.cluster, scen, seed=seed),
                )
                s_entry["scenarios"][scen.name] = run.elapsed
            results.class_s[bench] = s_entry

        self._store(results)
        self._log(f"stored results at {self.cache_path}")
        return results


def run_experiments(
    config: Optional[ExperimentConfig] = None,
    cluster: Optional[Cluster] = None,
    cache_dir: str = DEFAULT_CACHE_DIR,
    force: bool = False,
    verbose: bool = False,
) -> ExperimentResults:
    """Run or load the experiment campaign for ``config``."""
    runner = ExperimentRunner(
        config=config, cluster=cluster, cache_dir=cache_dir, verbose=verbose
    )
    return runner.run(force=force)
