"""Error anatomy: decompose skeleton prediction error into its sources.

The paper names the suspects — approximation in skeleton construction
(clustering, averaging, remainder scaling; §3.3/§4.4) versus plain
measurement variance of a shared system. This experiment separates
them for one benchmark:

* **replay error** — a K=1 skeleton vs the application under *steady*
  contention: pure trace-replay fidelity (should be ~0);
* **construction error** — the scaled skeleton vs the application
  under steady contention: what clustering/averaging/scaling cost,
  with no environment noise at all;
* **environment error** — the same skeleton under bursty contention
  (single probe): construction error plus sampling noise — the
  deployed regime;
* **multi-probe residual** — the mean of several probes: what remains
  once sampling noise is averaged away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.contention import Scenario
from repro.cluster.topology import Cluster
from repro.core.construct import build_skeleton
from repro.ext.multiprobe import predict_interval
from repro.predict.metrics import prediction_error_percent
from repro.predict.predictor import SkeletonPredictor
from repro.sim.program import Program, run_program
from repro.trace.tracer import trace_program
from repro.util.rng import derive_seed
from repro.util.tables import Table


@dataclass(frozen=True)
class ErrorAnatomy:
    """Decomposed error sources for one benchmark + scenario pair."""

    program_name: str
    scenario_name: str
    target_seconds: float
    replay_error: float        # K=1, steady
    construction_error: float  # K=target, steady
    single_probe_error: float  # K=target, bursty, one probe
    multi_probe_error: float   # K=target, bursty, mean of probes

    def render(self) -> str:
        table = Table(
            title=(
                f"Error anatomy — {self.program_name} under "
                f"{self.scenario_name} ({self.target_seconds:g}s skeleton)"
            ),
            columns=["source", "error %"],
        )
        table.add_row("trace replay (K=1, steady)", self.replay_error)
        table.add_row("skeleton construction (steady)", self.construction_error)
        table.add_row("single probe (bursty)", self.single_probe_error)
        table.add_row(
            "multi-probe mean (bursty)", self.multi_probe_error
        )
        return table.render()


def analyze_error_sources(
    program: Program,
    cluster: Cluster,
    steady_scenario: Scenario,
    bursty_scenario: Scenario,
    target_seconds: float,
    n_probes: int = 5,
    seed: int = 0,
) -> ErrorAnatomy:
    """Run the four-way decomposition for one program."""
    trace, dedicated = trace_program(program, cluster)

    # Ground truths.
    steady_actual = run_program(program, cluster, steady_scenario).elapsed
    bursty_actual = run_program(
        program, cluster, bursty_scenario,
        seed=derive_seed(seed, "anatomy-actual"),
    ).elapsed

    # K=1 replay under steady contention.
    replay = build_skeleton(trace, scaling_factor=1.0, warn=False)
    replay_time = run_program(replay.program, cluster, steady_scenario).elapsed
    replay_error = prediction_error_percent(replay_time, steady_actual)

    # Scaled skeleton.
    bundle = build_skeleton(trace, target_seconds=target_seconds, warn=False)
    predictor = SkeletonPredictor(
        bundle.program, dedicated.elapsed, cluster, seed=seed
    )
    construction_pred = predictor.predict(steady_scenario)
    construction_error = construction_pred.error_percent(steady_actual)

    single_pred = predictor.predict(bursty_scenario)
    single_error = single_pred.error_percent(bursty_actual)

    interval = predict_interval(
        predictor, bursty_scenario, n_probes=n_probes, base_seed=seed
    )
    multi_error = prediction_error_percent(interval.expected, bursty_actual)

    return ErrorAnatomy(
        program_name=program.name,
        scenario_name=bursty_scenario.name,
        target_seconds=target_seconds,
        replay_error=replay_error,
        construction_error=construction_error,
        single_probe_error=single_error,
        multi_probe_error=multi_error,
    )
