"""Multiprocess campaign scheduler with crash isolation.

``run_parallel_campaign(runner)`` executes an experiment campaign's
task graph (:mod:`repro.parallel.tasks`) on ``runner.workers`` worker
processes:

* the parent keeps a ready queue in serial order; idle workers pull
  the next ready task from it (dynamic load balancing — a worker stuck
  on a slow skeleton build never blocks the others);
* workers share nothing but the on-disk artifact store
  (:mod:`repro.store`): every task's inputs are re-derived from the
  pickled campaign config or fetched from the store by content
  address, so tasks can run on any worker in any order;
* the parent is the only journal writer — workers report results over
  a queue and the parent appends journal entries in the serial
  runner's exact shapes, so parallel and serial campaigns resume each
  other's journals;
* a worker that dies (killed, OOM, crashed) is detected by the
  parent: its in-flight task is re-queued (up to
  ``RetryPolicy.max_attempts`` losses, then the benchmark fails with
  :class:`~repro.errors.WorkerCrashError`) and a fresh worker is
  respawned in its place (``campaign.worker_restarts`` metric);
* a worker that *hangs* (alive but stuck) is detected by the
  :class:`~repro.parallel.supervisor.Supervisor` — workers heartbeat
  through the result queue, and each task carries a soft deadline
  derived from the p95 of completed walls plus an optional hard
  ``--task-timeout``. Overdue workers are cancelled (SIGTERM→SIGKILL),
  respawned, and their task re-queued like a crash, failing with
  :class:`~repro.errors.TaskTimeoutError` on exhaustion;
* results are assembled in serial iteration order from the reported
  payloads, so a parallel campaign's results are **byte-identical**
  to a serial run's (the simulator is deterministic and floats
  round-trip exactly; see ``docs/SCALING.md``).

Per-task spans (which worker ran what, when) are collected into
``runner.campaign_spans`` and exported by
:func:`write_campaign_timeline` as a Chrome trace with one lane per
worker — the campaign-level sibling of
:class:`repro.obs.timeline.TimelineRecorder`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import signal
import threading
import time
import warnings
from typing import Optional, Union

from repro.cluster.contention import DEDICATED
from repro.core.construct import build_skeleton
from repro.errors import ExperimentError, SkeletonQualityWarning, TraceError
from repro.experiments.journal import CampaignJournal
from repro.faults.resilience import RetryPolicy, resilient_call
from repro.obs.metrics import get_metrics
from repro.parallel.supervisor import Supervisor, SupervisorConfig
from repro.parallel.tasks import (
    KIND_APP_RUN,
    KIND_CLASS_S_DED,
    KIND_CLASS_S_RUN,
    KIND_SKEL_BUILD,
    KIND_SKEL_RUN,
    KIND_SKEL_TRACE,
    KIND_TRACE,
    CampaignTask,
    campaign_tasks,
)
from repro.sim.program import run_program
from repro.store.memo import (
    PipelineCache,
    skeleton_program_params,
    workload_params,
)
from repro.store.store import ArtifactStore
from repro.trace.analysis import activity_breakdown
from repro.trace.io import read_trace
from repro.trace.tracer import trace_program
from repro.util.rng import derive_seed
from repro.workloads import get_program

__all__ = ["run_parallel_campaign", "write_campaign_timeline"]

#: Kinds whose payload carries a trace file and activity breakdown.
_TRACED_KINDS = (KIND_TRACE, KIND_SKEL_TRACE)

#: How long the parent waits on the result queue before polling
#: worker liveness (seconds).
_POLL_SECONDS = 0.2


def _preferred_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _WorkerState:
    """Per-worker-process caches: store handles and derived objects."""

    def __init__(self, config, cluster, cache_dir):
        from repro.experiments.runner import campaign_scenarios

        self.config = config
        self.cluster = cluster
        self.cache_dir = cache_dir
        self.store = ArtifactStore(cache_dir)
        self.pipeline = PipelineCache(self.store, cluster)
        self.scenarios = {s.name: s for s in campaign_scenarios(config)}
        self._programs: dict = {}
        self._traces: dict = {}
        self._bundles: dict = {}

    def program(self, bench: str, klass: str):
        k = (bench, klass)
        if k not in self._programs:
            self._programs[k] = get_program(
                bench, klass, self.config.nprocs, self.config.workload_seed
            )
        return self._programs[k]

    def app_params(self, bench: str, klass: str) -> dict:
        return workload_params(
            bench, klass, self.config.nprocs, self.config.workload_seed
        )

    def trace(self, bench: str):
        """The benchmark's dedicated traced run (memoized, store-backed)."""
        if bench not in self._traces:
            params = self.app_params(bench, self.config.klass)
            program = self.program(bench, self.config.klass)
            self._traces[bench] = self.pipeline.traced_run(
                params, lambda: trace_program(program, self.cluster)
            )
        return self._traces[bench]

    def bundle(self, bench: str, target: float):
        """The benchmark's skeleton bundle for ``target`` (memoized)."""
        k = (bench, target)
        if k not in self._bundles:
            params = self.app_params(bench, self.config.klass)
            trace_digest = self.pipeline.trace_key(params).digest

            def _build():
                trace, _ = self.trace(bench)
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", SkeletonQualityWarning)
                    return build_skeleton(trace, target_seconds=target)

            self._bundles[k] = self.pipeline.skeleton(
                trace_digest, target, _build
            )
        return self._bundles[k]


def _breakdown(trace) -> dict:
    bd = activity_breakdown(trace)
    return {
        "mpi_percent": bd.mpi_percent,
        "compute_percent": bd.compute_percent,
        "n_calls": trace.n_calls(),
    }


def _trace_blob_rel(state: _WorkerState, key) -> str:
    path = state.store.blob_path(key, "trace")
    return str(path.relative_to(state.store.root))


def _execute_task(state: _WorkerState, task: CampaignTask, policy) -> dict:
    """Run one task; return its payload fields (no status/bookkeeping)."""
    from repro.store.memo import runresult_to_dict

    cfg = state.config
    pipeline = state.pipeline

    if task.kind == KIND_SKEL_BUILD:
        bundle = state.bundle(task.bench, task.target)
        params = state.app_params(task.bench, cfg.klass)
        trace_digest = pipeline.trace_key(params).digest
        skel_key = pipeline.skeleton_key(trace_digest, task.target)
        return {
            "skeleton": {
                "K": bundle.K,
                "threshold": bundle.signature.threshold,
                "compression_ratio": bundle.signature.compression_ratio,
                "min_good": bundle.goodness.min_good_seconds,
                "flagged": bundle.flagged,
                "digest": skel_key.digest,
            }
        }

    if task.kind == KIND_TRACE:
        def fn():
            return state.trace(task.bench)

        (trace, result), attempts = resilient_call(fn, policy)
        params = state.app_params(task.bench, cfg.klass)
        return {
            "result": runresult_to_dict(result),
            "trace_file": _trace_blob_rel(state, pipeline.trace_key(params)),
            "breakdown": _breakdown(trace),
            "attempts": attempts,
        }

    if task.kind == KIND_APP_RUN:
        params = state.app_params(task.bench, cfg.klass)
        program = state.program(task.bench, cfg.klass)
        scen = state.scenarios[task.scenario]
        seed = task.seed

        def fn():
            return pipeline.simulated_run(
                params, scen, seed,
                lambda: run_program(program, state.cluster, scen, seed=seed),
            )

        result, attempts = resilient_call(fn, policy)
        return {"result": runresult_to_dict(result), "attempts": attempts}

    if task.kind in (KIND_SKEL_TRACE, KIND_SKEL_RUN):
        bundle = state.bundle(task.bench, task.target)
        app_params = state.app_params(task.bench, cfg.klass)
        trace_digest = pipeline.trace_key(app_params).digest
        skel_digest = pipeline.skeleton_key(trace_digest, task.target).digest
        skel_params = skeleton_program_params(skel_digest)
        if task.kind == KIND_SKEL_TRACE:
            def fn():
                return pipeline.traced_run(
                    skel_params,
                    lambda: trace_program(bundle.program, state.cluster),
                )

            (trace, result), attempts = resilient_call(fn, policy)
            return {
                "result": runresult_to_dict(result),
                "trace_file": _trace_blob_rel(
                    state, pipeline.trace_key(skel_params)
                ),
                "breakdown": _breakdown(trace),
                "attempts": attempts,
            }
        scen = state.scenarios[task.scenario]
        seed = task.seed

        def fn():
            return pipeline.simulated_run(
                skel_params, scen, seed,
                lambda: run_program(
                    bundle.program, state.cluster, scen, seed=seed
                ),
            )

        result, attempts = resilient_call(fn, policy)
        return {"result": runresult_to_dict(result), "attempts": attempts}

    if task.kind in (KIND_CLASS_S_DED, KIND_CLASS_S_RUN):
        params = state.app_params(task.bench, cfg.baseline_klass)
        program = state.program(task.bench, cfg.baseline_klass)
        if task.kind == KIND_CLASS_S_DED:
            def fn():
                return pipeline.simulated_run(
                    params, DEDICATED, 0,
                    lambda: run_program(program, state.cluster),
                )
        else:
            scen = state.scenarios[task.scenario]
            seed = task.seed

            def fn():
                return pipeline.simulated_run(
                    params, scen, seed,
                    lambda: run_program(
                        program, state.cluster, scen, seed=seed
                    ),
                )

        result, attempts = resilient_call(fn, policy)
        return {"result": runresult_to_dict(result), "attempts": attempts}

    raise ExperimentError(f"unknown campaign task kind {task.kind!r}")


def _worker_main(
    worker_id, config, cluster, cache_dir, policy, heartbeat_interval,
    kill_at, hang_at, task_q, result_q,
):
    """Worker process: pull tasks, execute, report payloads.

    A daemon thread heartbeats through ``result_q`` every
    ``heartbeat_interval`` seconds (``<= 0`` disables) so the parent's
    supervisor can tell a frozen process from a busy one — the daemon
    keeps beating even while the main thread is stuck in a task.

    Test hooks: ``kill_at`` makes the worker SIGKILL itself upon
    *receiving* its N-th task — before executing or reporting it — to
    exercise dead-worker recovery; ``hang_at`` (``(n, seconds)``)
    makes it sleep ``seconds`` while *holding* its n-th task, to
    exercise hang detection. Both are deterministic.
    """
    state = _WorkerState(config, cluster, cache_dir)
    received = 0
    seq = 0

    def _beat() -> None:
        nonlocal seq
        while True:
            time.sleep(heartbeat_interval)
            seq += 1
            try:
                result_q.put({"hb": True, "worker": worker_id, "seq": seq})
            except Exception:  # queue torn down: parent is gone
                return

    if heartbeat_interval is not None and heartbeat_interval > 0:
        threading.Thread(
            target=_beat, name=f"heartbeat-{worker_id}", daemon=True
        ).start()

    while True:
        task = task_q.get()
        if task is None:
            return
        received += 1
        if kill_at is not None and received >= kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        if hang_at is not None and received == hang_at[0]:
            time.sleep(hang_at[1])
        t0 = time.time()
        try:
            payload = _execute_task(state, task, policy)
            payload["status"] = "ok"
        except Exception as exc:  # report, never kill the worker loop
            payload = {
                "status": "failed",
                "error": str(exc),
                "error_type": type(exc).__name__,
                "attempts": getattr(exc, "attempts", policy.max_attempts),
            }
        payload.update(
            key=task.key,
            kind=task.kind,
            worker=worker_id,
            t_start=t0,
            t_end=time.time(),
        )
        result_q.put(payload)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent's view of one worker: process, its task queue, and the
    task it currently holds (None when idle)."""

    def __init__(self, ctx, worker_id, spawn_args, result_q, kill_at,
                 hang_at=None):
        self.worker_id = worker_id
        self.task_q = ctx.SimpleQueue()
        self.current: Optional[CampaignTask] = None
        self.t_dispatch = 0.0
        self.proc = ctx.Process(
            target=_worker_main,
            args=(
                worker_id, *spawn_args, kill_at, hang_at,
                self.task_q, result_q,
            ),
            name=f"campaign-worker-{worker_id}",
            daemon=True,
        )
        self.proc.start()

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def dispatch(self, task: CampaignTask) -> None:
        self.current = task
        self.t_dispatch = time.time()
        self.task_q.put(task)

    def cancel(self, grace: float) -> None:
        """Cancel a hung worker: SIGTERM, wait ``grace``, escalate to
        SIGKILL."""
        if self.alive:
            self.proc.terminate()
            self.proc.join(timeout=grace)
        if self.alive:
            self.proc.kill()
            self.proc.join(timeout=5.0)

    def shutdown(self) -> None:
        if self.alive:
            self.task_q.put(None)
            self.proc.join(timeout=5.0)
        if self.alive:
            self.proc.terminate()
            self.proc.join(timeout=5.0)


def _payload_from_journal(runner, task: CampaignTask, entry: dict):
    """Rebuild a task payload from its journal entry, or None if the
    journaled artifacts are unusable (forces re-execution)."""
    if entry.get("status") != "ok":
        return None
    base = {"key": task.key, "kind": task.kind, "status": "ok"}
    if task.kind == KIND_SKEL_BUILD:
        meta = entry.get("skeleton")
        if not isinstance(meta, dict) or "K" not in meta:
            return None
        return {**base, "skeleton": meta}
    result = entry.get("result")
    if not isinstance(result, dict):
        return None
    payload = {**base, "result": result}
    if task.kind in _TRACED_KINDS:
        rel = entry.get("trace_file")
        if not rel:
            return None
        try:
            trace = read_trace(runner.cache_dir / rel)
        except (OSError, TraceError):
            return None
        payload["trace_file"] = rel
        payload["breakdown"] = _breakdown(trace)
    return payload


def _journal_entry(payload: dict) -> dict:
    """The journal entry for a payload, in the serial runner's shape."""
    if payload["status"] != "ok":
        return {
            "status": "failed",
            "error": payload.get("error", ""),
            "error_type": payload.get("error_type", "Exception"),
            "attempts": payload.get("attempts", 1),
        }
    if payload["kind"] == KIND_SKEL_BUILD:
        return {"status": "ok", "skeleton": payload["skeleton"]}
    entry = {"status": "ok", "result": payload["result"]}
    if "trace_file" in payload:
        entry["trace_file"] = payload["trace_file"]
    return entry


def _assemble(runner, scenarios, payloads: dict, bench_failures: dict):
    """Build ExperimentResults from payloads in serial iteration order.

    Insertion order of every dict mirrors the serial runner exactly, so
    ``to_json()`` of a parallel campaign is byte-identical to serial.
    """
    from dataclasses import asdict

    from repro.experiments.runner import ExperimentResults

    cfg = runner.config
    results = ExperimentResults(
        config={
            k: list(v) if isinstance(v, tuple) else v
            for k, v in asdict(cfg).items()
        },
        scenario_names=[s.name for s in scenarios],
    )
    for bench in cfg.benchmarks:
        if bench in bench_failures:
            fail = bench_failures[bench]
            results.failures[bench] = {
                "run": fail["key"],
                "error_type": fail.get("error_type", "Exception"),
                "error": fail.get("error", ""),
                "attempts": fail.get("attempts", 1),
            }
            continue
        trace_p = payloads[f"{bench}.{cfg.klass}/trace::dedicated::0"]
        app_entry = {
            "dedicated": trace_p["result"]["elapsed"],
            "mpi_percent": trace_p["breakdown"]["mpi_percent"],
            "compute_percent": trace_p["breakdown"]["compute_percent"],
            "n_calls": trace_p["breakdown"]["n_calls"],
            "scenarios": {},
        }
        for scen in scenarios:
            seed = derive_seed(cfg.environment_seed, "app", bench, scen.name)
            run_p = payloads[f"{bench}.{cfg.klass}/app::{scen.name}::{seed}"]
            app_entry["scenarios"][scen.name] = run_p["result"]["elapsed"]
        results.apps[bench] = app_entry

        results.skeletons[bench] = {}
        for target in cfg.skeleton_targets:
            build_p = payloads[
                f"{bench}.{cfg.klass}/skel-build-{target:g}::dedicated::0"
            ]
            meta = build_p["skeleton"]
            skel_id = f"{bench}.{cfg.klass}/skel-{target:g}"
            skel_trace_p = payloads[f"{skel_id}::dedicated::0"]
            entry = {
                "K": meta["K"],
                "threshold": meta["threshold"],
                "compression_ratio": meta["compression_ratio"],
                "dedicated": skel_trace_p["result"]["elapsed"],
                "mpi_percent": skel_trace_p["breakdown"]["mpi_percent"],
                "compute_percent": skel_trace_p["breakdown"]["compute_percent"],
                "min_good": meta["min_good"],
                "flagged": meta["flagged"],
                "scenarios": {},
            }
            for scen in scenarios:
                seed = derive_seed(
                    cfg.environment_seed, "skel", bench, target, scen.name
                )
                run_p = payloads[f"{skel_id}::{scen.name}::{seed}"]
                entry["scenarios"][scen.name] = run_p["result"]["elapsed"]
            results.skeletons[bench][f"{target:g}"] = entry

        s_id = f"{bench}.{cfg.baseline_klass}/class-s"
        s_ded_p = payloads[f"{s_id}::dedicated::0"]
        s_entry = {"dedicated": s_ded_p["result"]["elapsed"], "scenarios": {}}
        for scen in scenarios:
            seed = derive_seed(cfg.environment_seed, "class_s", bench, scen.name)
            run_p = payloads[f"{s_id}::{scen.name}::{seed}"]
            s_entry["scenarios"][scen.name] = run_p["result"]["elapsed"]
        results.class_s[bench] = s_entry
    return results


def run_parallel_campaign(
    runner,
    kill_plan: Optional[dict] = None,
    hang_plan: Optional[dict] = None,
):
    """Execute ``runner``'s campaign on ``runner.workers`` processes.

    Called by :meth:`ExperimentRunner.run` (which owns the journal
    lifecycle and the results artifact). ``kill_plan`` is a test hook:
    ``{worker_id: n}`` SIGKILLs that worker on its n-th task — applied
    to the first incarnation only, so recovery always converges.
    ``hang_plan`` (``{worker_id: (n, seconds)}``) instead stalls the
    worker on its n-th task, exercising the supervisor.
    """
    from repro.experiments.runner import _CampaignProgress

    if not runner.pipeline.enabled:
        raise ExperimentError(
            "parallel campaigns require the artifact store (use_store=True): "
            "workers exchange traces and skeletons by content address"
        )
    kill_plan = dict(
        kill_plan or getattr(runner, "_campaign_kill_plan", None) or {}
    )
    hang_plan = dict(
        hang_plan or getattr(runner, "_campaign_hang_plan", None) or {}
    )
    cfg = runner.config
    policy = runner.retry_policy
    scenarios = runner.scenarios
    metrics = get_metrics()
    sup_cfg = getattr(runner, "supervisor", None) or SupervisorConfig()
    supervisor = Supervisor(sup_cfg)
    journal: Optional[CampaignJournal] = runner._journal
    tasks = campaign_tasks(cfg, scenarios)
    progress = _CampaignProgress(sum(1 for t in tasks if t.is_run))

    payloads: dict[str, dict] = {}  # key -> ok payload
    failed: dict[str, dict] = {}    # key -> failed payload
    cancelled: set[str] = set()
    bench_failures: dict[str, dict] = {}
    by_key = {t.key: t for t in tasks}
    spans: list[dict] = []
    lost: dict[str, int] = {}

    def _count_task(payload) -> None:
        if not metrics.enabled:
            return
        c = metrics.counter("campaign.tasks", "campaign tasks by worker")
        c.inc()
        if "worker" in payload:
            c.labels(worker=str(payload["worker"])).inc()

    def _fail_bench(payload) -> None:
        task = by_key[payload["key"]]
        prior = bench_failures.get(task.bench)
        if prior is None or by_key[prior["key"]].index > task.index:
            bench_failures[task.bench] = payload

    # Resume: replay the journal before dispatching anything.
    for task in tasks:
        entry = runner._journal_state.get(task.key)
        if entry is None:
            continue
        payload = _payload_from_journal(runner, task, entry)
        if payload is None:
            continue
        payloads[task.key] = payload
        if task.is_run:
            runner.n_resumed += 1
            progress.record()
            if metrics.enabled:
                metrics.counter(
                    "campaign.resumed", "runs reconstructed from journal"
                ).inc()
    if runner.n_resumed:
        runner._log(f"resumed {runner.n_resumed} run(s) from journal")

    def _settled(task: CampaignTask) -> bool:
        return (
            task.key in payloads
            or task.key in failed
            or task.key in cancelled
        )

    def _ready(task: CampaignTask) -> bool:
        if task.bench in bench_failures:
            return False
        return all(dep in payloads for dep in task.deps)

    def _handle(payload: dict) -> None:
        key = payload["key"]
        task = by_key[key]
        _count_task(payload)
        if "t_start" in payload:
            spans.append(
                {
                    "worker": payload.get("worker", -1),
                    "key": key,
                    "kind": task.kind,
                    "t_start": payload["t_start"],
                    "t_end": payload["t_end"],
                    "status": payload["status"],
                }
            )
        if payload["status"] == "ok":
            payloads[key] = payload
            if journal is not None:
                journal.record(key, _journal_entry(payload))
            if task.is_run:
                runner.n_executed += 1
                progress.record()
                wall = payload.get("t_end", 0.0) - payload.get("t_start", 0.0)
                if metrics.enabled:
                    metrics.counter(
                        "campaign.runs", "campaign runs completed"
                    ).inc()
                    metrics.histogram(
                        "campaign.run_wall_seconds",
                        "wall time per campaign run",
                    ).observe(wall)
                result = payload["result"]
                runner._log(
                    progress.line(
                        task.run_id, task.scenario, task.seed,
                        result["elapsed"], wall,
                    )
                )
        else:
            failed[key] = payload
            if journal is not None:
                journal.record(key, _journal_entry(payload))
            if metrics.enabled:
                metrics.counter(
                    "campaign.failures", "campaign runs failed"
                ).inc()
            _fail_bench(payload)
            runner._log(
                f"task {key} FAILED on worker "
                f"{payload.get('worker', '?')}: "
                f"{payload.get('error_type')}: {payload.get('error')}"
            )

    ctx = _preferred_context()
    result_q = ctx.Queue()
    spawn_args = (
        cfg, runner.cluster, str(runner.cache_dir), policy,
        sup_cfg.heartbeat_interval,
    )
    workers = [
        _WorkerHandle(
            ctx, i, spawn_args, result_q,
            kill_plan.pop(i, None), hang_plan.pop(i, None),
        )
        for i in range(runner.workers)
    ]

    def _respawn(handle: _WorkerHandle, why: str = "died") -> _WorkerHandle:
        if metrics.enabled:
            metrics.counter(
                "campaign.worker_restarts", "campaign workers respawned"
            ).inc()
        runner._log(f"worker {handle.worker_id} {why}; respawning")
        return _WorkerHandle(
            ctx, handle.worker_id, spawn_args, result_q, None
        )

    def _lose_task(task: CampaignTask, cause: str = "crash") -> None:
        lost[task.key] = lost.get(task.key, 0) + 1
        if lost[task.key] >= policy.max_attempts:
            if cause == "timeout":
                error_type = "TaskTimeoutError"
                error = (
                    f"task {task.key} exceeded its supervision deadline "
                    f"{lost[task.key]} time(s); worker cancelled"
                )
            else:
                error_type = "WorkerCrashError"
                error = (
                    f"worker died {lost[task.key]} time(s) while "
                    f"running {task.key}"
                )
            _handle(
                {
                    "key": task.key,
                    "kind": task.kind,
                    "status": "failed",
                    "error": error,
                    "error_type": error_type,
                    "attempts": lost[task.key],
                }
            )
        else:
            ready.insert(0, task)

    try:
        # Serial-order ready list; tasks leave it only when dispatched.
        ready: list[CampaignTask] = []
        backlog = [t for t in tasks if not _settled(t)]
        while True:
            # Promote unblocked backlog tasks, cancel doomed ones.
            still = []
            for t in backlog:
                if _settled(t):
                    continue
                if t.bench in bench_failures:
                    cancelled.add(t.key)
                elif _ready(t):
                    ready.append(t)
                else:
                    still.append(t)
            backlog = still
            # Drop ready tasks whose benchmark failed meanwhile.
            doomed = [t for t in ready if t.bench in bench_failures]
            for t in doomed:
                cancelled.add(t.key)
            ready = [t for t in ready if t.bench not in bench_failures]
            if all(_settled(t) for t in tasks):
                break
            for handle in workers:
                if handle.current is None and handle.alive and ready:
                    handle.dispatch(ready.pop(0))
                    supervisor.task_started(
                        handle.worker_id, handle.current.key
                    )
            try:
                payload = result_q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                payload = None
            if payload is not None and payload.get("hb"):
                # Heartbeat, not a result: refresh liveness and fall
                # through to the supervision checks — a steady beat
                # must never starve hang detection.
                supervisor.heartbeat(payload["worker"])
                if metrics.enabled:
                    c = metrics.counter(
                        "supervisor.heartbeats", "worker heartbeats received"
                    )
                    c.inc()
                    c.labels(worker=str(payload["worker"])).inc()
            elif payload is not None:
                for handle in workers:
                    if (
                        handle.current is not None
                        and handle.current.key == payload["key"]
                    ):
                        handle.current = None
                        supervisor.task_finished(handle.worker_id)
                        break
                if "t_start" in payload:
                    supervisor.observe_wall(
                        payload["t_end"] - payload["t_start"]
                    )
                _handle(payload)
                continue
            # No task result this round: check for dead workers holding
            # tasks, then for live-but-hung ones.
            for i, handle in enumerate(workers):
                if handle.alive:
                    continue
                task = handle.current
                handle.current = None
                supervisor.task_finished(handle.worker_id)
                workers[i] = _respawn(handle)
                if task is not None and not _settled(task):
                    _lose_task(task)
            for worker_id, key, runtime, reason in supervisor.overdue():
                i, handle = next(
                    (i, h) for i, h in enumerate(workers)
                    if h.worker_id == worker_id
                )
                task = handle.current
                if task is None or task.key != key:
                    continue  # result arrived between checks
                if metrics.enabled:
                    c = metrics.counter(
                        "supervisor.timeouts", "hung workers cancelled"
                    )
                    c.inc()
                    c.labels(reason=reason).inc()
                runner._log(
                    f"worker {worker_id} hung on {key} "
                    f"({reason}, {runtime:.1f}s); cancelling"
                )
                spans.append(
                    {
                        "worker": worker_id,
                        "key": key,
                        "kind": task.kind,
                        "t_start": handle.t_dispatch,
                        "t_end": time.time(),
                        "status": "timeout",
                        "reason": reason,
                    }
                )
                handle.cancel(sup_cfg.grace_seconds)
                handle.current = None
                workers[i] = _respawn(handle, why="hung; cancelled")
                if not _settled(task):
                    _lose_task(task, cause="timeout")
            if not ready and not backlog and not any(
                h.current for h in workers
            ):
                # Nothing queued, nothing running, yet unsettled tasks
                # remain: a bookkeeping bug — fail loudly, not hang.
                missing = [t.key for t in tasks if not _settled(t)]
                raise ExperimentError(
                    f"parallel campaign stalled with unsettled tasks: "
                    f"{missing[:5]}"
                )
    finally:
        for handle in workers:
            handle.shutdown()
        result_q.close()

    runner.campaign_spans = spans
    return _assemble(runner, scenarios, payloads, bench_failures)


def write_campaign_timeline(
    spans: list, path: Union[str, os.PathLike]
) -> int:
    """Export per-worker campaign task spans as a Chrome trace (one
    thread lane per worker, Perfetto-loadable); returns the span count.

    Timed-out task spans (``status == "timeout"``) are drawn on pid 2
    — the fault lane, matching the
    :class:`repro.obs.timeline.TimelineRecorder` convention — so hangs
    stand out against the ordinary worker lanes.
    """
    scale = 1e6
    t0 = min((s["t_start"] for s in spans), default=0.0)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "campaign workers"},
        }
    ]
    if any(s["status"] == "timeout" for s in spans):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "args": {"name": "faults"},
            }
        )
    for worker in sorted({s["worker"] for s in spans}):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": worker,
                "args": {"name": f"worker {worker}"},
            }
        )
    for s in spans:
        events.append(
            {
                "name": s["key"],
                "cat": s["kind"],
                "ph": "X",
                "ts": (s["t_start"] - t0) * scale,
                "dur": (s["t_end"] - s["t_start"]) * scale,
                "pid": 2 if s["status"] == "timeout" else 0,
                "tid": s["worker"],
                "args": {
                    "status": s["status"],
                    **(
                        {"reason": s["reason"]}
                        if s.get("reason") is not None else {}
                    ),
                },
            }
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh, indent=1)
        fh.write("\n")
    return len(spans)
