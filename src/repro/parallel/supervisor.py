"""Hang detection for parallel campaign workers.

The scheduler (:mod:`repro.parallel.scheduler`) already survives
workers that *die* — the parent notices the dead process and re-queues
its task. This module covers the nastier failure: a worker that is
alive but stuck (an NFS stall inside the store, a runaway simulation,
a kernel-frozen process), which would otherwise block the campaign
forever.

Two complementary signals, both cheap:

* **Soft deadlines.** Every completed task feeds its wall time into a
  running sample; once :attr:`SupervisorConfig.min_samples` tasks have
  finished, a task is presumed hung after
  ``max(soft_factor × p95, max_wall_factor × max)`` of the completed
  walls (clamped to ``[soft_floor, soft_ceiling]``). The max-wall
  guard matters because campaign walls are heavy-tailed and
  multimodal (sub-second class-S runs next to 20 s class-B traces):
  a p95 dominated by the fast family would under-budget the slow one
  and kill healthy tasks — and only *healthy* tasks ever complete, so
  the largest completed wall is exactly the right scale for "how slow
  can healthy be". A hard :attr:`~SupervisorConfig.task_timeout` (the
  CLI's ``--task-timeout``) caps the deadline independently of the
  sample — and is the only deadline before the sample warms up.
* **Heartbeats.** Each worker runs a daemon thread that pushes a
  monotonic heartbeat through the shared result queue every
  :attr:`~SupervisorConfig.heartbeat_interval` seconds. The daemon
  survives a hung *main* thread, so silence means the whole process is
  frozen (SIGSTOP, D-state) — detected after
  ``heartbeat_interval × heartbeat_timeout_factor`` seconds as a
  ``"heartbeat-stall"``.

The parent polls :meth:`Supervisor.overdue` each scheduling round and
cancels offenders with SIGTERM→SIGKILL escalation; the task is
re-queued under the campaign :class:`~repro.faults.resilience.RetryPolicy`
and, on exhaustion, recorded as a structured
:class:`~repro.errors.TaskTimeoutError` failure — exactly like a
worker crash, so the serial↔parallel byte-identical journaling
invariant is untouched.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["Supervisor", "SupervisorConfig"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning for campaign-worker hang detection.

    ``task_timeout`` is the hard per-task wall-clock cap (None: no hard
    cap — only the adaptive soft deadline applies, once warmed up).
    The soft deadline is ``max(soft_factor × p95, max_wall_factor ×
    max)`` of completed task walls, clamped to ``[soft_floor,
    soft_ceiling]``, and engages only after ``min_samples``
    completions. Defaults are deliberately generous: a false kill
    costs a full re-run (and, repeated, could exhaust the retry
    budget), while late detection of a real hang only costs idle
    time. ``heartbeat_interval <= 0`` disables heartbeats (and stall
    detection) entirely.
    """

    task_timeout: Optional[float] = None
    soft_factor: float = 8.0
    soft_floor: float = 10.0
    soft_ceiling: float = 600.0
    max_wall_factor: float = 3.0
    min_samples: int = 5
    grace_seconds: float = 5.0
    heartbeat_interval: float = 1.0
    heartbeat_timeout_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be > 0 when set")
        if self.soft_factor <= 0:
            raise ValueError("soft_factor must be > 0")
        if not 0 < self.soft_floor <= self.soft_ceiling:
            raise ValueError("need 0 < soft_floor <= soft_ceiling")
        if self.max_wall_factor <= 1:
            raise ValueError("max_wall_factor must be > 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.grace_seconds < 0:
            raise ValueError("grace_seconds must be >= 0")
        if self.heartbeat_timeout_factor <= 1:
            raise ValueError("heartbeat_timeout_factor must be > 1")

    @property
    def stall_seconds(self) -> Optional[float]:
        """Silence threshold for heartbeat-stall detection (None: off)."""
        if self.heartbeat_interval <= 0:
            return None
        return self.heartbeat_interval * self.heartbeat_timeout_factor


class Supervisor:
    """Parent-side tracker deciding when a worker's task is overdue.

    Pure bookkeeping over an injectable monotonic ``clock`` — no
    processes, signals, or queues — so deadline policy is unit-testable
    without spawning anything. The scheduler owns the enforcement
    (cancel, respawn, re-queue).
    """

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or SupervisorConfig()
        self._clock = clock
        self._walls: list[float] = []
        #: worker id -> (task key, start clock)
        self._tasks: dict[int, tuple[str, float]] = {}
        self._last_beat: dict[int, float] = {}
        self.n_heartbeats = 0
        self.n_timeouts = 0

    # -- sample ----------------------------------------------------------

    def observe_wall(self, seconds: float) -> None:
        """Feed one completed task's wall time into the p95 sample."""
        if seconds >= 0 and math.isfinite(seconds):
            self._walls.append(seconds)

    def p95(self) -> Optional[float]:
        if not self._walls:
            return None
        ordered = sorted(self._walls)
        return ordered[max(0, math.ceil(0.95 * len(ordered)) - 1)]

    def soft_deadline(self) -> Optional[float]:
        """Adaptive deadline, or None until the sample warms up.

        ``max(soft_factor × p95, max_wall_factor × max)``: the p95 term
        tracks the typical task, the max term keeps a fast-task-heavy
        sample from under-budgeting a legitimately slow family (class-B
        traces among sub-second class-S runs).
        """
        if len(self._walls) < self.config.min_samples:
            return None
        soft = max(
            self.config.soft_factor * self.p95(),
            self.config.max_wall_factor * max(self._walls),
        )
        return min(max(soft, self.config.soft_floor), self.config.soft_ceiling)

    def deadline(self) -> Optional[float]:
        """Effective per-task deadline: min(soft, hard); None if neither
        is in force yet."""
        soft = self.soft_deadline()
        hard = self.config.task_timeout
        if soft is None:
            return hard
        if hard is None:
            return soft
        return min(soft, hard)

    # -- task lifecycle --------------------------------------------------

    def task_started(self, worker_id: int, key: str) -> None:
        now = self._clock()
        self._tasks[worker_id] = (key, now)
        # A fresh dispatch resets the silence window, so a worker is
        # never stalled-on-arrival.
        self._last_beat[worker_id] = now

    def task_finished(self, worker_id: int) -> None:
        self._tasks.pop(worker_id, None)

    def heartbeat(self, worker_id: int) -> None:
        self._last_beat[worker_id] = self._clock()
        self.n_heartbeats += 1

    # -- verdicts --------------------------------------------------------

    def overdue(self) -> list[tuple[int, str, float, str]]:
        """Workers presumed hung: ``(worker_id, key, runtime, reason)``
        with reason ``"deadline"`` or ``"heartbeat-stall"``."""
        now = self._clock()
        deadline = self.deadline()
        stall = self.config.stall_seconds
        out: list[tuple[int, str, float, str]] = []
        for worker_id, (key, t0) in self._tasks.items():
            runtime = now - t0
            if deadline is not None and runtime > deadline:
                out.append((worker_id, key, runtime, "deadline"))
            elif stall is not None and now - self._last_beat[worker_id] > stall:
                out.append((worker_id, key, runtime, "heartbeat-stall"))
        for worker_id, *_ in out:
            self.n_timeouts += 1
            self._tasks.pop(worker_id, None)
        return out
