"""Campaign decomposition into independently runnable tasks.

The serial campaign runner executes one long nested loop (benchmarks ×
scenarios × skeleton sizes). This module flattens that loop into a
list of :class:`CampaignTask` records — each one simulated run or one
skeleton construction — annotated with:

* ``key``    — the *journal* key, chosen to match the serial runner's
  ``"{run_id}::{scenario}::{seed}"`` keys exactly, so a campaign
  journal written by a parallel run resumes under the serial runner
  and vice versa;
* ``deps``   — keys of tasks that must complete first (a skeleton run
  needs its skeleton built; a skeleton build needs the trace);
* ``index``  — the task's position in serial execution order, used to
  assemble results (and pick failure records) byte-identically to a
  serial run.

Tasks carry only primitives, so they pickle cleanly to worker
processes regardless of multiprocessing start method. Everything a
worker needs beyond the task (programs, scenarios, traces) is
re-derived deterministically from the campaign config or fetched from
the artifact store (:mod:`repro.store`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.util.rng import derive_seed

__all__ = [
    "CampaignTask",
    "KIND_APP_RUN",
    "KIND_CLASS_S_DED",
    "KIND_CLASS_S_RUN",
    "KIND_SKEL_BUILD",
    "KIND_SKEL_RUN",
    "KIND_SKEL_TRACE",
    "KIND_TRACE",
    "RUN_KINDS",
    "campaign_tasks",
]

KIND_TRACE = "trace"
KIND_APP_RUN = "app-run"
KIND_SKEL_BUILD = "skel-build"
KIND_SKEL_TRACE = "skel-trace"
KIND_SKEL_RUN = "skel-run"
KIND_CLASS_S_DED = "class-s-ded"
KIND_CLASS_S_RUN = "class-s-run"

#: Kinds that count as campaign *runs* (everything except skeleton
#: construction, mirroring the serial runner's run accounting).
RUN_KINDS = frozenset(
    {
        KIND_TRACE,
        KIND_APP_RUN,
        KIND_SKEL_TRACE,
        KIND_SKEL_RUN,
        KIND_CLASS_S_DED,
        KIND_CLASS_S_RUN,
    }
)


@dataclass(frozen=True)
class CampaignTask:
    """One schedulable unit of campaign work (all-primitive, picklable)."""

    key: str
    kind: str
    bench: str
    run_id: str
    scenario: str
    seed: int
    target: Optional[float] = None
    deps: tuple = field(default=())
    index: int = 0

    @property
    def is_run(self) -> bool:
        return self.kind in RUN_KINDS


def campaign_tasks(
    config: ExperimentConfig, scenarios: Sequence
) -> list[CampaignTask]:
    """Flatten the campaign matrix into tasks in serial execution order."""
    tasks: list[CampaignTask] = []

    def add(kind, bench, run_id, scenario, seed, target=None, deps=()):
        key = f"{run_id}::{scenario}::{seed}"
        tasks.append(
            CampaignTask(
                key=key,
                kind=kind,
                bench=bench,
                run_id=run_id,
                scenario=scenario,
                seed=seed,
                target=target,
                deps=tuple(deps),
                index=len(tasks),
            )
        )
        return key

    env = config.environment_seed
    for bench in config.benchmarks:
        trace_key = add(
            KIND_TRACE, bench, f"{bench}.{config.klass}/trace", "dedicated", 0
        )
        for scen in scenarios:
            add(
                KIND_APP_RUN,
                bench,
                f"{bench}.{config.klass}/app",
                scen.name,
                derive_seed(env, "app", bench, scen.name),
            )
        for target in config.skeleton_targets:
            build_key = add(
                KIND_SKEL_BUILD,
                bench,
                f"{bench}.{config.klass}/skel-build-{target:g}",
                "dedicated",
                0,
                target=target,
                deps=(trace_key,),
            )
            add(
                KIND_SKEL_TRACE,
                bench,
                f"{bench}.{config.klass}/skel-{target:g}",
                "dedicated",
                0,
                target=target,
                deps=(build_key,),
            )
            for scen in scenarios:
                add(
                    KIND_SKEL_RUN,
                    bench,
                    f"{bench}.{config.klass}/skel-{target:g}",
                    scen.name,
                    derive_seed(env, "skel", bench, target, scen.name),
                    target=target,
                    deps=(build_key,),
                )
        s_id = f"{bench}.{config.baseline_klass}/class-s"
        add(KIND_CLASS_S_DED, bench, s_id, "dedicated", 0)
        for scen in scenarios:
            add(
                KIND_CLASS_S_RUN,
                bench,
                s_id,
                scen.name,
                derive_seed(env, "class_s", bench, scen.name),
            )
    return tasks
