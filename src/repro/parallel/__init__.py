"""Multiprocess campaign execution.

* :mod:`repro.parallel.tasks` — flattens a campaign into a dependency-
  annotated task list with serial-compatible journal keys;
* :mod:`repro.parallel.scheduler` — runs that list on N worker
  processes with dead-worker recovery, parent-side journaling, and
  byte-identical-to-serial result assembly;
* :mod:`repro.parallel.supervisor` — heartbeat- and deadline-based
  hang detection for those workers (``--task-timeout``).

Entry point: ``ExperimentRunner(..., workers=N).run()`` or
``repro-skeleton experiment --workers N``.
"""

from repro.parallel.tasks import CampaignTask, campaign_tasks
from repro.parallel.scheduler import run_parallel_campaign, write_campaign_timeline
from repro.parallel.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "CampaignTask",
    "Supervisor",
    "SupervisorConfig",
    "campaign_tasks",
    "run_parallel_campaign",
    "write_campaign_timeline",
]
