"""Multiprocess campaign execution.

* :mod:`repro.parallel.tasks` — flattens a campaign into a dependency-
  annotated task list with serial-compatible journal keys;
* :mod:`repro.parallel.scheduler` — runs that list on N worker
  processes with dead-worker recovery, parent-side journaling, and
  byte-identical-to-serial result assembly.

Entry point: ``ExperimentRunner(..., workers=N).run()`` or
``repro-skeleton experiment --workers N``.
"""

from repro.parallel.tasks import CampaignTask, campaign_tasks
from repro.parallel.scheduler import run_parallel_campaign, write_campaign_timeline

__all__ = [
    "CampaignTask",
    "campaign_tasks",
    "run_parallel_campaign",
    "write_campaign_timeline",
]
