"""Max–min fair fluid resource allocator.

This is the shared kernel behind both contention models in the
simulator:

* a **node's CPUs** form a resource of capacity ``ncpus`` (CPU-units);
  every runnable process is a task with per-task cap 1.0 (a process
  cannot use more than one CPU), so e.g. three runnable processes on a
  dual-CPU node each progress at 2/3 CPU — exactly the situation the
  paper engineers with two competing processes per dual-CPU node;
* a **NIC** is a resource of capacity ``bandwidth`` (bytes/s); every
  in-flight message is a task consuming both the sender's TX resource
  and the receiver's RX resource.

Rates are computed with the classic *progressive filling* algorithm:
conceptually, all unfrozen task rates rise together from zero; a task
freezes when it hits its own cap or when one of its resources
saturates (which freezes every unfrozen task on that resource). The
result is the unique max–min fair allocation. Tasks on disjoint
resource sets are independent, so CPU tasks and network flows can live
in one system without interacting.

Between membership changes all rates are constant, so completion times
are analytic — this is what makes the discrete-event simulation cheap:
the event count scales with the number of messages and compute phases,
not with simulated time.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.metrics import get_metrics

#: Sentinel amount of work for tasks that never finish (competing load).
INFINITE_WORK = math.inf

_EPS = 1e-12


class Resource:
    """A capacity shared max–min fairly by the tasks that use it."""

    __slots__ = ("name", "capacity", "tasks")

    def __init__(self, name: str, capacity: float):
        if capacity < 0:
            raise SimulationError(f"resource {name!r} has negative capacity")
        self.name = name
        self.capacity = float(capacity)
        #: Live tasks currently using this resource.
        self.tasks: set["Task"] = set()

    def set_capacity(self, capacity: float) -> None:
        """Change capacity (used by dynamic throttling scenarios)."""
        if capacity < 0:
            raise SimulationError(f"resource {self.name!r} negative capacity")
        self.capacity = float(capacity)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, cap={self.capacity:g}, n={len(self.tasks)})"


class Task:
    """A unit of fluid work progressing at the allocated fair rate.

    ``work`` is expressed in the resource's units (CPU-seconds for
    compute, bytes for flows). ``cap`` bounds the task's own rate
    irrespective of resource availability. ``speed`` is a multiplier
    applied between allocated rate and progress (used for heterogeneous
    node speeds: the *allocation* is in CPU-units, the *progress* is in
    reference-CPU seconds).
    """

    __slots__ = (
        "name",
        "resources",
        "remaining",
        "cap",
        "speed",
        "rate",
        "on_complete",
        "version",
        "alive",
    )

    def __init__(
        self,
        name: str,
        resources: Iterable[Resource],
        work: float,
        cap: float = math.inf,
        speed: float = 1.0,
        on_complete: Optional[Callable[["Task", float], None]] = None,
    ):
        if work < 0:
            raise SimulationError(f"task {name!r} has negative work")
        if cap <= 0:
            raise SimulationError(f"task {name!r} has non-positive cap")
        self.name = name
        self.resources = tuple(resources)
        self.remaining = float(work)
        self.cap = float(cap)
        self.speed = float(speed)
        #: Currently allocated rate (resource units per second).
        self.rate = 0.0
        self.on_complete = on_complete
        #: Bumped on every reallocation; used to invalidate stale events.
        self.version = 0
        self.alive = False

    @property
    def infinite(self) -> bool:
        return math.isinf(self.remaining)

    def eta(self, now: float) -> float:
        """Absolute completion time at the current rate (inf if stalled)."""
        progress = self.rate * self.speed
        if self.infinite or progress <= _EPS:
            return math.inf
        return now + self.remaining / progress

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Task({self.name!r}, rem={self.remaining:g}, rate={self.rate:g})"
        )


class FluidSystem:
    """The set of live resources and tasks plus the fair-share solver.

    The owner (the simulation engine) drives it with::

        system.sync(now)        # account progress since the last sync
        system.add(task) / system.remove(task)
        system.reallocate()     # recompute all rates
        for task in system.finite_tasks(): schedule task.eta(now)

    :meth:`sync` must be called with the current time *before* any
    membership change so work done at the old rates is banked first.
    """

    def __init__(self) -> None:
        self.tasks: set[Task] = set()
        #: Finite tasks with a positive rate — the only ones whose
        #: remaining work changes as time advances.
        self._progressing: set[Task] = set()
        self._last_sync = 0.0
        metrics = get_metrics()
        self._m_enabled = metrics.enabled
        if self._m_enabled:
            self._m_resettles = metrics.counter(
                "fluid.resettles", "scoped reallocations performed"
            )
            self._m_tasks_resettled = metrics.counter(
                "fluid.tasks_resettled",
                "tasks whose rate was recomputed across all resettles",
            )
            self._m_component_size = metrics.histogram(
                "fluid.component_size",
                "tasks per recomputed component (1-in-32 sampled)",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            )
            # Plain-int tallies: reallocate_scoped runs several times
            # per message, so per-call Counter.inc would dominate the
            # enabled-mode overhead. flush_metrics() moves the totals
            # into the registry once per run.
            self._n_resettles = 0
            self._n_tasks_resettled = 0

    # -- membership ---------------------------------------------------

    def add(self, task: Task) -> None:
        if task.alive:
            raise SimulationError(f"task {task.name!r} added twice")
        task.alive = True
        self.tasks.add(task)
        for res in task.resources:
            res.tasks.add(task)

    def remove(self, task: Task) -> None:
        if not task.alive:
            raise SimulationError(f"task {task.name!r} not in system")
        task.alive = False
        task.version += 1
        self.tasks.discard(task)
        self._progressing.discard(task)
        for res in task.resources:
            res.tasks.discard(task)

    # -- progress accounting -------------------------------------------

    def sync(self, now: float) -> None:
        """Bank the work done at current rates since the last sync."""
        dt = now - self._last_sync
        if dt < -1e-9:
            raise SimulationError(
                f"time moved backwards: {self._last_sync} -> {now}"
            )
        if dt > 0:
            for task in self._progressing:
                task.remaining -= task.rate * task.speed * dt
                if task.remaining < 0:
                    # Numerical dust from float arithmetic.
                    task.remaining = 0.0
        self._last_sync = max(self._last_sync, now)

    # -- max-min fair allocation ---------------------------------------

    def reallocate(self) -> None:
        """Recompute every task's rate with progressive filling."""
        self._fill(self.tasks)

    def component(self, seed_resources: Iterable[Resource]) -> set[Task]:
        """All tasks transitively sharing resources with the seeds.

        Tasks outside the component share no resource with it, so their
        max–min fair rates are unaffected by any change inside it; this
        is what makes scoped reallocation exact.
        """
        seen_res: set[Resource] = set()
        seen_tasks: set[Task] = set()
        stack = list(seed_resources)
        while stack:
            res = stack.pop()
            if res in seen_res:
                continue
            seen_res.add(res)
            for task in res.tasks:
                if task not in seen_tasks:
                    seen_tasks.add(task)
                    stack.extend(task.resources)
        return seen_tasks

    def reallocate_scoped(self, dirty_resources: Iterable[Resource]) -> set[Task]:
        """Recompute rates only for the affected component(s).

        Returns the set of tasks whose rates were recomputed (callers
        reschedule completion events for exactly those).
        """
        affected = self.component(dirty_resources)
        self._fill(affected)
        if self._m_enabled:
            self._n_resettles += 1
            self._n_tasks_resettled += len(affected)
            # Sampling the size distribution keeps the enabled
            # overhead in budget.
            if not self._n_resettles & 31:
                self._m_component_size.observe(len(affected))
        return affected

    def flush_metrics(self) -> None:
        """Move accumulated tallies into the registry (end of run)."""
        if self._m_enabled and self._n_resettles:
            self._m_resettles.inc(self._n_resettles)
            self._m_tasks_resettled.inc(self._n_tasks_resettled)
            self._n_resettles = 0
            self._n_tasks_resettled = 0

    def _fill(self, tasks: Iterable[Task]) -> None:
        """Progressive filling over ``tasks`` (a resource-closed set)."""
        tasks = set(tasks)
        progressing = self._progressing
        for task in tasks:
            task.rate = 0.0
            task.version += 1
            progressing.discard(task)
        if not tasks:
            return

        unfrozen = set(tasks)
        avail = {res: res.capacity for task in tasks for res in task.resources}
        # Unfrozen user count per resource.
        users: dict[Resource, int] = {res: 0 for res in avail}
        for task in tasks:
            for res in task.resources:
                users[res] += 1

        level = 0.0
        # Each iteration freezes at least one task, so this terminates.
        while unfrozen:
            # Largest uniform increment before a resource saturates...
            delta = math.inf
            for res, n in users.items():
                if n > 0:
                    delta = min(delta, avail[res] / n)
            # ... or a task reaches its cap.
            for task in unfrozen:
                delta = min(delta, task.cap - level)
            if delta is math.inf:
                # No constraints at all (tasks with no resources).
                for task in unfrozen:
                    task.rate = task.cap
                break
            delta = max(delta, 0.0)
            level += delta
            for res in list(users):
                if users[res] > 0:
                    avail[res] -= delta * users[res]

            newly_frozen = []
            for task in unfrozen:
                if task.cap - level <= _EPS:
                    newly_frozen.append(task)
                    continue
                for res in task.resources:
                    if avail[res] <= _EPS * max(1.0, res.capacity):
                        newly_frozen.append(task)
                        break
            if not newly_frozen:
                # Defensive: avoid an infinite loop on numerical edge
                # cases by freezing everything at the current level.
                newly_frozen = list(unfrozen)
            for task in newly_frozen:
                task.rate = level
                unfrozen.discard(task)
                for res in task.resources:
                    users[res] -= 1

        for task in tasks:
            if task.rate > 0 and not task.infinite:
                progressing.add(task)

    # -- queries --------------------------------------------------------

    def finite_tasks(self) -> list[Task]:
        """Tasks that will complete (for event scheduling)."""
        return [t for t in self.tasks if not t.infinite]

    @property
    def now(self) -> float:
        return self._last_sync
