"""Discrete-event simulator of message-passing programs on a cluster.

The simulator is the substrate that replaces the paper's physical
testbed (dual-Xeon cluster + MPICH + iproute2 throttling). It models:

* **CPU contention** — each node is a processor-sharing resource; all
  runnable processes (application ranks in a compute phase plus any
  competing load processes) share the node's CPUs max–min fairly, each
  capped at one CPU.
* **Network contention** — each message is a fluid flow through the
  sender's TX NIC and the receiver's RX NIC; concurrent flows share NIC
  capacity max–min fairly. Message cost = latency + bytes/rate, so the
  fixed latency component the paper identifies as unscalable (§3.3) is
  explicitly present.
* **MPI semantics** — eager/rendezvous point-to-point protocol, message
  matching with wildcards and per-pair FIFO ordering, non-blocking
  requests, and MPICH-style collective algorithm decompositions.

Programs are plain Python generator functions; see
:mod:`repro.sim.program`.
"""

from repro.sim.ops import (
    ANY_SOURCE,
    ANY_TAG,
    Allgather,
    Allreduce,
    Alltoall,
    Alltoallv,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Recv,
    Reduce,
    ReduceScatter,
    Scan,
    Scatter,
    Send,
    Sendrecv,
    Wait,
    Waitall,
)
from repro.sim.engine import Engine, RunResult
from repro.sim.program import Program, run_program
from repro.sim.api import Comm, mpi_program

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Allgather",
    "Allreduce",
    "Alltoall",
    "Alltoallv",
    "Barrier",
    "Bcast",
    "Compute",
    "Gather",
    "Irecv",
    "Isend",
    "Recv",
    "Reduce",
    "ReduceScatter",
    "Scan",
    "Scatter",
    "Send",
    "Sendrecv",
    "Wait",
    "Waitall",
    "Engine",
    "RunResult",
    "Program",
    "run_program",
    "Comm",
    "mpi_program",
]
