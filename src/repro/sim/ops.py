"""Operation vocabulary for simulated message-passing programs.

A simulated program is a generator that *yields* these operation
objects; the engine performs them and resumes the generator (with a
:class:`RequestHandle` for the non-blocking calls). The vocabulary
mirrors the MPI subset exercised by the NAS benchmarks the paper
traces: point-to-point (blocking and non-blocking), waits, and the
collective family.

Sizes are bytes; compute work is seconds on a dedicated reference CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Wildcard source for receives (matches any sender), like MPI_ANY_SOURCE.
ANY_SOURCE: int = -1
#: Wildcard tag for receives, like MPI_ANY_TAG.
ANY_TAG: int = -1

#: Tags at or above this value are reserved for internal collective
#: decompositions; user programs must use smaller tags.
COLLECTIVE_TAG_BASE: int = 1 << 24


class RequestHandle:
    """Completion handle returned by non-blocking operations.

    Only the engine mutates these; programs just pass them to
    :class:`Wait` / :class:`Waitall`.
    """

    __slots__ = (
        "kind",
        "peer",
        "tag",
        "nbytes",
        "done",
        "t_done",
        "t_posted",
        "waiters",
        "msg",
    )

    def __init__(self, kind: str, peer: int, tag: int, nbytes: int):
        self.kind = kind  # "send" | "recv"
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.done = False
        self.t_done = float("nan")
        self.t_posted = float("nan")
        self.waiters: list = []
        self.msg = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"RequestHandle({self.kind}, peer={self.peer}, {state})"


class Op:
    """Base class of every yieldable operation."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Compute(Op):
    """Busy CPU work of ``seconds`` on a dedicated reference CPU.

    Under contention the elapsed time stretches by the inverse of the
    CPU share the process gets.
    """

    seconds: float


@dataclass(frozen=True, slots=True)
class Send(Op):
    """Blocking standard-mode send (eager or rendezvous by size)."""

    dest: int
    nbytes: int
    tag: int = 0


@dataclass(frozen=True, slots=True)
class Recv(Op):
    """Blocking receive. ``source``/``tag`` may be wildcards."""

    source: int = ANY_SOURCE
    nbytes: int = 0
    tag: int = ANY_TAG


@dataclass(frozen=True, slots=True)
class Isend(Op):
    """Non-blocking send; the engine resumes the program with a
    :class:`RequestHandle`."""

    dest: int
    nbytes: int
    tag: int = 0


@dataclass(frozen=True, slots=True)
class Irecv(Op):
    """Non-blocking receive; resumes with a :class:`RequestHandle`."""

    source: int = ANY_SOURCE
    nbytes: int = 0
    tag: int = ANY_TAG


@dataclass(frozen=True, slots=True)
class Wait(Op):
    """Block until one request completes."""

    request: RequestHandle


@dataclass(frozen=True, slots=True)
class Waitall(Op):
    """Block until every request in the tuple completes."""

    requests: Tuple[RequestHandle, ...]


@dataclass(frozen=True, slots=True)
class Sendrecv(Op):
    """Combined send+receive (deadlock-free exchange)."""

    dest: int
    send_nbytes: int
    send_tag: int
    source: int
    recv_tag: int


class CollectiveOp(Op):
    """Marker base for collectives (traced as one call, executed as a
    point-to-point decomposition).

    Every collective accepts an optional ``group``: a tuple of global
    ranks forming the sub-communicator (like a comm from
    ``MPI_Comm_split``). ``None`` means COMM_WORLD. Rooted collectives
    take their ``root`` as a *global* rank that must be a member.
    """

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Barrier(CollectiveOp):
    """Dissemination barrier."""

    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Bcast(CollectiveOp):
    """Binomial-tree broadcast of ``nbytes`` from ``root``."""

    root: int
    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Reduce(CollectiveOp):
    """Binomial-tree reduction of ``nbytes`` to ``root``."""

    root: int
    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Allreduce(CollectiveOp):
    """Recursive-doubling allreduce of ``nbytes`` (reduce+bcast when the
    communicator size is not a power of two)."""

    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Allgather(CollectiveOp):
    """Ring allgather; each rank contributes ``nbytes``."""

    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Alltoall(CollectiveOp):
    """Rotation all-to-all; ``nbytes`` exchanged per rank pair."""

    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Alltoallv(CollectiveOp):
    """Vector all-to-all; ``send_counts[d]`` bytes go to (group-local)
    rank ``d``."""

    send_counts: Tuple[int, ...] = field(default=())
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class ReduceScatter(CollectiveOp):
    """Recursive-halving reduce-scatter; each rank contributes and
    receives ``nbytes``."""

    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Scan(CollectiveOp):
    """Linear-chain inclusive prefix reduction of ``nbytes``."""

    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Gather(CollectiveOp):
    """Binomial gather of ``nbytes`` per rank to ``root``."""

    root: int
    nbytes: int
    group: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True, slots=True)
class Scatter(CollectiveOp):
    """Binomial scatter of ``nbytes`` per rank from ``root``."""

    root: int
    nbytes: int
    group: Optional[Tuple[int, ...]] = None


#: Map op classes to the MPI call names used in trace records.
MPI_CALL_NAMES: dict[type, str] = {
    Send: "MPI_Send",
    Recv: "MPI_Recv",
    Isend: "MPI_Isend",
    Irecv: "MPI_Irecv",
    Wait: "MPI_Wait",
    Waitall: "MPI_Waitall",
    Sendrecv: "MPI_Sendrecv",
    Barrier: "MPI_Barrier",
    Bcast: "MPI_Bcast",
    Reduce: "MPI_Reduce",
    Allreduce: "MPI_Allreduce",
    Allgather: "MPI_Allgather",
    Alltoall: "MPI_Alltoall",
    Alltoallv: "MPI_Alltoallv",
    ReduceScatter: "MPI_Reduce_scatter",
    Scan: "MPI_Scan",
    Gather: "MPI_Gather",
    Scatter: "MPI_Scatter",
}


def call_name(op: Op) -> str:
    """MPI call name for a traceable operation."""
    return MPI_CALL_NAMES[type(op)]
