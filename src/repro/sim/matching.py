"""MPI message matching: envelopes, mailboxes, and matching rules.

Matching follows MPI semantics: a receive posted with ``(source, tag)``
— either of which may be a wildcard — matches the earliest compatible
message, and messages between a given (source, destination, tag) triple
are non-overtaking (per-pair FIFO). Matching is by *envelope only*;
payload sizes need not agree (the simulator, like MPI, delivers the
sent size).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.obs.metrics import get_metrics
from repro.sim.ops import ANY_SOURCE, ANY_TAG, RequestHandle


class Message:
    """An in-flight or buffered point-to-point message."""

    __slots__ = (
        "src",
        "dst",
        "tag",
        "nbytes",
        "eager",
        "delivered",
        "t_sent",
        "t_delivered",
        "flow_started",
        "send_req",
        "recv_req",
    )

    def __init__(self, src: int, dst: int, tag: int, nbytes: int, eager: bool):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.eager = eager
        self.delivered = False
        self.t_sent = float("nan")
        self.t_delivered = float("nan")
        self.flow_started = False
        self.send_req: Optional[RequestHandle] = None
        self.recv_req: Optional[RequestHandle] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.src}->{self.dst}, tag={self.tag}, "
            f"bytes={self.nbytes}, {'eager' if self.eager else 'rndv'})"
        )


def _compatible(want_src: int, want_tag: int, src: int, tag: int) -> bool:
    return (want_src == ANY_SOURCE or want_src == src) and (
        want_tag == ANY_TAG or want_tag == tag
    )


class Mailbox:
    """Per-destination-rank matching state.

    When the active metrics registry is enabled, mailboxes report
    matching behaviour — how many sends found a posted receive versus
    arrived unexpected, and how deep the queues got — numbers that
    decide eager/rendezvous cost in real MPI implementations.
    """

    __slots__ = ("rank", "posted", "unexpected", "_m_enabled",
                 "_m_matched", "_m_unexpected", "_m_from_unexpected",
                 "_m_queue_depth", "_n_matched", "_n_unexpected",
                 "_n_from_unexpected")

    def __init__(self, rank: int):
        self.rank = rank
        #: Receive requests posted but not yet matched, in post order.
        self.posted: deque[RequestHandle] = deque()
        #: Messages that arrived (were sent) before a matching receive.
        self.unexpected: deque[Message] = deque()
        metrics = get_metrics()
        self._m_enabled = metrics.enabled
        if self._m_enabled:
            self._m_matched = metrics.counter(
                "match.sends_matched", "sends that found a posted receive"
            )
            self._m_unexpected = metrics.counter(
                "match.sends_unexpected", "sends queued as unexpected"
            )
            self._m_from_unexpected = metrics.counter(
                "match.recvs_from_unexpected",
                "receives satisfied from the unexpected queue",
            )
            self._m_queue_depth = metrics.histogram(
                "match.unexpected_depth",
                "unexpected-queue depth at enqueue time",
                buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128),
            )
            # Plain-int tallies, flushed once per run: matching runs on
            # every message, so per-event Counter.inc would eat the
            # enabled-mode overhead budget.
            self._n_matched = 0
            self._n_unexpected = 0
            self._n_from_unexpected = 0

    def match_send(self, msg: Message) -> Optional[RequestHandle]:
        """Match an incoming send against posted receives.

        Returns the matched receive request (removed from the posted
        queue) or ``None``; in the latter case the caller must enqueue
        the message as unexpected via :meth:`add_unexpected`.
        """
        posted = self.posted
        for i, req in enumerate(posted):
            if _compatible(req.peer, req.tag, msg.src, msg.tag):
                del posted[i]
                if self._m_enabled:
                    self._n_matched += 1
                return req
        return None

    def add_unexpected(self, msg: Message) -> None:
        if self._m_enabled:
            self._n_unexpected += 1
            self._m_queue_depth.observe(len(self.unexpected))
        self.unexpected.append(msg)

    def match_recv(self, source: int, tag: int) -> Optional[Message]:
        """Match a newly posted receive against unexpected messages."""
        unexpected = self.unexpected
        for i, msg in enumerate(unexpected):
            if _compatible(source, tag, msg.src, msg.tag):
                del unexpected[i]
                if self._m_enabled:
                    self._n_from_unexpected += 1
                return msg
        return None

    def add_posted(self, req: RequestHandle) -> None:
        self.posted.append(req)

    def flush_metrics(self) -> None:
        """Move accumulated tallies into the registry (end of run)."""
        if self._m_enabled:
            if self._n_matched:
                self._m_matched.inc(self._n_matched)
            if self._n_unexpected:
                self._m_unexpected.inc(self._n_unexpected)
            if self._n_from_unexpected:
                self._m_from_unexpected.inc(self._n_from_unexpected)
            self._n_matched = 0
            self._n_unexpected = 0
            self._n_from_unexpected = 0

    def outstanding(self) -> tuple[int, int]:
        """(posted receives, unexpected messages) — deadlock diagnostics."""
        return (len(self.posted), len(self.unexpected))
