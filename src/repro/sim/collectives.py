"""MPICH-style point-to-point decompositions of collective operations.

The tracer records a collective as a single MPI call (as a PMPI
profiling library would), but the engine *executes* it as the
decomposition below, so collectives feel network contention exactly the
way their constituent messages do:

* ``Barrier``     — dissemination algorithm (any process count)
* ``Bcast``       — binomial tree
* ``Reduce``      — binomial tree (mirror of bcast)
* ``Allreduce``   — recursive doubling (power of two), otherwise
  reduce-to-0 + bcast
* ``Allgather``   — ring: p-1 rounds of ``nbytes`` to the right
  neighbour (total traffic (p-1)·nbytes per rank, as in MPICH's
  large-message algorithm)
* ``Alltoall(v)`` — rotation: round i sends to ``rank+i`` and receives
  from ``rank-i``
* ``Gather`` / ``Scatter`` — binomial tree with aggregated subtree
  payloads

Every round uses a tag derived from a per-collective sequence number,
so messages from consecutive collectives (or from user point-to-point
traffic) can never cross-match even when ranks are skewed in time.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ProgramError
from repro.sim.ops import (
    COLLECTIVE_TAG_BASE,
    Allgather,
    Allreduce,
    Alltoall,
    Alltoallv,
    Barrier,
    Bcast,
    CollectiveOp,
    Gather,
    Irecv,
    Isend,
    Op,
    Recv,
    Reduce,
    ReduceScatter,
    Scan,
    Scatter,
    Send,
    Waitall,
)

#: Rounds per collective are tagged ``base + round``; 64 rounds is ample
#: for any communicator size we simulate (2^64 ranks).
_ROUND_STRIDE = 64


def _coll_tag(seq: int, round_no: int) -> int:
    return COLLECTIVE_TAG_BASE + (seq * _ROUND_STRIDE + round_no) % (1 << 30)


def _exchange(dest: int, dbytes: int, src: int, tag: int) -> Iterator[Op]:
    """Deadlock-free simultaneous send/recv used by symmetric rounds."""
    rreq = yield Irecv(source=src, nbytes=0, tag=tag)
    sreq = yield Isend(dest=dest, nbytes=dbytes, tag=tag)
    yield Waitall((rreq, sreq))


def barrier(rank: int, size: int, seq: int) -> Iterator[Op]:
    """Dissemination barrier: ceil(log2 p) rounds of zero-byte messages."""
    round_no = 0
    dist = 1
    while dist < size:
        to = (rank + dist) % size
        frm = (rank - dist) % size
        yield from _exchange(to, 0, frm, _coll_tag(seq, round_no))
        dist <<= 1
        round_no += 1


def bcast(rank: int, size: int, root: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Binomial-tree broadcast."""
    vrank = (rank - root) % size
    # Receive from parent (unless root).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield Recv(source=parent, nbytes=nbytes, tag=_coll_tag(seq, 0))
            break
        mask <<= 1
    # Send to children, highest distance first (mirrors MPICH).
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = ((vrank + mask) + root) % size
            yield Send(dest=child, nbytes=nbytes, tag=_coll_tag(seq, 0))
        mask >>= 1


def reduce(rank: int, size: int, root: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Binomial-tree reduction (communication mirror of bcast)."""
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield Send(dest=parent, nbytes=nbytes, tag=_coll_tag(seq, 0))
            break
        else:
            child_v = vrank + mask
            if child_v < size:
                child = (child_v + root) % size
                yield Recv(source=child, nbytes=nbytes, tag=_coll_tag(seq, 0))
        mask <<= 1


def allreduce(rank: int, size: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Recursive doubling when p is a power of two, else reduce+bcast."""
    if size & (size - 1) == 0:
        round_no = 0
        dist = 1
        while dist < size:
            partner = rank ^ dist
            yield from _exchange(partner, nbytes, partner, _coll_tag(seq, round_no))
            dist <<= 1
            round_no += 1
    else:
        yield from reduce(rank, size, 0, nbytes, seq)
        yield from bcast(rank, size, 0, nbytes, seq * 2 + 1)


def allgather(rank: int, size: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Ring allgather: p-1 rounds passing ``nbytes`` to the right."""
    right = (rank + 1) % size
    left = (rank - 1) % size
    for round_no in range(size - 1):
        yield from _exchange(right, nbytes, left, _coll_tag(seq, round_no))


def alltoall(rank: int, size: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Rotation all-to-all: round i pairs rank with rank±i."""
    for i in range(1, size):
        to = (rank + i) % size
        frm = (rank - i) % size
        yield from _exchange(to, nbytes, frm, _coll_tag(seq, i - 1))


def alltoallv(
    rank: int, size: int, send_counts: tuple[int, ...], seq: int
) -> Iterator[Op]:
    """Rotation all-to-all with per-destination byte counts."""
    if len(send_counts) != size:
        raise ProgramError(
            f"alltoallv send_counts has {len(send_counts)} entries for "
            f"{size} ranks"
        )
    for i in range(1, size):
        to = (rank + i) % size
        frm = (rank - i) % size
        yield from _exchange(to, int(send_counts[to]), frm, _coll_tag(seq, i - 1))


def reduce_scatter(rank: int, size: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Recursive halving for powers of two (volume halves each round,
    as in MPICH); otherwise reduce-to-0 followed by a scatter."""
    if size & (size - 1) == 0:
        round_no = 0
        dist = size >> 1
        volume = nbytes * max(1, size // 2)
        while dist >= 1:
            partner = rank ^ dist
            yield from _exchange(partner, volume, partner, _coll_tag(seq, round_no))
            dist >>= 1
            volume = max(1, volume // 2)
            round_no += 1
    else:
        yield from reduce(rank, size, 0, nbytes * size, seq)
        yield from scatter(rank, size, 0, nbytes, seq * 2 + 1)


def scan(rank: int, size: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Linear-chain inclusive scan: partials flow rank 0 -> size-1."""
    if rank > 0:
        yield Recv(source=rank - 1, nbytes=nbytes, tag=_coll_tag(seq, 0))
    if rank < size - 1:
        yield Send(dest=rank + 1, nbytes=nbytes, tag=_coll_tag(seq, 0))


def gather(rank: int, size: int, root: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Binomial gather; an interior node forwards its whole subtree."""
    vrank = (rank - root) % size
    mask = 1
    subtree = nbytes  # bytes this rank holds (own + received children)
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield Send(dest=parent, nbytes=subtree, tag=_coll_tag(seq, 0))
            break
        else:
            child_v = vrank + mask
            if child_v < size:
                child = (child_v + root) % size
                child_subtree = nbytes * min(mask, size - child_v)
                yield Recv(source=child, nbytes=child_subtree, tag=_coll_tag(seq, 0))
                subtree += child_subtree
        mask <<= 1


def scatter(rank: int, size: int, root: int, nbytes: int, seq: int) -> Iterator[Op]:
    """Binomial scatter (communication mirror of gather)."""
    vrank = (rank - root) % size
    # Receive own subtree's payload from parent.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            # Subtree rooted at vrank spans min(mask, size - vrank) ranks.
            sub = nbytes * min(mask, size - vrank)
            yield Recv(source=parent, nbytes=sub, tag=_coll_tag(seq, 0))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = ((vrank + mask) + root) % size
            sub = nbytes * min(mask, size - (vrank + mask))
            yield Send(dest=child, nbytes=sub, tag=_coll_tag(seq, 0))
        mask >>= 1


def _translate_ranks(gen: Iterator[Op], members: tuple[int, ...]) -> Iterator[Op]:
    """Rewrite a decomposition's group-local peers to global ranks.

    Request handles returned by non-blocking ops are forwarded back
    into the wrapped generator unchanged.
    """
    value = None
    while True:
        try:
            op = gen.send(value)
        except StopIteration:
            return
        if isinstance(op, Send):
            op = Send(dest=members[op.dest], nbytes=op.nbytes, tag=op.tag)
        elif isinstance(op, Recv):
            src = members[op.source] if op.source >= 0 else op.source
            op = Recv(source=src, nbytes=op.nbytes, tag=op.tag)
        elif isinstance(op, Isend):
            op = Isend(dest=members[op.dest], nbytes=op.nbytes, tag=op.tag)
        elif isinstance(op, Irecv):
            src = members[op.source] if op.source >= 0 else op.source
            op = Irecv(source=src, nbytes=op.nbytes, tag=op.tag)
        value = yield op


def _expand_local(
    op: CollectiveOp, grank: int, gsize: int, groot: int, seq: int
) -> Iterator[Op]:
    """Decomposition in group-local rank space."""
    if isinstance(op, Barrier):
        return barrier(grank, gsize, seq)
    if isinstance(op, Bcast):
        return bcast(grank, gsize, groot, op.nbytes, seq)
    if isinstance(op, Reduce):
        return reduce(grank, gsize, groot, op.nbytes, seq)
    if isinstance(op, Allreduce):
        return allreduce(grank, gsize, op.nbytes, seq)
    if isinstance(op, Allgather):
        return allgather(grank, gsize, op.nbytes, seq)
    if isinstance(op, Alltoall):
        return alltoall(grank, gsize, op.nbytes, seq)
    if isinstance(op, Alltoallv):
        return alltoallv(grank, gsize, tuple(op.send_counts), seq)
    if isinstance(op, ReduceScatter):
        return reduce_scatter(grank, gsize, op.nbytes, seq)
    if isinstance(op, Scan):
        return scan(grank, gsize, op.nbytes, seq)
    if isinstance(op, Gather):
        return gather(grank, gsize, groot, op.nbytes, seq)
    if isinstance(op, Scatter):
        return scatter(grank, gsize, groot, op.nbytes, seq)
    raise ProgramError(f"unknown collective op {op!r}")


def group_key(members: tuple[int, ...]) -> int:
    """Stable per-communicator tag-space key (the simulator analogue of
    an MPI context id; all ranks derive the same value from the same
    member tuple)."""
    key = 0x811C9DC5
    for m in members:
        key = ((key ^ (m + 1)) * 0x01000193) & 0xFFFFF
    return key


def expand(
    op: CollectiveOp, rank: int, size: int, seq: int
) -> Iterator[Op]:
    """Return the decomposition generator for a collective op.

    For group collectives (``op.group`` set) the decomposition runs in
    group-local rank space, its peers are translated back to global
    ranks, and the tag sequence is salted with the group's context key
    so concurrent disjoint communicators never cross-match.
    """
    members = getattr(op, "group", None)
    if members is None:
        root = getattr(op, "root", 0)
        return _expand_local(op, rank, size, root, seq)
    members = tuple(members)
    if rank not in members:
        raise ProgramError(
            f"rank {rank} executes a collective on group {members} "
            f"it does not belong to"
        )
    if len(set(members)) != len(members):
        raise ProgramError(f"group {members} has duplicate members")
    grank = members.index(rank)
    root = getattr(op, "root", members[0])
    if root not in members:
        raise ProgramError(f"root {root} not in group {members}")
    groot = members.index(root)
    salted_seq = seq * (1 << 8) + group_key(members) % (1 << 8)
    local = _expand_local(op, grank, len(members), groot, salted_seq)
    return _translate_ranks(local, members)


def collective_bytes(op: CollectiveOp, size: int) -> int:
    """Representative payload size recorded in the trace for a collective.

    For sized collectives this is the per-rank contribution (per-pair
    for all-to-all); for ``Alltoallv`` the total sent by this rank.
    """
    if isinstance(op, Barrier):
        return 0
    if isinstance(op, Alltoallv):
        return int(sum(op.send_counts))
    return int(getattr(op, "nbytes"))
