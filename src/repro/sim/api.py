"""mpi4py-flavoured convenience API for writing simulated programs.

Raw programs yield op objects; this wrapper lets program authors write
in the familiar communicator style instead, using ``yield from``::

    from repro.sim.api import mpi_program

    @mpi_program(nranks=4)
    def my_app(comm):
        rank, size = comm.rank, comm.size
        yield from comm.compute(0.01)
        if rank == 0:
            yield from comm.send(dest=1, nbytes=1000, tag=7)
        elif rank == 1:
            yield from comm.recv(source=0, tag=7)
        yield from comm.barrier()
        req = yield from comm.isend(dest=(rank + 1) % size, nbytes=64)
        yield from comm.wait(req)

Each method is a tiny generator yielding the corresponding op;
non-blocking calls *return* the request handle (grab it with
``req = yield from comm.isend(...)``), matching mpi4py's shape as
closely as a generator-based simulator allows.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.sim.ops import (
    ANY_SOURCE,
    ANY_TAG,
    Allgather,
    Allreduce,
    Alltoall,
    Alltoallv,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Op,
    Recv,
    Reduce,
    ReduceScatter,
    RequestHandle,
    Scan,
    Scatter,
    Send,
    Sendrecv,
    Wait,
    Waitall,
)
from repro.sim.program import Program


def _grp(group):
    """Normalise a group argument to the tuple form ops expect."""
    return tuple(group) if group is not None else None


class Comm:
    """The communicator handle passed to ``@mpi_program`` functions.

    Collective methods accept ``group=(ranks...)`` to run on a
    sub-communicator (like mpi4py's ``comm.Split``): only the listed
    global ranks participate, and rooted collectives take the root as
    a global rank that must be a member.
    """

    __slots__ = ("rank", "size")

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size

    # -- compute ---------------------------------------------------------

    def compute(self, seconds: float) -> Iterator[Op]:
        yield Compute(seconds)

    # -- blocking point-to-point ------------------------------------------

    def send(self, dest: int, nbytes: int, tag: int = 0) -> Iterator[Op]:
        yield Send(dest=dest, nbytes=nbytes, tag=tag)

    def recv(
        self, source: int = ANY_SOURCE, nbytes: int = 0, tag: int = ANY_TAG
    ) -> Iterator[Op]:
        yield Recv(source=source, nbytes=nbytes, tag=tag)

    def sendrecv(
        self, dest: int, nbytes: int, source: int,
        sendtag: int = 0, recvtag: int = 0,
    ) -> Iterator[Op]:
        yield Sendrecv(
            dest=dest, send_nbytes=nbytes, send_tag=sendtag,
            source=source, recv_tag=recvtag,
        )

    # -- non-blocking ------------------------------------------------------

    def isend(self, dest: int, nbytes: int, tag: int = 0):
        req = yield Isend(dest=dest, nbytes=nbytes, tag=tag)
        return req

    def irecv(
        self, source: int = ANY_SOURCE, nbytes: int = 0, tag: int = ANY_TAG
    ):
        req = yield Irecv(source=source, nbytes=nbytes, tag=tag)
        return req

    def wait(self, request: RequestHandle) -> Iterator[Op]:
        yield Wait(request)

    def waitall(self, requests: Sequence[RequestHandle]) -> Iterator[Op]:
        yield Waitall(tuple(requests))

    # -- collectives ---------------------------------------------------------

    def barrier(self, group=None) -> Iterator[Op]:
        yield Barrier(group=_grp(group))

    def bcast(self, nbytes: int, root: int = 0, group=None) -> Iterator[Op]:
        yield Bcast(root=root, nbytes=nbytes, group=_grp(group))

    def reduce(self, nbytes: int, root: int = 0, group=None) -> Iterator[Op]:
        yield Reduce(root=root, nbytes=nbytes, group=_grp(group))

    def allreduce(self, nbytes: int, group=None) -> Iterator[Op]:
        yield Allreduce(nbytes=nbytes, group=_grp(group))

    def allgather(self, nbytes: int, group=None) -> Iterator[Op]:
        yield Allgather(nbytes=nbytes, group=_grp(group))

    def alltoall(self, nbytes: int, group=None) -> Iterator[Op]:
        yield Alltoall(nbytes=nbytes, group=_grp(group))

    def alltoallv(self, send_counts: Sequence[int], group=None) -> Iterator[Op]:
        yield Alltoallv(send_counts=tuple(send_counts), group=_grp(group))

    def reduce_scatter(self, nbytes: int, group=None) -> Iterator[Op]:
        yield ReduceScatter(nbytes=nbytes, group=_grp(group))

    def scan(self, nbytes: int, group=None) -> Iterator[Op]:
        yield Scan(nbytes=nbytes, group=_grp(group))

    def gather(self, nbytes: int, root: int = 0, group=None) -> Iterator[Op]:
        yield Gather(root=root, nbytes=nbytes, group=_grp(group))

    def scatter(self, nbytes: int, root: int = 0, group=None) -> Iterator[Op]:
        yield Scatter(root=root, nbytes=nbytes, group=_grp(group))


def mpi_program(
    nranks: int, name: str | None = None
) -> Callable[[Callable[[Comm], Iterator[Op]]], Program]:
    """Decorator turning a ``def app(comm): yield from ...`` function
    into a runnable :class:`~repro.sim.program.Program`."""

    def _wrap(func: Callable[[Comm], Iterator[Op]]) -> Program:
        return Program(
            name=name or func.__name__,
            nranks=nranks,
            make=lambda rank, size: func(Comm(rank, size)),
        )

    return _wrap
