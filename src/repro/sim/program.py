"""Program abstraction and the one-call run helper.

A simulated program is a :class:`Program`: a name, a rank count, and a
factory producing a generator of ops per rank. The generator yields
:mod:`repro.sim.ops` objects; non-blocking ops resume it with a
:class:`~repro.sim.ops.RequestHandle`.

Example::

    from repro.sim import Program, Compute, Send, Recv, run_program
    from repro.cluster import paper_testbed

    def ring(rank, size):
        yield Compute(0.01)
        if rank == 0:
            yield Send(dest=1, nbytes=1000)
            yield Recv(source=size - 1)
        else:
            yield Recv(source=rank - 1)
            yield Send(dest=(rank + 1) % size, nbytes=1000)

    result = run_program(Program("ring", 4, ring), paper_testbed())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.cluster.contention import DEDICATED, Scenario
from repro.cluster.topology import Cluster
from repro.sim.engine import Engine, EngineHook, RunResult, SimConfig
from repro.sim.ops import Op


@dataclass(frozen=True)
class Program:
    """A runnable SPMD program.

    ``make(rank, size)`` must return a fresh generator each call; the
    same :class:`Program` can therefore be run many times (once per
    scenario, once traced, ...).
    """

    name: str
    nranks: int
    make: Callable[[int, int], Iterator[Op]]

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("Program needs nranks >= 1")


def run_program(
    program: Program,
    cluster: Cluster,
    scenario: Scenario = DEDICATED,
    hook: Optional[EngineHook] = None,
    placement: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> RunResult:
    """Run ``program`` on ``cluster`` under ``scenario`` and return the
    :class:`~repro.sim.engine.RunResult`.

    ``seed`` drives the scenario's environment randomness (competing-
    load bursts, traffic fluctuation); repeated runs with different
    seeds sample different sharing conditions, like repeated runs on a
    real shared system.
    """
    config = SimConfig(placement=placement, seed=seed)
    engine = Engine(cluster, scenario=scenario, hook=hook, config=config)
    return engine.run(program)
