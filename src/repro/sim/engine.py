"""The discrete-event engine that executes simulated MPI programs.

Each rank is a stack of generators (the program, plus any collective
decomposition it is currently inside). The engine steps ready ranks,
dispatches the operations they yield, and advances simulated time by
popping fluid-task completions and timers off an event heap.

Timing model
------------

* ``Compute(w)`` — a fluid task of ``w`` reference-CPU-seconds on the
  node's CPU resource; all runnable processes on the node (app ranks in
  a compute phase + competing load) share the CPUs max–min fairly, each
  capped at one CPU.
* point-to-point — a message is a fluid flow through the sender's TX
  NIC and receiver's RX NIC; delivery at ``flow end + latency``. Eager
  messages (≤ threshold) start flowing at send time and cost the sender
  only a local copy (``send_overhead + bytes/memory_bandwidth``);
  rendezvous messages start when both sides have posted (+ handshake
  latencies) and block the sender until delivery.
* intra-node messages cost ``intra_node_latency + bytes/memory_bandwidth``
  and do not touch the NICs.
* collectives — expanded into point-to-point decompositions
  (:mod:`repro.sim.collectives`), but traced as single calls.

The engine is deterministic: heap ties break on insertion order and no
wall-clock state leaks in.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import DeadlockError, ProgramError, SimulationError
from repro.obs.metrics import get_metrics
from repro.cluster.contention import DEDICATED, Scenario
from repro.cluster.topology import Cluster
from repro.sim import collectives as coll
from repro.sim.fluid import INFINITE_WORK, FluidSystem, Resource, Task
from repro.sim.matching import Mailbox, Message
from repro.sim.ops import (
    CollectiveOp,
    Compute,
    Irecv,
    Isend,
    Op,
    Recv,
    RequestHandle,
    Send,
    Sendrecv,
    Wait,
    Waitall,
    call_name,
)

# Event kinds. Background events (load/traffic modulation) re-arm
# themselves forever, so they are excluded from deadlock detection.
_EV_TASK = 0
_EV_TIMER = 1
_EV_BG = 2

# Process states.
_READY = 0
_BLOCKED = 1
_DONE = 2

_BLOCK = object()  # dispatch sentinel: the process must block


class EngineHook:
    """Observer interface; the tracer and the timeline recorder
    implement this. Every method is a no-op by default, so observers
    override only what they need.

    Contract (see also ``docs/API.md``):

    * ``on_run_start(nranks, t)`` fires once per :meth:`Engine.run`,
      before any rank executes, with the rank count and the start time
      (always 0.0).
    * ``on_call`` fires once per completed *user-level* MPI call with
      its simulated start and end times (non-blocking calls have zero
      duration; their completion is visible through the matching
      ``MPI_Wait``). Compute phases are not calls — like the paper's
      profiling library, observers infer compute from inter-call gaps.
      Per rank, calls are reported in order with non-decreasing times.
    * ``on_message`` fires at each point-to-point delivery with the
      envelope and the send/delivery times. Only dispatched when the
      hook class overrides it — the engine never pays for unobserved
      messages.
    * ``on_edge`` fires at each point-to-point delivery (including the
      internal messages of collective decompositions) with the full
      dependency edge: envelope, send time, the time the matching
      receive was posted (NaN when the message was delivered before a
      receive existed), delivery time, and the protocol used. These
      edges are the engine's event dependency DAG, consumed by
      :mod:`repro.diagnose` for wait-state classification and
      critical-path extraction. Like ``on_message``, only dispatched
      when overridden.
    * ``on_sample`` fires every ``sample_period`` simulated seconds
      with ``{resource name: utilization fraction}`` from the fluid
      model (CPUs, NICs, WAN links). Sampling is off while
      ``sample_period`` is 0. Samples piggyback on background events
      and never alter run timing or the reported event count.
    * ``on_fault(kind, target, t_start, t_end, detail)`` fires when a
      fault-plan event is applied (see :mod:`repro.faults`): window
      events fire once at window start with the full window extent,
      message drops fire per delayed message.
    * ``on_run_end(finish_times)`` fires once after the last rank
      finishes.

    Hooks must treat everything they receive as read-only: the engine
    is deterministic, and a hook that mutates engine state voids that
    guarantee.
    """

    #: Simulated-seconds period for ``on_sample``; 0 disables sampling.
    sample_period: float = 0.0

    def on_run_start(self, nranks: int, t: float) -> None:
        pass

    def on_call(
        self, rank: int, name: str, params: dict, t_start: float, t_end: float
    ) -> None:
        pass

    def on_message(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        t_sent: float,
        t_delivered: float,
    ) -> None:
        pass

    def on_edge(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        t_sent: float,
        t_recv_posted: float,
        t_delivered: float,
        eager: bool,
    ) -> None:
        pass

    def on_sample(self, t: float, utilization: dict) -> None:
        pass

    def on_fault(
        self, kind: str, target: str, t_start: float, t_end: float, detail: dict
    ) -> None:
        pass

    def on_run_end(self, finish_times: Sequence[float]) -> None:
        pass


@dataclass
class SimConfig:
    """Engine knobs independent of the cluster description."""

    #: Safety valve: abort after this many engine events.
    max_events: int = 500_000_000
    #: Rank -> node index placement; default is round-robin.
    placement: Optional[Sequence[int]] = None
    #: Seed for the run's environment randomness (load bursts, traffic
    #: fluctuation). Two runs with the same seed are identical.
    seed: int = 0


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated run."""

    program_name: str
    scenario_name: str
    nranks: int
    finish_times: tuple[float, ...]
    elapsed: float
    n_messages: int
    n_events: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"RunResult({self.program_name} under {self.scenario_name}: "
            f"{self.elapsed:.6f}s, {self.n_messages} msgs)"
        )


class _Proc:
    """Execution state of one simulated rank."""

    __slots__ = (
        "rank",
        "node",
        "stack",
        "state",
        "wait_count",
        "pending_call",
        "coll_seqs",
        "finish_time",
        "blocked_on",
        "compute_task",
        "speed_factor",
    )

    def __init__(self, rank: int, node: int, gen: Iterator[Op]):
        self.rank = rank
        self.node = node
        # Stack frames: (generator, call_record-or-None); a call record
        # is (name, params, t_start) emitted when the frame pops.
        self.stack: list[tuple[Iterator[Op], Optional[tuple]]] = [(gen, None)]
        self.state = _READY
        self.wait_count = 0
        self.pending_call: Optional[tuple] = None
        # Per-communicator collective sequence numbers (None = world);
        # members of a communicator agree on these because MPI requires
        # them to issue its collectives in the same order.
        self.coll_seqs: dict = {}
        self.finish_time = math.nan
        # The op the rank is currently blocked in (deadlock diagnostics
        # only; formatted lazily when a deadlock is actually reported).
        self.blocked_on: Optional[Op] = None
        # Live Compute task + fault speed multiplier (rank stalls).
        self.compute_task: Optional[Task] = None
        self.speed_factor = 1.0


def _describe_request(req: RequestHandle) -> str:
    return f"{req.kind} peer={req.peer} tag={req.tag} bytes={req.nbytes}"


def _describe_blocked(proc: _Proc) -> str:
    """Human-readable description of what a blocked rank is waiting on
    (deadlock diagnostics; called only when a deadlock is reported)."""
    op = proc.blocked_on
    if op is None:
        desc = "unknown"
    elif type(op) is Compute:
        desc = f"Compute({op.seconds:g}s)"
    elif type(op) is Send:
        desc = f"Send(dest={op.dest}, tag={op.tag}, bytes={op.nbytes})"
    elif type(op) is Recv:
        desc = f"Recv(source={op.source}, tag={op.tag})"
    elif type(op) is Sendrecv:
        desc = (
            f"Sendrecv(dest={op.dest}, send_tag={op.send_tag}, "
            f"source={op.source}, recv_tag={op.recv_tag})"
        )
    elif type(op) is Wait:
        desc = f"Wait({_describe_request(op.request)})"
    elif type(op) is Waitall:
        pending = [r for r in op.requests if not r.done]
        first = f"; first: {_describe_request(pending[0])}" if pending else ""
        desc = f"Waitall({len(pending)}/{len(op.requests)} pending{first})"
    else:  # pragma: no cover - future op kinds
        desc = type(op).__name__
    # Name the enclosing collective when the rank is blocked inside a
    # collective decomposition.
    for _, record in reversed(proc.stack[1:]):
        if record is not None:
            return f"{record[0]} -> {desc}"
    if len(proc.stack) > 1:
        return f"collective -> {desc}"
    return desc


class Engine:
    """Executes one program per :meth:`run` call on a cluster+scenario."""

    def __init__(
        self,
        cluster: Cluster,
        scenario: Scenario = DEDICATED,
        hook: Optional[EngineHook] = None,
        config: Optional[SimConfig] = None,
    ):
        scenario.validate_against(cluster)
        self.cluster = cluster
        self.scenario = scenario
        self.hook = hook
        self.config = config or SimConfig()
        self._net = cluster.network
        # Dispatch flags resolved once: the engine only pays for hook
        # features the hook's class actually overrides / enables.
        self._emit_messages = (
            hook is not None
            and type(hook).on_message is not EngineHook.on_message
        )
        self._emit_edges = (
            hook is not None
            and type(hook).on_edge is not EngineHook.on_edge
        )
        self._sample_period = (
            float(getattr(hook, "sample_period", 0.0)) if hook is not None else 0.0
        )

        # Mutable per-run state, initialised in run().
        self.now = 0.0
        self._heap: list = []
        self._seq = 0
        self._ready: deque = deque()
        self._fluid = FluidSystem()
        self._fluid_dirty: set = set()
        self._procs: list[_Proc] = []
        self._mailboxes: list[Mailbox] = []
        self._cpu_res: list[Resource] = []
        self._tx_res: list[Resource] = []
        self._rx_res: list[Resource] = []
        self._wan_up: list[Resource] = []
        self._wan_down: list[Resource] = []
        self._ndone = 0
        self._n_messages = 0
        self._n_events = 0
        self._fg_in_heap = 0
        # Fault-injection runtime (None unless the scenario carries a
        # non-empty fault plan; see repro.faults).
        self._injector = None
        self._check_drops = False
        self._cpu_base_cap: list[float] = []
        self._nic_base_cap: list[float] = []
        self._fault_nic_scale: dict[int, float] = {}

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _build_resources(self) -> None:
        cluster, scenario = self.cluster, self.scenario
        self._cpu_res = []
        self._tx_res = []
        self._rx_res = []
        self._cpu_base_cap = []
        self._nic_base_cap = []
        self._fault_nic_scale = {}
        for i, node in enumerate(cluster.nodes):
            self._cpu_res.append(Resource(f"cpu[{node.name}]", float(node.ncpus)))
            self._cpu_base_cap.append(float(node.ncpus))
            nic_cap = scenario.nic_caps.get(i, self._net.bandwidth)
            self._nic_base_cap.append(nic_cap)
            self._tx_res.append(Resource(f"tx[{node.name}]", nic_cap))
            self._rx_res.append(Resource(f"rx[{node.name}]", nic_cap))
        # WAN uplinks: one per site and direction, shared by all of the
        # site's cross-site flows (multi-site clusters only).
        self._wan_up = []
        self._wan_down = []
        if cluster.nsites > 1:
            for s in range(cluster.nsites):
                self._wan_up.append(
                    Resource(f"wan-up[{s}]", self._net.wan_bandwidth)
                )
                self._wan_down.append(
                    Resource(f"wan-down[{s}]", self._net.wan_bandwidth)
                )
        # Competing load: infinite-work CPU tasks. With a load model
        # they burst and pause; otherwise they run steadily forever.
        for node_idx, count in scenario.competing.items():
            for k in range(count):
                if scenario.load_model is not None:
                    self._start_load_process(node_idx, k)
                else:
                    task = Task(
                        name=f"load[{node_idx}.{k}]",
                        resources=(self._cpu_res[node_idx],),
                        work=INFINITE_WORK,
                        cap=1.0,
                    )
                    self._fluid.add(task)
                    self._fluid_dirty.update(task.resources)
        # Fluctuating available bandwidth on throttled links.
        if scenario.traffic_model is not None:
            for node_idx, base_cap in scenario.nic_caps.items():
                self._start_traffic_modulation(node_idx, base_cap)

    def _start_load_process(self, node_idx: int, k: int) -> None:
        """One bursty competing process: busy/idle cycles from a seeded
        stream (see :class:`repro.cluster.contention.LoadModel`)."""
        from repro.util.rng import make_rng

        model = self.scenario.load_model
        rng = make_rng(self.config.seed, "load", node_idx, k)
        cpu = self._cpu_res[node_idx]

        def go_busy(t: float) -> None:
            task = Task(
                name=f"load[{node_idx}.{k}]",
                resources=(cpu,),
                work=INFINITE_WORK,
                cap=1.0,
            )
            self._fluid_add(task)
            busy = rng.uniform(*model.busy_range)
            self._push_bg_timer(t + busy, lambda tt, tk=task: go_idle(tt, tk))

        def go_idle(t: float, task: Task) -> None:
            self._fluid_remove(task)
            idle = rng.uniform(*model.idle_range)
            if idle <= 0:
                go_busy(t)
            else:
                self._push_bg_timer(t + idle, go_busy)

        # Start each process at a random point of its busy/idle cycle
        # so t=0 is not special and even short windows sample the
        # process state distribution.
        mean_busy = 0.5 * (model.busy_range[0] + model.busy_range[1])
        mean_idle = 0.5 * (model.idle_range[0] + model.idle_range[1])
        duty = mean_busy / max(1e-12, mean_busy + mean_idle)
        if rng.random() < duty:
            task = Task(
                name=f"load[{node_idx}.{k}]",
                resources=(cpu,),
                work=INFINITE_WORK,
                cap=1.0,
            )
            self._fluid.add(task)
            self._fluid_dirty.update(task.resources)
            remaining = rng.uniform(0.0, model.busy_range[1])
            self._push_bg_timer(remaining, lambda tt, tk=task: go_idle(tt, tk))
        else:
            self._push_bg_timer(
                rng.uniform(0.0, max(1e-9, model.idle_range[1])), go_busy
            )

    def _start_traffic_modulation(self, node_idx: int, base_cap: float) -> None:
        """Resample a throttled NIC's available bandwidth periodically
        (see :class:`repro.cluster.contention.TrafficModel`)."""
        from repro.util.rng import make_rng

        model = self.scenario.traffic_model
        rng = make_rng(self.config.seed, "traffic", node_idx)
        tx, rx = self._tx_res[node_idx], self._rx_res[node_idx]

        def tick(t: float) -> None:
            factor = 1.0 + model.swing * (2.0 * rng.random() - 1.0)
            cap = base_cap * factor
            # Fault windows (LinkDegrade) scale whatever the traffic
            # model currently allows; remember the pre-fault cap so
            # window edges can recompute from it.
            self._nic_base_cap[node_idx] = cap
            cap *= self._fault_nic_scale.get(node_idx, 1.0)
            self._fluid.sync(self.now)
            tx.set_capacity(cap)
            rx.set_capacity(cap)
            self._fluid_dirty.add(tx)
            self._fluid_dirty.add(rx)
            self._push_bg_timer(t + rng.uniform(*model.period_range), tick)

        self._push_bg_timer(rng.uniform(*model.period_range), tick)

    def _start_sampler(self) -> None:
        """Arm the hook's utilization sampling (background events, so
        the run's timing and foreground event count are unaffected)."""
        period = self._sample_period

        def tick(t: float) -> None:
            self.hook.on_sample(t, self._utilization_snapshot())
            self._push_bg_timer(t + period, tick)

        self._push_bg_timer(period, tick)

    def _utilization_snapshot(self) -> dict:
        """Fraction of each resource's capacity currently allocated."""
        util: dict = {}
        for group in (
            self._cpu_res,
            self._tx_res,
            self._rx_res,
            self._wan_up,
            self._wan_down,
        ):
            for res in group:
                if res.capacity <= 0:
                    continue
                used = sum(task.rate for task in res.tasks)
                util[res.name] = used / res.capacity
        return util

    def _placement(self, nranks: int) -> list[int]:
        if self.config.placement is not None:
            placement = list(self.config.placement)
            if len(placement) != nranks:
                raise SimulationError(
                    f"placement has {len(placement)} entries for {nranks} ranks"
                )
            for node in placement:
                if not 0 <= node < self.cluster.nnodes:
                    raise SimulationError(f"placement references node {node}")
            return placement
        return [r % self.cluster.nnodes for r in range(nranks)]

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def _push_timer(self, t: float, callback: Callable[[float], None]) -> None:
        self._seq += 1
        self._fg_in_heap += 1
        heappush(self._heap, (t, self._seq, _EV_TIMER, callback, 0))

    def _push_bg_timer(self, t: float, callback: Callable[[float], None]) -> None:
        self._seq += 1
        heappush(self._heap, (t, self._seq, _EV_BG, callback, 0))

    def _settle_fluid(self) -> None:
        """Reallocate rates for components touched since the last settle
        and (re)schedule completion events for the affected tasks."""
        dirty = self._fluid_dirty
        if not dirty:
            return
        self._fluid_dirty = set()
        affected = self._fluid.reallocate_scoped(dirty)
        now = self.now
        heap = self._heap
        for task in affected:
            if task.alive and not task.infinite:
                eta = task.eta(now)
                if eta != math.inf:
                    self._seq += 1
                    self._fg_in_heap += 1
                    heappush(heap, (eta, self._seq, _EV_TASK, task, task.version))

    def _fluid_add(self, task: Task) -> None:
        self._fluid.sync(self.now)
        self._fluid.add(task)
        self._fluid_dirty.update(task.resources)

    def _fluid_remove(self, task: Task) -> None:
        self._fluid.sync(self.now)
        self._fluid.remove(task)
        self._fluid_dirty.update(task.resources)

    # ------------------------------------------------------------------
    # fault application (driven by repro.faults.inject.FaultInjector)
    # ------------------------------------------------------------------

    def _fault_scale_cpu(self, node: int, scale: float) -> None:
        """Scale a node's CPU capacity to ``scale`` × its base."""
        res = self._cpu_res[node]
        self._fluid.sync(self.now)
        res.set_capacity(self._cpu_base_cap[node] * scale)
        self._fluid_dirty.add(res)

    def _fault_scale_nic(self, node: int, scale: float) -> None:
        """Scale a node's NIC capacity to ``scale`` × its current
        (traffic-modulated) base."""
        self._fault_nic_scale[node] = scale
        cap = self._nic_base_cap[node] * scale
        tx, rx = self._tx_res[node], self._rx_res[node]
        self._fluid.sync(self.now)
        tx.set_capacity(cap)
        rx.set_capacity(cap)
        self._fluid_dirty.add(tx)
        self._fluid_dirty.add(rx)

    def _fault_scale_rank(self, rank: int, factor: float) -> None:
        """Scale one rank's compute speed (0.0 = fully stalled). The
        rank's live compute task, if any, is re-paced immediately."""
        proc = self._procs[rank]
        proc.speed_factor = factor
        task = proc.compute_task
        if task is not None and task.alive:
            self._fluid.sync(self.now)
            task.speed = self.cluster.nodes[proc.node].speed * factor
            self._fluid_dirty.update(task.resources)

    # ------------------------------------------------------------------
    # request / message plumbing
    # ------------------------------------------------------------------

    def _complete_request(self, req: RequestHandle, t: float) -> None:
        if req.done:
            raise SimulationError("request completed twice")
        req.done = True
        req.t_done = t
        waiters, req.waiters = req.waiters, []
        for proc in waiters:
            proc.wait_count -= 1
            if proc.wait_count == 0:
                proc.state = _READY
                self._ready.append((proc, None))

    def _block_on(self, proc: _Proc, requests: Sequence[RequestHandle]) -> bool:
        """Register proc on incomplete requests; True if it must block."""
        pending = [r for r in requests if not r.done]
        if not pending:
            return False
        proc.state = _BLOCKED
        proc.wait_count = len(pending)
        for req in pending:
            req.waiters.append(proc)
        return True

    def _local_copy_time(self, nbytes: int) -> float:
        return self._net.send_overhead + nbytes / self._net.memory_bandwidth

    def _handshake_delay(self, src_rank: int, dst_rank: int) -> float:
        """Rendezvous RTS/CTS round-trip for a rank pair (site-aware)."""
        src_node = self._procs[src_rank].node
        dst_node = self._procs[dst_rank].node
        latency = self._net.latency
        if self.cluster.site_of(src_node) != self.cluster.site_of(dst_node):
            latency = self._net.wan_latency
        return self._net.handshake_latencies * latency

    def _deliver(self, msg: Message, t: float) -> None:
        msg.delivered = True
        msg.t_delivered = t
        if self._emit_messages:
            self.hook.on_message(
                msg.src, msg.dst, msg.nbytes, msg.tag, msg.t_sent, t
            )
        if self._emit_edges:
            rr = msg.recv_req
            self.hook.on_edge(
                msg.src,
                msg.dst,
                msg.nbytes,
                msg.tag,
                msg.t_sent,
                rr.t_posted if rr is not None else math.nan,
                t,
                msg.eager,
            )
        if msg.recv_req is not None:
            self._complete_request(msg.recv_req, t)
        if not msg.eager and msg.send_req is not None:
            self._complete_request(msg.send_req, t)

    def _start_flow(self, msg: Message, start: float) -> None:
        """Begin the data movement of a matched/eager message."""
        if msg.flow_started:
            raise SimulationError("flow started twice")
        msg.flow_started = True
        src_node = self._procs[msg.src].node
        dst_node = self._procs[msg.dst].node
        if src_node == dst_node:
            dt = self._net.intra_node_latency + msg.nbytes / self._net.memory_bandwidth
            self._push_timer(start + dt, lambda t, m=msg: self._deliver(m, t))
            return
        src_site = self.cluster.site_of(src_node)
        dst_site = self.cluster.site_of(dst_node)
        resources = [self._tx_res[src_node], self._rx_res[dst_node]]
        latency = self._net.latency
        if src_site != dst_site:
            # Cross-site: pay the WAN latency and share the uplinks.
            latency = self._net.wan_latency
            resources.append(self._wan_up[src_site])
            resources.append(self._wan_down[dst_site])
        if self._check_drops:
            # Drop-and-retransmit fault: a dropped message is delivered
            # one retransmit timeout late.
            latency += self._injector.message_penalty(msg.src, msg.dst, start)
        if msg.nbytes == 0:
            self._push_timer(
                start + latency, lambda t, m=msg: self._deliver(m, t)
            )
            return

        def _launch(t0: float, m: Message = msg) -> None:
            task = Task(
                name=f"flow[{m.src}->{m.dst}]",
                resources=tuple(resources),
                work=float(m.nbytes),
                on_complete=lambda task, t: self._push_timer(
                    t + latency, lambda td, mm=m: self._deliver(mm, td)
                ),
            )
            self._fluid_add(task)

        if start <= self.now:
            _launch(self.now)
        else:
            self._push_timer(start, _launch)

    def _post_send(self, proc: _Proc, dest: int, nbytes: int, tag: int) -> RequestHandle:
        if not 0 <= dest < len(self._procs):
            raise ProgramError(f"rank {proc.rank} sends to invalid rank {dest}")
        if dest == proc.rank:
            raise ProgramError(f"rank {proc.rank} sends to itself")
        self._n_messages += 1
        eager = nbytes <= self._net.eager_threshold
        msg = Message(proc.rank, dest, tag, int(nbytes), eager)
        msg.t_sent = self.now
        req = RequestHandle("send", dest, tag, int(nbytes))
        req.t_posted = self.now
        req.msg = msg
        msg.send_req = req

        mailbox = self._mailboxes[dest]
        recv_req = mailbox.match_send(msg)
        if recv_req is not None:
            msg.recv_req = recv_req
            recv_req.msg = msg
        else:
            mailbox.add_unexpected(msg)

        if eager:
            # Data leaves immediately; the sender pays only a local copy.
            self._start_flow(msg, self.now)
            cost = self._local_copy_time(nbytes)
            self._push_timer(
                self.now + cost, lambda t, r=req: self._complete_request(r, t)
            )
        elif recv_req is not None:
            handshake = self._handshake_delay(msg.src, msg.dst)
            self._start_flow(msg, self.now + handshake)
        # Rendezvous without a matched receive: the flow starts when the
        # receive is posted; the send request completes at delivery.
        return req

    def _post_recv(self, proc: _Proc, source: int, tag: int) -> RequestHandle:
        req = RequestHandle("recv", source, tag, 0)
        req.t_posted = self.now
        mailbox = self._mailboxes[proc.rank]
        msg = mailbox.match_recv(source, tag)
        if msg is None:
            mailbox.add_posted(req)
            return req
        msg.recv_req = req
        req.msg = msg
        if msg.delivered:
            self._complete_request(req, self.now)
        elif not msg.eager and not msg.flow_started:
            handshake = self._handshake_delay(msg.src, msg.dst)
            self._start_flow(msg, self.now + handshake)
        return req

    # ------------------------------------------------------------------
    # process stepping
    # ------------------------------------------------------------------

    def _emit_pending_call(self, proc: _Proc) -> None:
        if proc.pending_call is not None:
            name, params, t_start = proc.pending_call
            proc.pending_call = None
            if self.hook is not None:
                self.hook.on_call(proc.rank, name, params, t_start, self.now)

    def _trace_now(self, proc: _Proc, op: Op, params: dict) -> None:
        """Record an instantaneous (non-blocking) user-level call."""
        if self.hook is not None and len(proc.stack) == 1:
            self.hook.on_call(proc.rank, call_name(op), params, self.now, self.now)

    def _begin_blocking_call(self, proc: _Proc, op: Op, params: dict) -> None:
        if self.hook is not None and len(proc.stack) == 1:
            proc.pending_call = (call_name(op), params, self.now)

    def _step(self, proc: _Proc, value) -> None:
        """Advance one rank until it blocks or finishes."""
        self._emit_pending_call(proc)
        while True:
            gen, call_record = proc.stack[-1]
            try:
                op = gen.send(value)
            except StopIteration as stop:
                proc.stack.pop()
                if call_record is not None and self.hook is not None:
                    name, params, t_start = call_record
                    self.hook.on_call(proc.rank, name, params, t_start, self.now)
                if not proc.stack:
                    proc.state = _DONE
                    proc.finish_time = self.now
                    self._ndone += 1
                    return
                value = stop.value
                continue
            value = self._dispatch(proc, op)
            if value is _BLOCK:
                return

    def _dispatch(self, proc: _Proc, op: Op):
        """Perform one yielded op; return the resume value or _BLOCK."""
        user_level = len(proc.stack) == 1

        if type(op) is Compute:
            if op.seconds <= 0:
                return None
            node = self.cluster.nodes[proc.node]
            proc.state = _BLOCKED
            proc.wait_count = 0
            proc.blocked_on = op

            def _done(task: Task, t: float, p: _Proc = proc) -> None:
                # The main loop already removed the task from the fluid
                # system; just wake the process.
                p.compute_task = None
                p.state = _READY
                self._ready.append((p, None))

            task = Task(
                name=f"compute[r{proc.rank}]",
                resources=(self._cpu_res[proc.node],),
                work=float(op.seconds),
                cap=1.0,
                speed=node.speed * proc.speed_factor,
                on_complete=_done,
            )
            proc.compute_task = task
            self._fluid_add(task)
            return _BLOCK

        if type(op) is Send:
            params = {"peer": op.dest, "bytes": op.nbytes, "tag": op.tag}
            req = self._post_send(proc, op.dest, op.nbytes, op.tag)
            if self._block_on(proc, (req,)):
                proc.blocked_on = op
                if user_level:
                    self._begin_blocking_call(proc, op, params)
                return _BLOCK
            self._trace_now(proc, op, params)
            return None

        if type(op) is Recv:
            params = {"peer": op.source, "bytes": op.nbytes, "tag": op.tag}
            if user_level:
                self._begin_blocking_call(proc, op, params)
            req = self._post_recv(proc, op.source, op.tag)
            if self._block_on(proc, (req,)):
                proc.blocked_on = op
                return _BLOCK
            self._emit_pending_call(proc)
            return None

        if type(op) is Isend:
            params = {"peer": op.dest, "bytes": op.nbytes, "tag": op.tag}
            self._trace_now(proc, op, params)
            return self._post_send(proc, op.dest, op.nbytes, op.tag)

        if type(op) is Irecv:
            params = {"peer": op.source, "bytes": op.nbytes, "tag": op.tag}
            self._trace_now(proc, op, params)
            req = self._post_recv(proc, op.source, op.tag)
            # Report the declared receive size (stable regardless of
            # whether the message has already arrived) so downstream
            # Waitall records are timing-independent.
            req.nbytes = op.nbytes
            return req

        if type(op) is Wait:
            if user_level:
                self._begin_blocking_call(proc, op, {"bytes": op.request.nbytes})
            if self._block_on(proc, (op.request,)):
                proc.blocked_on = op
                return _BLOCK
            self._emit_pending_call(proc)
            return None

        if type(op) is Waitall:
            if user_level:
                total = sum(r.nbytes for r in op.requests)
                self._begin_blocking_call(
                    proc, op, {"count": len(op.requests), "bytes": total}
                )
            if self._block_on(proc, tuple(op.requests)):
                proc.blocked_on = op
                return _BLOCK
            self._emit_pending_call(proc)
            return None

        if type(op) is Sendrecv:
            params = {
                "peer": op.dest,
                "bytes": op.send_nbytes,
                "tag": op.send_tag,
                "source": op.source,
            }
            if user_level:
                self._begin_blocking_call(proc, op, params)
            sreq = self._post_send(proc, op.dest, op.send_nbytes, op.send_tag)
            rreq = self._post_recv(proc, op.source, op.recv_tag)
            if self._block_on(proc, (sreq, rreq)):
                proc.blocked_on = op
                return _BLOCK
            self._emit_pending_call(proc)
            return None

        if isinstance(op, CollectiveOp):
            size = len(self._procs)
            members = getattr(op, "group", None)
            comm_key = tuple(members) if members is not None else None
            seq = proc.coll_seqs.get(comm_key, 0)
            proc.coll_seqs[comm_key] = seq + 1
            sub = coll.expand(op, proc.rank, size, seq)
            record = None
            if self.hook is not None and user_level:
                gsize = len(comm_key) if comm_key is not None else size
                params = {"bytes": coll.collective_bytes(op, gsize)}
                root = getattr(op, "root", None)
                if root is not None:
                    params["root"] = root
                if comm_key is not None:
                    params["group"] = list(comm_key)
                record = (call_name(op), params, self.now)
            proc.stack.append((sub, record))
            return None  # first send(None) primes the sub-generator

        raise ProgramError(f"program yielded non-op value {op!r}")

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, program) -> RunResult:
        """Execute ``program`` (a :class:`repro.sim.program.Program`)."""
        nranks = program.nranks
        if nranks < 1:
            raise ProgramError("program needs at least one rank")

        self.now = 0.0
        self._heap = []
        self._seq = 0
        self._ready = deque()
        self._fluid = FluidSystem()
        self._fluid_dirty = set()
        self._ndone = 0
        self._n_messages = 0
        self._n_events = 0
        self._fg_in_heap = 0
        self._mailboxes = [Mailbox(r) for r in range(nranks)]
        self._build_resources()

        placement = self._placement(nranks)
        self._procs = [
            _Proc(rank, placement[rank], program.make(rank, nranks))
            for rank in range(nranks)
        ]
        self._injector = None
        self._check_drops = False
        plan = self.scenario.fault_plan
        if plan is not None and not plan.is_empty:
            from repro.faults.inject import FaultInjector

            self._injector = FaultInjector(self, plan)
            self._injector.arm()
            self._check_drops = self._injector.has_drops
        if self.hook is not None:
            self.hook.on_run_start(nranks, 0.0)
        if self._sample_period > 0:
            self._start_sampler()
        for proc in self._procs:
            self._ready.append((proc, None))
        t_wall = time.perf_counter()

        max_events = self.config.max_events
        heap = self._heap
        while True:
            while self._ready:
                proc, value = self._ready.popleft()
                self._step(proc, value)
            if self._ndone == nranks:
                break
            self._settle_fluid()
            if self._fg_in_heap == 0:
                # Only self-rearming background modulation (or nothing)
                # remains: no blocked rank can ever be woken again.
                blocked = [p for p in self._procs if p.state == _BLOCKED]
                blocked_ops = {p.rank: _describe_blocked(p) for p in blocked}
                detail = "; ".join(
                    f"rank {rank}: {desc}" for rank, desc in blocked_ops.items()
                )
                raise DeadlockError(
                    f"no runnable rank and no pending completion event; "
                    f"blocked: [{detail}]",
                    blocked_ranks=[p.rank for p in blocked],
                    blocked_ops=blocked_ops,
                )
            # Pop the next valid event.
            while heap:
                t, _seq, kind, a, b = heappop(heap)
                if kind == _EV_TASK:
                    self._fg_in_heap -= 1
                    task: Task = a
                    if task.version != b or not task.alive:
                        continue  # stale
                    self._advance_time(t)
                    self._fluid_remove(task)
                    task.on_complete(task, t)
                elif kind == _EV_TIMER:
                    self._fg_in_heap -= 1
                    self._advance_time(t)
                    a(t)
                else:  # background modulation
                    self._advance_time(t)
                    a(t)
                    self._settle_fluid()
                    if not self._ready:
                        continue  # keep popping until foreground work
                self._n_events += 1
                if self._n_events > max_events:
                    raise SimulationError("event budget exhausted")
                break

        finish_times = tuple(p.finish_time for p in self._procs)
        if self.hook is not None:
            self.hook.on_run_end(finish_times)
        # Instrumented components tally in plain ints during the run;
        # their totals land in the registry here, once.
        self._fluid.flush_metrics()
        for mailbox in self._mailboxes:
            mailbox.flush_metrics()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("engine.runs", "simulated runs completed").inc()
            metrics.counter("engine.events", "engine events popped").inc(
                self._n_events
            )
            metrics.counter(
                "engine.messages", "point-to-point messages simulated"
            ).inc(self._n_messages)
            metrics.histogram(
                "engine.run_wall_seconds", "wall time per simulated run"
            ).observe(time.perf_counter() - t_wall)
            metrics.histogram(
                "engine.run_sim_seconds", "simulated time per run"
            ).observe(max(finish_times))
        return RunResult(
            program_name=program.name,
            scenario_name=self.scenario.name,
            nranks=nranks,
            finish_times=finish_times,
            elapsed=max(finish_times),
            n_messages=self._n_messages,
            n_events=self._n_events,
        )

    def _advance_time(self, t: float) -> None:
        if t < self.now - 1e-9:
            raise SimulationError(f"event time regressed: {self.now} -> {t}")
        if t > self.now:
            self._fluid.sync(t)
            self.now = t
