"""Fault injection and resilience.

Two halves, one theme — surviving unreliable shared infrastructure:

* :mod:`repro.faults.plan` / :mod:`repro.faults.inject` — a
  deterministic, seed-driven :class:`FaultPlan` of composable events
  (rank stalls, link degradation/flapping, message drops with a
  retransmit-latency penalty, node slowdown windows, rank crashes)
  compiled into time-varying perturbations of the engine's fluid
  resources. Attach a plan to any
  :class:`~repro.cluster.contention.Scenario` via its ``fault_plan``
  field; :func:`repro.cluster.scenarios.volatile_scenarios` provides
  stock volatile environments.
* :mod:`repro.faults.resilience` — retry-with-backoff and wall-clock
  timeout primitives used by the campaign runner
  (:class:`repro.experiments.runner.ExperimentRunner`) to isolate
  per-run crashes and support ``--resume``.
* :mod:`repro.faults.io` — a deterministic OS-level IO fault harness
  (:class:`IOFaultPlan`): ENOSPC/short/torn writes, EIO reads, rename
  and fsync failures, and injected hangs, installed via the file-op
  shims the artifact store and campaign journal route through. Powers
  the chaos test suite and the ``repro doctor`` self-healing story.

See ``docs/ROBUSTNESS.md`` for the user guide.
"""

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    LinkDegrade,
    MessageDrop,
    NodeSlowdown,
    RankCrash,
    RankStall,
    cpu_burst_plan,
    flapping_link_plan,
    stock_plans,
)
from repro.faults.io import (
    IO_FAULT_KINDS,
    IOFault,
    IOFaultPlan,
    random_plan as random_io_plan,
)
from repro.faults.resilience import RetryPolicy, resilient_call, run_with_timeout

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "IO_FAULT_KINDS",
    "IOFault",
    "IOFaultPlan",
    "LinkDegrade",
    "MessageDrop",
    "NodeSlowdown",
    "RankCrash",
    "RankStall",
    "RetryPolicy",
    "cpu_burst_plan",
    "flapping_link_plan",
    "random_io_plan",
    "resilient_call",
    "run_with_timeout",
    "stock_plans",
]
