"""Compile a :class:`~repro.faults.plan.FaultPlan` into engine events.

The :class:`FaultInjector` is created by the engine at the start of a
run whenever the scenario carries a non-empty fault plan. It arms one
foreground timer per window edge; each timer mutates the fluid system
through small engine helpers (``_fault_scale_cpu`` /
``_fault_scale_nic`` / ``_fault_scale_rank``), so fault windows
compose with the scenario's static contention and traffic modulation.

Overlapping windows on the same target stack multiplicatively; the
product is recomputed from the stack (never by dividing back out), so
repeated apply/revert cycles cannot accumulate float drift.

Observability: every applied window is reported to the engine hook via
``on_fault`` and counted in the ``faults.events`` metric, labelled by
event kind.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import InjectedCrashError
from repro.faults.plan import (
    FaultPlan,
    LinkDegrade,
    MessageDrop,
    NodeSlowdown,
    RankCrash,
    RankStall,
)
from repro.obs.metrics import get_metrics
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class FaultInjector:
    """Runtime state of one fault plan during one engine run."""

    def __init__(self, engine: "Engine", plan: FaultPlan):
        self.engine = engine
        self.plan = plan
        #: Active multiplicative factor stacks, per node index.
        self._cpu_stacks: dict[int, list[float]] = {}
        self._nic_stacks: dict[int, list[float]] = {}
        #: Active stall depth per rank (stall windows may overlap).
        self._stall_depth: dict[int, int] = {}
        self._drops: tuple[MessageDrop, ...] = tuple(
            ev for ev in plan.events if type(ev) is MessageDrop
        )
        self.has_drops = bool(self._drops)
        self._drop_rng = (
            make_rng(engine.config.seed, "fault", "drop") if self.has_drops else None
        )
        metrics = get_metrics()
        self._m_enabled = metrics.enabled
        self._m_events = (
            metrics.counter("faults.events", "fault events applied")
            if self._m_enabled
            else None
        )
        self.n_applied = 0

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        """Validate the plan and schedule every window edge."""
        engine = self.engine
        self.plan.validate_against(engine.cluster.nnodes, len(engine._procs))
        for ev in self.plan.events:
            if type(ev) is NodeSlowdown:
                engine._push_timer(ev.t_start, lambda t, e=ev: self._begin_cpu(e, t))
                engine._push_timer(
                    ev.t_start + ev.duration, lambda t, e=ev: self._end_cpu(e, t)
                )
            elif type(ev) is LinkDegrade:
                engine._push_timer(ev.t_start, lambda t, e=ev: self._begin_nic(e, t))
                engine._push_timer(
                    ev.t_start + ev.duration, lambda t, e=ev: self._end_nic(e, t)
                )
            elif type(ev) is RankStall:
                engine._push_timer(
                    ev.t_start, lambda t, e=ev: self._begin_stall(e, t)
                )
                engine._push_timer(
                    ev.t_start + ev.duration,
                    lambda t, e=ev: self._end_stall(e.rank, t),
                )
            elif type(ev) is RankCrash:
                if ev.restart_delay is None:
                    engine._push_timer(ev.t, lambda t, e=ev: self._crash(e, t))
                else:
                    engine._push_timer(
                        ev.t, lambda t, e=ev: self._begin_crash_restart(e, t)
                    )
                    engine._push_timer(
                        ev.t + ev.restart_delay,
                        lambda t, e=ev: self._end_stall(e.rank, t),
                    )
            # MessageDrop needs no timers; it is consulted per message.

    # -- window callbacks ----------------------------------------------

    def _emit(
        self, kind: str, target: str, t_start: float, t_end: float, detail: dict
    ) -> None:
        self.n_applied += 1
        if self._m_enabled:
            self._m_events.labels(kind=kind).inc()
        hook = self.engine.hook
        if hook is not None:
            hook.on_fault(kind, target, t_start, t_end, detail)

    def _begin_cpu(self, ev: NodeSlowdown, t: float) -> None:
        stack = self._cpu_stacks.setdefault(ev.node, [])
        stack.append(ev.factor)
        self.engine._fault_scale_cpu(ev.node, math.prod(stack))
        self._emit(
            ev.kind,
            f"node {ev.node}",
            t,
            ev.t_start + ev.duration,
            {"factor": ev.factor},
        )

    def _end_cpu(self, ev: NodeSlowdown, t: float) -> None:
        stack = self._cpu_stacks[ev.node]
        stack.remove(ev.factor)
        self.engine._fault_scale_cpu(ev.node, math.prod(stack))

    def _begin_nic(self, ev: LinkDegrade, t: float) -> None:
        stack = self._nic_stacks.setdefault(ev.node, [])
        stack.append(ev.factor)
        self.engine._fault_scale_nic(ev.node, math.prod(stack))
        self._emit(
            ev.kind,
            f"node {ev.node}",
            t,
            ev.t_start + ev.duration,
            {"factor": ev.factor},
        )

    def _end_nic(self, ev: LinkDegrade, t: float) -> None:
        stack = self._nic_stacks[ev.node]
        stack.remove(ev.factor)
        self.engine._fault_scale_nic(ev.node, math.prod(stack))

    def _begin_stall(self, ev: RankStall, t: float) -> None:
        self._stall_rank(ev.rank)
        self._emit(
            ev.kind, f"rank {ev.rank}", t, ev.t_start + ev.duration, {}
        )

    def _begin_crash_restart(self, ev: RankCrash, t: float) -> None:
        self._stall_rank(ev.rank)
        self._emit(
            ev.kind,
            f"rank {ev.rank}",
            t,
            ev.t + ev.restart_delay,
            {"restart_delay": ev.restart_delay},
        )

    def _stall_rank(self, rank: int) -> None:
        depth = self._stall_depth.get(rank, 0) + 1
        self._stall_depth[rank] = depth
        if depth == 1:
            self.engine._fault_scale_rank(rank, 0.0)

    def _end_stall(self, rank: int, t: float) -> None:
        depth = self._stall_depth[rank] - 1
        self._stall_depth[rank] = depth
        if depth == 0:
            self.engine._fault_scale_rank(rank, 1.0)

    def _crash(self, ev: RankCrash, t: float) -> None:
        self._emit(ev.kind, f"rank {ev.rank}", t, t, {"fatal": True})
        raise InjectedCrashError(
            f"rank {ev.rank} crashed at t={t:.6f}s with no restart "
            f"(injected by fault plan {self.plan.name or 'unnamed'!r})",
            rank=ev.rank,
            t=t,
        )

    # -- per-message consultation --------------------------------------

    def message_penalty(self, src: int, dst: int, now: float) -> float:
        """Extra delivery latency for a message entering the network at
        ``now`` (0.0 when no drop window matches or the dice say no)."""
        total = 0.0
        for ev in self._drops:
            if not ev.t_start <= now < ev.t_start + ev.duration:
                continue
            if ev.src is not None and ev.src != src:
                continue
            if ev.dst is not None and ev.dst != dst:
                continue
            if self._drop_rng.random() < ev.prob:
                total += ev.penalty
                self._emit(
                    ev.kind,
                    f"{src}->{dst}",
                    now,
                    now + ev.penalty,
                    {"penalty": ev.penalty},
                )
        return total
