"""Deterministic fault plans.

A :class:`FaultPlan` is an ordered tuple of composable fault events,
each pinned to simulated time. Plans are *compiled data*: any
randomness (flap cadence, burst lengths) is drawn at plan-construction
time from an explicit seed, so the same ``(plan, run seed)`` pair
always produces a byte-identical :class:`~repro.sim.engine.RunResult`.
The one runtime-random event kind, :class:`MessageDrop`, draws from a
stream derived from the run's environment seed in deterministic engine
order.

Event semantics (applied by :mod:`repro.faults.inject`):

* :class:`NodeSlowdown` — the node's CPU capacity is scaled by
  ``factor`` for the window (external interference bursts, thermal
  throttling).
* :class:`LinkDegrade` — the node's NIC TX/RX capacity is scaled by
  ``factor`` for the window; several short windows model a flapping
  link.
* :class:`RankStall` — one rank's compute makes no progress during the
  window (descheduling, OS noise, paging). In-flight communication
  still completes, as with a descheduled process whose NIC keeps
  DMA-ing.
* :class:`RankCrash` — with ``restart_delay`` the rank freezes for that
  long and then resumes (checkpoint/restart on the same node, progress
  preserved); without it the run aborts with
  :class:`~repro.errors.InjectedCrashError` at the crash time.
* :class:`MessageDrop` — during the window each matching message is,
  with probability ``prob``, delivered late by ``penalty`` seconds (one
  lost transmission recovered by a retransmit timeout).

Overlapping windows on the same resource compose multiplicatively.
"""

from __future__ import annotations

import json
import math
from dataclasses import MISSING, asdict, dataclass, fields
from typing import Optional, Union

from repro.errors import FaultError
from repro.util.rng import make_rng


def _check_window(t_start: float, duration: float) -> None:
    if not (t_start >= 0 and math.isfinite(t_start)):
        raise FaultError(f"event start {t_start!r} must be finite and >= 0")
    if not (duration > 0 and math.isfinite(duration)):
        raise FaultError(f"event duration {duration!r} must be finite and > 0")


def _check_factor(factor: float) -> None:
    if not (0 < factor and math.isfinite(factor)):
        raise FaultError(f"capacity factor {factor!r} must be finite and > 0")


@dataclass(frozen=True)
class NodeSlowdown:
    """Scale a node's total CPU capacity by ``factor`` during a window.

    Capacity semantics (like competing processes, not a clock
    throttle): ranks on the node only slow down once the scaled
    capacity falls below their aggregate demand. On a dual-CPU node
    hosting one rank, ``factor=0.5`` leaves a full CPU and has no
    effect; ``factor=0.25`` halves the rank's progress. Use
    :class:`RankStall` for per-rank freezes.
    """

    node: int
    t_start: float
    duration: float
    factor: float

    kind = "node_slowdown"

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.duration)
        _check_factor(self.factor)

    def describe(self) -> str:
        return (
            f"node {self.node} CPUs x{self.factor:g} during "
            f"[{self.t_start:g}, {self.t_start + self.duration:g})s"
        )


@dataclass(frozen=True)
class LinkDegrade:
    """Scale a node's NIC (TX and RX) capacity by ``factor`` during a
    window."""

    node: int
    t_start: float
    duration: float
    factor: float

    kind = "link_degrade"

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.duration)
        _check_factor(self.factor)

    def describe(self) -> str:
        return (
            f"node {self.node} NIC x{self.factor:g} during "
            f"[{self.t_start:g}, {self.t_start + self.duration:g})s"
        )


@dataclass(frozen=True)
class RankStall:
    """Freeze one rank's compute progress during a window."""

    rank: int
    t_start: float
    duration: float

    kind = "rank_stall"

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.duration)

    def describe(self) -> str:
        return (
            f"rank {self.rank} stalled during "
            f"[{self.t_start:g}, {self.t_start + self.duration:g})s"
        )


@dataclass(frozen=True)
class RankCrash:
    """Crash a rank at ``t``; restart after ``restart_delay`` seconds,
    or abort the whole run when ``restart_delay`` is None."""

    rank: int
    t: float
    restart_delay: Optional[float] = None

    kind = "rank_crash"

    def __post_init__(self) -> None:
        if not (self.t >= 0 and math.isfinite(self.t)):
            raise FaultError(f"crash time {self.t!r} must be finite and >= 0")
        if self.restart_delay is not None and not (
            self.restart_delay > 0 and math.isfinite(self.restart_delay)
        ):
            raise FaultError(
                f"restart_delay {self.restart_delay!r} must be finite and > 0"
            )

    def describe(self) -> str:
        if self.restart_delay is None:
            return f"rank {self.rank} crashes at {self.t:g}s (no restart)"
        return (
            f"rank {self.rank} crashes at {self.t:g}s, restarts after "
            f"{self.restart_delay:g}s"
        )


@dataclass(frozen=True)
class MessageDrop:
    """Drop-and-retransmit: during the window each matching message is
    delayed by ``penalty`` seconds with probability ``prob``."""

    t_start: float
    duration: float
    prob: float
    penalty: float
    src: Optional[int] = None
    dst: Optional[int] = None

    kind = "message_drop"

    def __post_init__(self) -> None:
        _check_window(self.t_start, self.duration)
        if not 0 < self.prob <= 1:
            raise FaultError(f"drop probability {self.prob!r} must be in (0, 1]")
        if not (self.penalty > 0 and math.isfinite(self.penalty)):
            raise FaultError(f"retransmit penalty {self.penalty!r} must be > 0")

    def describe(self) -> str:
        scope = []
        if self.src is not None:
            scope.append(f"src={self.src}")
        if self.dst is not None:
            scope.append(f"dst={self.dst}")
        sel = f" ({', '.join(scope)})" if scope else ""
        return (
            f"messages{sel} dropped with p={self.prob:g} "
            f"(+{self.penalty * 1e3:g}ms retransmit) during "
            f"[{self.t_start:g}, {self.t_start + self.duration:g})s"
        )


FaultEvent = Union[NodeSlowdown, LinkDegrade, RankStall, RankCrash, MessageDrop]

_EVENT_KINDS = {
    cls.kind: cls
    for cls in (NodeSlowdown, LinkDegrade, RankStall, RankCrash, MessageDrop)
}

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, serialisable collection of fault events."""

    events: tuple = ()
    name: str = ""

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if type(ev) not in _EVENT_KINDS.values():
                raise FaultError(f"not a fault event: {ev!r}")
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def validate_against(self, nnodes: int, nranks: Optional[int] = None) -> None:
        """Raise :class:`FaultError` if an event targets a node (or,
        when ``nranks`` is given, a rank) that does not exist."""
        for ev in self.events:
            node = getattr(ev, "node", None)
            if node is not None and not 0 <= node < nnodes:
                raise FaultError(
                    f"{ev.describe()}: node {node} out of range "
                    f"(cluster has {nnodes} nodes)"
                )
            rank = getattr(ev, "rank", None)
            if rank is not None and nranks is not None and not 0 <= rank < nranks:
                raise FaultError(
                    f"{ev.describe()}: rank {rank} out of range "
                    f"(program has {nranks} ranks)"
                )
            for attr in ("src", "dst"):
                peer = getattr(ev, attr, None)
                if peer is not None and nranks is not None:
                    if not 0 <= peer < nranks:
                        raise FaultError(
                            f"{ev.describe()}: {attr} rank {peer} out of range"
                        )

    # -- rendering -----------------------------------------------------

    def describe(self) -> str:
        label = self.name or "fault plan"
        return f"{label}: {len(self.events)} event(s)"

    def render(self) -> str:
        """Multi-line human-readable listing, in time order."""
        lines = [self.describe()]
        for ev in sorted(
            self.events, key=lambda e: getattr(e, "t_start", getattr(e, "t", 0.0))
        ):
            lines.append(f"  [{ev.kind:>13}] {ev.describe()}")
        return "\n".join(lines)

    # -- (de)serialisation ---------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": _FORMAT_VERSION,
                "name": self.name,
                "events": [
                    {"kind": ev.kind, **asdict(ev)} for ev in self.events
                ],
            },
            indent=1,
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"bad fault plan JSON: {exc}") from exc
        if not isinstance(obj, dict) or obj.get("format") != _FORMAT_VERSION:
            raise FaultError(
                f"unsupported fault plan format {obj.get('format')!r}"
                if isinstance(obj, dict)
                else "fault plan JSON must be an object"
            )
        events = []
        for i, ev in enumerate(obj.get("events", [])):
            if not isinstance(ev, dict) or "kind" not in ev:
                raise FaultError(f"event #{i}: not an object with a 'kind'")
            kind = ev["kind"]
            cls = _EVENT_KINDS.get(kind)
            if cls is None:
                raise FaultError(
                    f"event #{i}: unknown kind {kind!r} "
                    f"(known: {sorted(_EVENT_KINDS)})"
                )
            names = {f.name for f in fields(cls)}
            kwargs = {k: v for k, v in ev.items() if k in names}
            missing = {
                f.name
                for f in fields(cls)
                if f.default is MISSING and f.default_factory is MISSING
            } - set(kwargs)
            if missing:
                raise FaultError(f"event #{i} ({kind}): missing {sorted(missing)}")
            try:
                events.append(cls(**kwargs))
            except TypeError as exc:
                raise FaultError(f"event #{i} ({kind}): {exc}") from exc
        return FaultPlan(events=tuple(events), name=str(obj.get("name", "")))


# ----------------------------------------------------------------------
# stock plan generators (seed-driven, randomness resolved at build time)
# ----------------------------------------------------------------------


def flapping_link_plan(
    node: int = 0,
    factor: float = 0.1,
    horizon: float = 300.0,
    up_range: tuple[float, float] = (0.4, 1.6),
    down_range: tuple[float, float] = (0.2, 0.9),
    seed: int = 0,
) -> FaultPlan:
    """A flapping link: the node's NIC repeatedly degrades to
    ``factor`` of its capacity for a ``down_range`` interval, then
    recovers for an ``up_range`` interval, covering ``[0, horizon)``."""
    rng = make_rng(seed, "fault", "flapping-link", node)
    events: list[FaultEvent] = []
    t = rng.uniform(*up_range)
    while t < horizon:
        down = rng.uniform(*down_range)
        events.append(LinkDegrade(node=node, t_start=t, duration=down, factor=factor))
        t += down + rng.uniform(*up_range)
    return FaultPlan(tuple(events), name=f"flapping-link[{node}]")


def cpu_burst_plan(
    node: int = 0,
    factor: float = 0.4,
    horizon: float = 300.0,
    burst_range: tuple[float, float] = (0.3, 1.5),
    gap_range: tuple[float, float] = (0.5, 2.0),
    seed: int = 0,
) -> FaultPlan:
    """Bursty external CPU interference: the node's CPUs repeatedly
    drop to ``factor`` of their capacity for a ``burst_range`` window,
    with ``gap_range`` quiet gaps, covering ``[0, horizon)``."""
    rng = make_rng(seed, "fault", "cpu-burst", node)
    events: list[FaultEvent] = []
    t = rng.uniform(*gap_range)
    while t < horizon:
        burst = rng.uniform(*burst_range)
        events.append(
            NodeSlowdown(node=node, t_start=t, duration=burst, factor=factor)
        )
        t += burst + rng.uniform(*gap_range)
    return FaultPlan(tuple(events), name=f"cpu-burst[{node}]")


def stock_plans(seed: int = 0, horizon: float = 300.0) -> dict[str, FaultPlan]:
    """Named ready-made plans for the CLI and the volatile scenarios."""
    return {
        "flapping-link": flapping_link_plan(seed=seed, horizon=horizon),
        "cpu-burst": cpu_burst_plan(seed=seed, horizon=horizon),
        "rank-stall": FaultPlan(
            (RankStall(rank=0, t_start=horizon / 10.0, duration=horizon / 10.0),),
            name="rank-stall",
        ),
        "crash-restart": FaultPlan(
            (
                RankCrash(
                    rank=0, t=horizon / 10.0, restart_delay=horizon / 20.0
                ),
            ),
            name="crash-restart",
        ),
        "lossy-net": FaultPlan(
            (
                MessageDrop(
                    t_start=0.0,
                    duration=horizon,
                    prob=0.02,
                    penalty=0.2,
                ),
            ),
            name="lossy-net",
        ),
    }
