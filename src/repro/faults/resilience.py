"""Retry, backoff, and timeout primitives for long campaigns.

A simulated run is deterministic, so retrying a *model* error
(deadlock, bad program) is pointless — those fail fast. What retries
buy is survival of *host-level* trouble on shared machines: transient
I/O errors, memory pressure, and runaway runs cut short by the
wall-clock timeout. :class:`RetryPolicy` captures that split; the
campaign runner (:mod:`repro.experiments.runner`) wraps every run in
:func:`resilient_call` so one sick run becomes a structured failure
record instead of a dead campaign.

Timeouts use ``signal.setitimer`` and therefore only engage on the
main thread of a POSIX process; elsewhere :func:`run_with_timeout`
degrades to an untimed call (better no watchdog than a wrong one).
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import RunTimeoutError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-execute a failing run, and how patiently.

    ``backoff(attempt)`` is ``backoff_base * backoff_factor**(attempt-1)``
    seconds after the ``attempt``-th failure (1-based). Exceptions not
    listed in ``retryable`` are never retried. Re-execution is
    seed-stable: the caller re-invokes the same closure, so a retried
    simulated run sees exactly the same seeds.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    timeout_seconds: Optional[float] = None
    retryable: tuple = (OSError, MemoryError, RunTimeoutError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0 when set")

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * self.backoff_factor ** (attempt - 1)

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth re-executing under this policy.

        The parallel campaign scheduler uses the same split for worker
        crashes: a task whose worker died is re-queued until its loss
        count reaches ``max_attempts``.
        """
        return isinstance(exc, self.retryable)


def _timeouts_available() -> bool:
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


def run_with_timeout(fn: Callable[[], T], timeout: Optional[float]) -> T:
    """Call ``fn()``, aborting with :class:`RunTimeoutError` after
    ``timeout`` wall-clock seconds (None disables the watchdog)."""
    if timeout is None or not _timeouts_available():
        return fn()

    def _alarm(signum, frame):
        raise RunTimeoutError(f"run exceeded {timeout:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def resilient_call(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[T, int]:
    """Call ``fn`` under ``policy``; return ``(value, attempts_used)``.

    Retryable failures are re-executed up to ``policy.max_attempts``
    times with exponential backoff (``on_retry(attempt, exc)`` fires
    before each sleep); the last failure — or any non-retryable one —
    propagates to the caller, annotated with an ``attempts`` attribute
    recording how many executions it survived (failure reports show
    the retry count).
    """
    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return run_with_timeout(fn, policy.timeout_seconds), attempt
        except Exception as exc:
            if not policy.is_retryable(exc) or attempt >= policy.max_attempts:
                try:
                    exc.attempts = attempt
                except AttributeError:  # slotted/frozen exceptions
                    pass
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = policy.backoff(attempt)
            if delay > 0:
                sleep(delay)
