"""Deterministic OS-level IO fault harness for the store/journal stack.

:mod:`repro.faults.plan` perturbs the *simulated* testbed; this module
perturbs the real one — the filesystem operations the artifact store
(:mod:`repro.store.store`) and campaign journal
(:mod:`repro.experiments.journal`) depend on. Both modules route every
file operation through the shim functions defined here
(:func:`read_text`, :func:`read_bytes`, :func:`write_text`,
:func:`write_fd`, :func:`replace`, :func:`fsync`), so a test can
install an :class:`IOFaultPlan` and observe how the stack behaves when
the disk fills up, a read returns ``EIO``, a rename fails, or an
``fsync`` is refused — without any real disk trouble, and perfectly
reproducibly.

Fault kinds (``IOFault.kind``):

``enospc-write``
    the matching write raises ``OSError(ENOSPC)`` before writing a
    byte (disk full);
``short-write``
    a *partial* write: file writes persist only a prefix and raise
    ``OSError(EIO)``; descriptor writes (:func:`write_fd`) write the
    prefix and return its length without raising, exercising the
    caller's short-write loop;
``torn-write``
    like ``short-write`` but always raises after the partial write —
    the canonical torn-file scenario for both paths;
``eio-read``
    the matching read raises ``OSError(EIO)`` (bit rot, bad sector);
``rename-fail``
    the matching ``os.replace`` raises ``OSError(EIO)`` without
    renaming (the atomic-publish step fails);
``fsync-fail``
    the matching ``fsync`` raises ``OSError(EIO)`` (durability not
    guaranteed);
``hang``
    the matching operation sleeps ``seconds`` before proceeding (an
    NFS stall / hung device) — in a campaign worker this produces a
    real hang for the :class:`repro.parallel.supervisor.Supervisor`
    to detect and cancel.

Every fault is pinned to the N-th operation matching its kind and
``path_glob`` (a :mod:`fnmatch` pattern over the path's basename), and
fires exactly once, so a given ``IOFaultPlan`` produces the same
injection sequence on every run. :func:`random_plan` derives a plan
deterministically from a seed for randomized sweeps.

Usage::

    plan = IOFaultPlan(faults=(IOFault("enospc-write", op_index=2),))
    with plan.install() as log:
        run_campaign(...)          # the 3rd store/journal write fails
    assert log.events[0]["kind"] == "enospc-write"

Installation is process-global (the shims consult one active plan) and
not re-entrant; chaos tests install one plan at a time.
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import FaultError

__all__ = [
    "IO_FAULT_KINDS",
    "IOFault",
    "IOFaultLog",
    "IOFaultPlan",
    "fsync",
    "random_plan",
    "read_bytes",
    "read_text",
    "replace",
    "write_fd",
    "write_text",
]

_FORMAT = 1

#: Every supported fault kind, and the file operation it intercepts.
_KIND_OPS = {
    "enospc-write": "write",
    "short-write": "write",
    "torn-write": "write",
    "eio-read": "read",
    "rename-fail": "replace",
    "fsync-fail": "fsync",
    "hang": "*",
}

IO_FAULT_KINDS = tuple(_KIND_OPS)


@dataclass(frozen=True)
class IOFault:
    """One injected fault: fire on the ``op_index``-th operation (0-based)
    whose kind and basename match.

    ``seconds`` is only meaningful for ``hang``; ``op`` restricts a
    ``hang`` to one operation type (``write``/``read``/``replace``/
    ``fsync``; empty matches any).
    """

    kind: str
    op_index: int = 0
    path_glob: str = "*"
    seconds: float = 0.0
    op: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KIND_OPS:
            raise FaultError(
                f"unknown IO fault kind {self.kind!r}; "
                f"choose from {sorted(_KIND_OPS)}"
            )
        if self.op_index < 0:
            raise FaultError("op_index must be >= 0")
        if self.kind == "hang" and self.seconds < 0:
            raise FaultError("hang seconds must be >= 0")

    def matches(self, op: str, path: str) -> bool:
        want = self.op or _KIND_OPS[self.kind]
        if want not in ("*", op):
            return False
        return fnmatch(os.path.basename(path), self.path_glob)


class IOFaultLog:
    """Record of every fault an installed plan actually injected."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def record(self, fault: IOFault, op: str, path: str) -> None:
        self.events.append(
            {
                "kind": fault.kind,
                "op": op,
                "path": str(path),
                "op_index": fault.op_index,
                "t": time.time(),
            }
        )

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class IOFaultPlan:
    """An immutable, JSON-serialisable schedule of IO faults."""

    name: str = ""
    faults: tuple[IOFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def describe(self) -> str:
        if not self.faults:
            return f"IO fault plan {self.name or '<unnamed>'}: no faults"
        lines = [f"IO fault plan {self.name or '<unnamed>'}:"]
        for f in self.faults:
            extra = f" sleep={f.seconds:g}s" if f.kind == "hang" else ""
            lines.append(
                f"  {f.kind} on op #{f.op_index} matching "
                f"{f.path_glob!r}{extra}"
            )
        return "\n".join(lines)

    # -- (de)serialisation ------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": _FORMAT,
                "name": self.name,
                "faults": [
                    {
                        "kind": f.kind,
                        "op_index": f.op_index,
                        "path_glob": f.path_glob,
                        "seconds": f.seconds,
                        "op": f.op,
                    }
                    for f in self.faults
                ],
            },
            indent=1,
        )

    @staticmethod
    def from_json(text: str) -> "IOFaultPlan":
        obj = json.loads(text)
        if obj.get("format") != _FORMAT:
            raise FaultError("unsupported IO fault plan format")
        return IOFaultPlan(
            name=str(obj.get("name", "")),
            faults=tuple(
                IOFault(
                    kind=str(f["kind"]),
                    op_index=int(f.get("op_index", 0)),
                    path_glob=str(f.get("path_glob", "*")),
                    seconds=float(f.get("seconds", 0.0)),
                    op=str(f.get("op", "")),
                )
                for f in obj.get("faults", [])
            ),
        )

    # -- installation ------------------------------------------------------

    @contextmanager
    def install(self) -> Iterator[IOFaultLog]:
        """Arm this plan for the duration of the context; yields the
        injection log. Process-global, not re-entrant."""
        global _active
        if _active is not None:
            raise FaultError("an IOFaultPlan is already installed")
        armed = _ArmedPlan(self)
        _active = armed
        try:
            yield armed.log
        finally:
            _active = None


def random_plan(
    seed: int,
    n_faults: int = 3,
    kinds: tuple[str, ...] = (
        "enospc-write", "short-write", "torn-write",
        "eio-read", "rename-fail", "fsync-fail",
    ),
    max_op_index: int = 30,
    name: Optional[str] = None,
) -> IOFaultPlan:
    """A deterministic, seed-derived plan for randomized chaos sweeps.

    The same seed always yields the same plan (``random.Random(seed)``
    is platform-stable), so a failing sweep seed is a reproducer.
    """
    rng = random.Random(seed)
    faults = tuple(
        IOFault(kind=rng.choice(list(kinds)), op_index=rng.randrange(max_op_index))
        for _ in range(n_faults)
    )
    return IOFaultPlan(name=name or f"random-{seed}", faults=faults)


class _ArmedPlan:
    """Runtime state of an installed plan: per-fault match counters."""

    def __init__(self, plan: IOFaultPlan):
        self.plan = plan
        self.log = IOFaultLog()
        self._seen = [0] * len(plan.faults)
        self._fired = [False] * len(plan.faults)

    def check(self, op: str, path: Union[str, os.PathLike]) -> Optional[IOFault]:
        """Count this operation against every fault; return the first
        fault that fires on it (at most one per operation)."""
        path = str(path)
        hit: Optional[IOFault] = None
        for i, fault in enumerate(self.plan.faults):
            if not fault.matches(op, path):
                continue
            seen = self._seen[i]
            self._seen[i] = seen + 1
            if hit is None and not self._fired[i] and seen == fault.op_index:
                self._fired[i] = True
                self.log.record(fault, op, path)
                hit = fault
        return hit


_active: Optional[_ArmedPlan] = None


def _hit(op: str, path: Union[str, os.PathLike]) -> Optional[IOFault]:
    if _active is None:
        return None
    fault = _active.check(op, path)
    if fault is not None and fault.kind == "hang":
        time.sleep(fault.seconds)
        return None
    return fault


# ---------------------------------------------------------------------------
# File-operation shims. The store and journal call these instead of the
# raw OS primitives; with no plan installed they are thin pass-throughs.
# ---------------------------------------------------------------------------


def read_text(path: Union[str, os.PathLike], encoding: str = "utf-8") -> str:
    """``Path.read_text`` with fault injection (``eio-read``)."""
    if _hit("read", path) is not None:
        raise OSError(errno.EIO, f"injected read error: {path}")
    return Path(path).read_text(encoding=encoding)


def read_bytes(path: Union[str, os.PathLike]) -> bytes:
    """``Path.read_bytes`` with fault injection (``eio-read``)."""
    if _hit("read", path) is not None:
        raise OSError(errno.EIO, f"injected read error: {path}")
    return Path(path).read_bytes()


def write_text(
    path: Union[str, os.PathLike], text: str, encoding: str = "utf-8"
) -> None:
    """``Path.write_text`` with fault injection.

    ``enospc-write`` fails before writing; ``short-write`` and
    ``torn-write`` persist a prefix and raise — the file is torn, and
    it is the *caller's* atomic-publish discipline (temp file +
    rename) that must keep torn bytes from ever being served.
    """
    fault = _hit("write", path)
    if fault is not None:
        if fault.kind == "enospc-write":
            raise OSError(errno.ENOSPC, f"injected disk full: {path}")
        data = text.encode(encoding)
        Path(path).write_bytes(data[: max(1, len(data) // 2)])
        raise OSError(errno.EIO, f"injected {fault.kind}: {path}")
    Path(path).write_text(text, encoding=encoding)


def write_fd(
    fd: int, data: bytes, path: Union[str, os.PathLike] = ""
) -> int:
    """``os.write`` with fault injection; ``path`` is the descriptor's
    file, used only for fault matching.

    ``short-write`` returns a partial count *without* raising —
    exactly what POSIX permits — so callers must loop;
    ``torn-write`` writes the prefix and then raises.
    """
    fault = _hit("write", path)
    if fault is not None:
        if fault.kind == "enospc-write":
            raise OSError(errno.ENOSPC, f"injected disk full: {path}")
        prefix = data[: max(1, len(data) // 2)]
        written = os.write(fd, prefix)
        if fault.kind == "torn-write":
            raise OSError(errno.EIO, f"injected torn write: {path}")
        return written
    return os.write(fd, data)


def replace(
    src: Union[str, os.PathLike], dst: Union[str, os.PathLike]
) -> None:
    """``os.replace`` with fault injection (``rename-fail``)."""
    if _hit("replace", dst) is not None:
        raise OSError(errno.EIO, f"injected rename failure: {dst}")
    os.replace(src, dst)


def fsync(fd: int, path: Union[str, os.PathLike] = "") -> None:
    """``os.fsync`` with fault injection (``fsync-fail``)."""
    if _hit("fsync", path) is not None:
        raise OSError(errno.EIO, f"injected fsync failure: {path}")
    os.fsync(fd)
