"""Content-addressed artifact store for pipeline stage outputs.

The paper's workflow — trace → signature → skeleton → simulated runs —
is a deterministic derivation graph: every stage output is a pure
function of canonical inputs (program identity, cluster description,
scenario, seed) plus the code that computes it. This module persists
those outputs under a single cache root so that repeated pipeline
invocations recompute *nothing*.

Keying
------

An artifact is addressed by a BLAKE2b digest over the canonical JSON of
``{"stage": ..., "params": ..., "salt": ...}``:

* ``stage`` — which pipeline stage produced it (``"trace"``,
  ``"signature"``, ``"skeleton"``, ``"run"``, ``"results"``);
* ``params`` — the canonicalized inputs (JSON-serialisable dict; keys
  are sorted, floats keep exact ``repr`` round-trip);
* ``salt`` — the code-version salt :data:`CODE_SALT`. Bumping it
  invalidates every artifact at once; that is the invalidation story
  when stage semantics change (see ``docs/SCALING.md``).

Upstream artifacts appear in downstream params *by digest* (a skeleton
is keyed by its trace's digest), so the whole pipeline forms a Merkle
chain: changing any input changes every downstream key.

Layout and integrity
--------------------

::

    <cache root>/store/objects/ab/<digest>.json   # JSON envelope
    <cache root>/store/blobs/<digest>-<name>      # large payloads

The envelope records a digest of its content and of every attached
blob; :meth:`ArtifactStore.get` verifies both before returning, so a
torn write or bit-rot reads as a *miss* (or raises
:class:`~repro.errors.StoreError` with ``on_error="raise"``), never as
wrong data. Writes are atomic (temp file + ``os.replace``) and safe
under concurrent writers producing the same key: content-addressing
makes the race benign — both write identical bytes.

Hit/miss/eviction counts are reported through the
:mod:`repro.obs.metrics` registry (``store.hits``, ``store.misses``,
``store.writes``, ``store.corrupt``, ``store.evictions``, each labelled
by stage).

The cache root resolves in priority order: an explicit argument, the
``REPRO_CACHE_DIR`` environment variable, then ``.repro_cache`` under
the nearest ancestor containing ``pyproject.toml``/``setup.py``/
``.git`` (so CLI invocations from a subdirectory share the project
cache), and finally ``.repro_cache`` under the working directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from repro.errors import StoreError
from repro.faults import io as _fio
from repro.obs.metrics import get_metrics

__all__ = [
    "Artifact",
    "ArtifactStore",
    "CODE_SALT",
    "DEFAULT_CACHE_DIR_NAME",
    "DEFAULT_ORPHAN_GRACE_SECONDS",
    "StoreKey",
    "canonical_json",
    "content_digest",
    "find_project_root",
    "resolve_cache_dir",
]

#: Code-version salt mixed into every key. Bump when a stage's
#: semantics change in a way that invalidates its cached outputs.
CODE_SALT = "repro-store-v1"

#: Basename of the cache directory (under the project root or CWD).
DEFAULT_CACHE_DIR_NAME = ".repro_cache"

#: Files whose presence marks a project root for cache anchoring.
_ROOT_MARKERS = ("pyproject.toml", "setup.py", ".git")

_FORMAT = 1

#: How long maintenance (``verify``/``prune``/``fsck``) leaves an
#: unreferenced blob or ``.tmp`` file alone before treating it as
#: garbage. Protects the window between a concurrent writer's blob
#: write and its envelope publish (see ``tests/test_io_chaos.py``).
DEFAULT_ORPHAN_GRACE_SECONDS = 300.0


def _is_tmp(path: Path) -> bool:
    """True for an in-progress atomic-write temp file (``*.tmp<pid>``)."""
    return ".tmp" in path.name


def _older_than(path: Path, seconds: float) -> bool:
    try:
        return time.time() - path.stat().st_mtime > seconds
    except OSError:
        return False


def canonical_json(obj: object) -> str:
    """Deterministic JSON text: sorted keys, no whitespace.

    Floats round-trip exactly (shortest-repr), so canonical forms of
    equal values are byte-identical across processes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def content_digest(data: Union[bytes, str]) -> str:
    """BLAKE2b-128 hex digest of raw bytes (or UTF-8 of a string)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def find_project_root(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ancestor of ``start`` (default: CWD) that looks like a
    project root, or None."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return None


def resolve_cache_dir(
    explicit: Union[str, os.PathLike, None] = None,
) -> Path:
    """Resolve the cache root: explicit arg > ``$REPRO_CACHE_DIR`` >
    ``<project root>/.repro_cache`` > ``<cwd>/.repro_cache``.

    Anchoring at the project root means CLI runs from any subdirectory
    hit the same cache.
    """
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    root = find_project_root()
    base = root if root is not None else Path.cwd()
    return base / DEFAULT_CACHE_DIR_NAME


@dataclass(frozen=True)
class StoreKey:
    """Address of one artifact: its stage, digest, and the params the
    digest was derived from (kept for inspection, not identity)."""

    stage: str
    digest: str
    params: Mapping = field(default_factory=dict, compare=False, hash=False)


@dataclass
class Artifact:
    """One artifact read back from the store."""

    stage: str
    digest: str
    content: dict
    blobs: dict[str, Path]
    params: dict
    created: float
    path: Path


class ArtifactStore:
    """Content-addressed artifact store under ``<root>/store/``."""

    def __init__(self, root: Union[str, os.PathLike, None] = None):
        self.root = resolve_cache_dir(root)
        self._objects = self.root / "store" / "objects"
        self._blob_dir = self.root / "store" / "blobs"
        self._quarantine = self.root / "store" / "quarantine"
        #: True once a write has failed and the store fell back to
        #: cache-bypass (see :meth:`put`); campaigns keep running.
        self.degraded = False

    # -- keys ------------------------------------------------------------

    def key(self, stage: str, params: Mapping, salt: str = CODE_SALT) -> StoreKey:
        """Derive the content-addressed key for ``stage`` + ``params``."""
        blob = canonical_json({"stage": stage, "params": params, "salt": salt})
        return StoreKey(stage=stage, digest=content_digest(blob), params=dict(params))

    def object_path(self, key: Union[StoreKey, str]) -> Path:
        digest = key.digest if isinstance(key, StoreKey) else str(key)
        return self._objects / digest[:2] / f"{digest}.json"

    def _blob_path(self, digest: str, name: str) -> Path:
        return self._blob_dir / f"{digest}-{name}"

    def blob_path(self, key: Union[StoreKey, str], name: str) -> Path:
        """Path a named blob of ``key`` lives at (whether or not it
        exists yet); blob files sit under the store root, so callers
        may journal them relative to the cache directory."""
        digest = key.digest if isinstance(key, StoreKey) else str(key)
        return self._blob_path(digest, name)

    # -- write -----------------------------------------------------------

    def put(
        self,
        key: StoreKey,
        content: dict,
        blob_writers: Optional[Mapping[str, Callable[[Path], None]]] = None,
    ) -> Optional[Path]:
        """Store ``content`` (JSON dict) plus optional named blob files.

        Each ``blob_writers[name]`` is called with a temp path to write
        the payload; the store then digests and registers the file.
        Atomic: concurrent writers of the same key are benign.

        A write failure (disk full, unwritable cache directory, torn
        write) never aborts the caller: the store **degrades to
        cache-bypass** — the failed artifact simply stays a miss, a
        warning is issued once, the ``store.degraded`` metric counts
        the event, and ``None`` is returned instead of the object
        path. Campaigns keep running without the cache.
        """
        try:
            return self._put(key, content, blob_writers)
        except OSError as exc:
            self._degrade(key, exc)
            return None

    def _degrade(self, key: StoreKey, exc: OSError) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            c = metrics.counter(
                "store.degraded", "store writes dropped (cache-bypass)"
            )
            c.inc()
            c.labels(stage=key.stage).inc()
        if not self.degraded:
            self.degraded = True
            warnings.warn(
                f"artifact store at {self.root} is degraded to "
                f"cache-bypass ({type(exc).__name__}: {exc}); campaign "
                f"continues without caching — run `repro-skeleton "
                f"doctor` to repair",
                RuntimeWarning,
                stacklevel=3,
            )

    def _put(
        self,
        key: StoreKey,
        content: dict,
        blob_writers: Optional[Mapping[str, Callable[[Path], None]]] = None,
    ) -> Path:
        blobs_meta: dict[str, dict] = {}
        for name, writer in (blob_writers or {}).items():
            path = self._blob_path(key.digest, name)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            writer(tmp)
            data = _fio.read_bytes(tmp)
            _fio.replace(tmp, path)
            blobs_meta[name] = {
                "file": str(path.relative_to(self.root)),
                "digest": content_digest(data),
                "bytes": len(data),
            }
        envelope = {
            "format": _FORMAT,
            "stage": key.stage,
            "digest": key.digest,
            "params": dict(key.params),
            "created": time.time(),
            "content_digest": content_digest(canonical_json(content)),
            "content": content,
            "blobs": blobs_meta,
        }
        obj_path = self.object_path(key)
        obj_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = obj_path.with_name(f"{obj_path.name}.tmp{os.getpid()}")
        _fio.write_text(tmp, json.dumps(envelope, indent=1))
        _fio.replace(tmp, obj_path)
        metrics = get_metrics()
        if metrics.enabled:
            c = metrics.counter("store.writes", "artifacts written to the store")
            c.inc()
            c.labels(stage=key.stage).inc()
        return obj_path

    # -- read ------------------------------------------------------------

    def _load_envelope(self, path: Path) -> dict:
        try:
            envelope = json.loads(_fio.read_text(path))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable store object {path}: {exc}") from exc
        if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
            raise StoreError(f"unsupported store object format in {path}")
        return envelope

    def _verify_envelope(self, envelope: dict, path: Path) -> dict[str, Path]:
        """Integrity-check content and blobs; return blob name → path."""
        content = envelope.get("content")
        recorded = envelope.get("content_digest")
        if content_digest(canonical_json(content)) != recorded:
            raise StoreError(f"content digest mismatch in {path}")
        blobs: dict[str, Path] = {}
        for name, meta in (envelope.get("blobs") or {}).items():
            blob_path = self.root / meta["file"]
            try:
                data = _fio.read_bytes(blob_path)
            except OSError as exc:
                raise StoreError(
                    f"missing blob {meta['file']} for {path}: {exc}"
                ) from exc
            if content_digest(data) != meta.get("digest"):
                raise StoreError(f"blob digest mismatch: {meta['file']}")
            blobs[name] = blob_path
        return blobs

    def get(
        self,
        key: Union[StoreKey, str],
        on_error: str = "miss",
    ) -> Optional[Artifact]:
        """Fetch an artifact, verifying integrity on read.

        Returns None on a miss. A corrupt artifact counts as a miss
        (``on_error="miss"``, the default — the caller recomputes and
        overwrites) or raises :class:`StoreError` (``on_error="raise"``).
        """
        stage = key.stage if isinstance(key, StoreKey) else ""
        metrics = get_metrics()

        def _count(name: str, stage_label: str) -> None:
            if metrics.enabled:
                c = metrics.counter(f"store.{name}", f"store {name} by stage")
                c.inc()
                if stage_label:
                    c.labels(stage=stage_label).inc()

        path = self.object_path(key)
        if not path.exists():
            _count("misses", stage)
            return None
        try:
            envelope = self._load_envelope(path)
            stage = envelope.get("stage", stage) or stage
            blobs = self._verify_envelope(envelope, path)
        except StoreError:
            _count("corrupt", stage)
            if on_error == "raise":
                raise
            _count("misses", stage)
            return None
        _count("hits", stage)
        try:
            os.utime(path)  # LRU recency for quota eviction (fsck)
        except OSError:
            pass
        return Artifact(
            stage=stage,
            digest=envelope["digest"],
            content=envelope["content"],
            blobs=blobs,
            params=envelope.get("params", {}),
            created=float(envelope.get("created", 0.0)),
            path=path,
        )

    def contains(self, key: Union[StoreKey, str]) -> bool:
        return self.object_path(key).exists()

    # -- index / maintenance --------------------------------------------

    def _object_files(self) -> list[Path]:
        if not self._objects.exists():
            return []
        return sorted(self._objects.glob("*/*.json"))

    def entries(self) -> list[dict]:
        """Index of stored artifacts (no integrity verification):
        stage, digest, created, total bytes (object + blobs), params."""
        out = []
        for path in self._object_files():
            try:
                envelope = self._load_envelope(path)
            except StoreError:
                out.append({
                    "stage": "?", "digest": path.stem, "created": 0.0,
                    "bytes": path.stat().st_size, "params": {}, "corrupt": True,
                })
                continue
            nbytes = path.stat().st_size
            for meta in (envelope.get("blobs") or {}).values():
                nbytes += int(meta.get("bytes", 0))
            out.append({
                "stage": envelope.get("stage", "?"),
                "digest": envelope.get("digest", path.stem),
                "created": float(envelope.get("created", 0.0)),
                "bytes": nbytes,
                "params": envelope.get("params", {}),
                "corrupt": False,
            })
        return out

    def total_bytes(self) -> int:
        total = 0
        for base in (self._objects, self._blob_dir):
            if base.exists():
                total += sum(
                    p.stat().st_size for p in base.rglob("*") if p.is_file()
                )
        return total

    def verify(
        self, grace_seconds: float = DEFAULT_ORPHAN_GRACE_SECONDS
    ) -> list[str]:
        """Integrity-check every artifact; return human-readable issues.

        In-progress atomic writes are not issues: ``.tmp`` files and
        unreferenced blobs younger than ``grace_seconds`` are skipped —
        a concurrent writer may be about to publish their envelope.
        """
        issues = []
        referenced: set[Path] = set()
        for path in self._object_files():
            try:
                envelope = self._load_envelope(path)
                blobs = self._verify_envelope(envelope, path)
                referenced.update(blobs.values())
            except StoreError as exc:
                issues.append(str(exc))
        for blob in sorted(self._blob_dir.glob("*")) if self._blob_dir.exists() else []:
            if not blob.is_file() or blob in referenced:
                continue
            if _is_tmp(blob) or not _older_than(blob, grace_seconds):
                continue
            issues.append(f"orphan blob {blob.relative_to(self.root)}")
        return issues

    def _delete_object(self, path: Path, stage: str) -> None:
        try:
            envelope = self._load_envelope(path)
            for meta in (envelope.get("blobs") or {}).values():
                try:
                    (self.root / meta["file"]).unlink()
                except FileNotFoundError:
                    pass
        except StoreError:
            pass
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        metrics = get_metrics()
        if metrics.enabled:
            c = metrics.counter("store.evictions", "artifacts evicted")
            c.inc()
            if stage:
                c.labels(stage=stage).inc()

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
        order: str = "created",
    ) -> list[str]:
        """Evict artifacts past an age bound and/or shrink the store to
        a byte budget. Returns evicted digests.

        ``order`` picks the byte-budget eviction victim ordering:
        ``"created"`` (oldest write first) or ``"lru"`` (least recently
        *read* first — reads touch the object's mtime). ``fsck`` quota
        enforcement uses ``"lru"``.
        """
        if order not in ("created", "lru"):
            raise StoreError(f"unknown gc order {order!r}")
        entries = self.entries()
        evicted: list[str] = []
        now = time.time()
        if max_age_seconds is not None:
            for e in entries:
                if now - e["created"] > max_age_seconds:
                    self._delete_object(self.object_path(e["digest"]), e["stage"])
                    evicted.append(e["digest"])
            entries = [e for e in entries if e["digest"] not in set(evicted)]
        if max_bytes is not None:
            def _recency(e) -> float:
                if order == "created":
                    return e["created"]
                try:
                    return self.object_path(e["digest"]).stat().st_mtime
                except OSError:
                    return 0.0

            total = sum(e["bytes"] for e in entries)
            for e in sorted(entries, key=_recency):
                if total <= max_bytes:
                    break
                self._delete_object(self.object_path(e["digest"]), e["stage"])
                evicted.append(e["digest"])
                total -= e["bytes"]
        return evicted

    def prune(
        self, grace_seconds: float = DEFAULT_ORPHAN_GRACE_SECONDS
    ) -> dict[str, int]:
        """Remove corrupt objects, orphan blobs, and stale temp files;
        return counts.

        Safe against a concurrent writer: in-progress ``.tmp`` files
        and unreferenced blobs younger than ``grace_seconds`` are left
        alone — an object mid-publish (blob written, envelope not yet
        renamed in) is never deleted out from under its writer
        (``tests/test_io_chaos.py`` interleaves prune with a write to
        pin this).
        """
        removed = {"objects": 0, "blobs": 0, "tmp": 0}
        referenced: set[Path] = set()
        for path in self._object_files():
            try:
                envelope = self._load_envelope(path)
                blobs = self._verify_envelope(envelope, path)
                referenced.update(blobs.values())
            except StoreError:
                self._delete_object(path, "?")
                removed["objects"] += 1
        for base in (self._objects, self._blob_dir):
            if not base.exists():
                continue
            for tmp in sorted(base.rglob("*")):
                if tmp.is_file() and _is_tmp(tmp) and _older_than(tmp, grace_seconds):
                    try:
                        tmp.unlink()
                        removed["tmp"] += 1
                    except FileNotFoundError:
                        pass
        if self._blob_dir.exists():
            for blob in sorted(self._blob_dir.glob("*")):
                if not blob.is_file() or blob in referenced or _is_tmp(blob):
                    continue
                if not _older_than(blob, grace_seconds):
                    continue
                blob.unlink()
                removed["blobs"] += 1
        return removed
