"""Stage memoization for the trace → skeleton → run pipeline.

:class:`PipelineCache` wraps the three hot pipeline stages with
content-addressed lookups in an :class:`~repro.store.store.ArtifactStore`:

* ``trace``     — a traced dedicated run: the execution trace (stored
  as a trace-file blob) plus its :class:`~repro.sim.engine.RunResult`;
* ``signature`` / ``skeleton`` — the compressed execution signature and
  the skeleton metadata (K, goodness, flags). On a hit the skeleton
  *program* is rebuilt deterministically from the cached signature
  (``scale_signature`` + ``skeleton_program`` are pure), so the
  expensive compression never re-runs;
* ``run``       — one simulated run's :class:`RunResult`, keyed by
  program identity × cluster × scenario × seed.

The cache takes the *compute* as a callable, so callers keep their own
(monkeypatchable, instrumented) call sites; the cache only decides
whether to invoke it. Because the simulator is deterministic and JSON
float round-trips are exact, a value served from the store is
byte-identical to a recomputed one — warm runs and cold runs produce
identical campaign results (pinned by ``benchmarks/bench_store_hit.py``).

Program identity is parametric, not structural: an application program
is identified by ``(bench, class, nprocs, workload seed)`` — the
workload generators are deterministic in those — and a skeleton program
by the digest of the skeleton artifact it was generated from. Combined
with the cluster/scenario fingerprints this forms the canonicalized
input side of every key (see :mod:`repro.store.store`).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Callable, Optional

from repro.cluster.contention import Scenario
from repro.cluster.topology import Cluster
from repro.core.construct import SkeletonBundle
from repro.core.goodness import shortest_good_skeleton
from repro.core.scale import scale_signature
from repro.core.sigio import signature_from_dict, signature_to_dict
from repro.core.skeleton import skeleton_program
from repro.sim.engine import RunResult
from repro.store.store import ArtifactStore, StoreKey, canonical_json, content_digest
from repro.trace.io import read_trace, write_trace
from repro.trace.records import Trace

__all__ = [
    "PipelineCache",
    "cluster_fingerprint",
    "runresult_from_dict",
    "runresult_to_dict",
    "scenario_fingerprint",
    "skeleton_program_params",
    "workload_params",
]


def runresult_to_dict(result: RunResult) -> dict:
    """JSON-ready dict of a RunResult (field order matches the
    campaign journal's ``result`` entries)."""
    return {
        "program": result.program_name,
        "scenario": result.scenario_name,
        "nranks": result.nranks,
        "finish_times": list(result.finish_times),
        "elapsed": result.elapsed,
        "n_messages": result.n_messages,
        "n_events": result.n_events,
    }


def runresult_from_dict(obj: dict) -> RunResult:
    return RunResult(
        program_name=str(obj["program"]),
        scenario_name=str(obj["scenario"]),
        nranks=int(obj["nranks"]),
        finish_times=tuple(float(t) for t in obj["finish_times"]),
        elapsed=float(obj["elapsed"]),
        n_messages=int(obj["n_messages"]),
        n_events=int(obj["n_events"]),
    )


def cluster_fingerprint(cluster: Cluster) -> str:
    """Digest of the full cluster description (nodes, network)."""
    return content_digest(canonical_json(asdict(cluster)))


def scenario_fingerprint(scenario: Scenario) -> str:
    """Digest of the full scenario description, fault plan included.

    Built by hand rather than ``dataclasses.asdict`` because
    :class:`Scenario` freezes its mappings into ``MappingProxyType``,
    which ``asdict``'s deepcopy cannot handle. Only behaviour-affecting
    fields participate (``description`` is cosmetic).
    """
    obj = {
        "name": scenario.name,
        "competing": {str(k): int(v) for k, v in scenario.competing.items()},
        "nic_caps": {str(k): float(v) for k, v in scenario.nic_caps.items()},
        "load_model": (
            None if scenario.load_model is None else asdict(scenario.load_model)
        ),
        "traffic_model": (
            None
            if scenario.traffic_model is None
            else asdict(scenario.traffic_model)
        ),
        "fault_plan": (
            None if scenario.fault_plan is None else asdict(scenario.fault_plan)
        ),
    }
    return content_digest(canonical_json(obj))


def workload_params(bench: str, klass: str, nprocs: int, seed: int) -> dict:
    """Identity of an application program (workload generators are
    deterministic in these parameters)."""
    return {
        "kind": "workload",
        "bench": bench,
        "klass": klass,
        "nprocs": nprocs,
        "seed": seed,
    }


def skeleton_program_params(skeleton_digest: str) -> dict:
    """Identity of a generated skeleton program: the artifact digest of
    the skeleton it was built from."""
    return {"kind": "skeleton", "skeleton": skeleton_digest}


class PipelineCache:
    """Store-backed memoization of the compress/construct/simulate path.

    ``enabled=False`` turns every method into a plain pass-through to
    its compute callable (no store reads or writes).
    """

    def __init__(self, store: ArtifactStore, cluster: Cluster, enabled: bool = True):
        self.store = store
        self.enabled = enabled
        self._cluster_fp = cluster_fingerprint(cluster)
        self._scenario_fps: dict[str, str] = {}

    # -- key derivation --------------------------------------------------

    def trace_key(self, program_params: dict) -> StoreKey:
        return self.store.key(
            "trace", {"program": program_params, "cluster": self._cluster_fp}
        )

    def skeleton_key(self, trace_digest: str, target_seconds: float) -> StoreKey:
        return self.store.key(
            "skeleton", {"trace": trace_digest, "target": target_seconds}
        )

    def signature_key(self, trace_digest: str, target_seconds: float) -> StoreKey:
        return self.store.key(
            "signature", {"trace": trace_digest, "target": target_seconds}
        )

    def run_key(
        self, program_params: dict, scenario: Scenario, seed: int
    ) -> StoreKey:
        fp = self._scenario_fps.get(scenario.name)
        if fp is None:
            fp = scenario_fingerprint(scenario)
            self._scenario_fps[scenario.name] = fp
        return self.store.key(
            "run",
            {
                "program": program_params,
                "cluster": self._cluster_fp,
                "scenario": fp,
                "seed": seed,
            },
        )

    # -- stages ----------------------------------------------------------

    def traced_run(
        self,
        program_params: dict,
        compute: Callable[[], tuple[Trace, RunResult]],
    ) -> tuple[Trace, RunResult]:
        """Memoized traced dedicated run: ``(trace, RunResult)``."""
        if not self.enabled:
            return compute()
        key = self.trace_key(program_params)
        artifact = self.store.get(key)
        if artifact is not None:
            trace = read_trace(artifact.blobs["trace"])
            return trace, runresult_from_dict(artifact.content["result"])
        trace, result = compute()
        self.store.put(
            key,
            {"result": runresult_to_dict(result)},
            blob_writers={"trace": lambda p: write_trace(trace, p)},
        )
        return trace, result

    def traced_run_result(self, program_params: dict) -> Optional[RunResult]:
        """Just the :class:`RunResult` of a cached traced run, or
        ``None`` on a miss.

        Reads only the JSON envelope — the trace blob (tens of
        thousands of records) is never deserialized. This is the
        serving hot path: a warm prediction needs the dedicated
        elapsed time, not the events that produced it.
        """
        if not self.enabled:
            return None
        artifact = self.store.get(self.trace_key(program_params))
        if artifact is None:
            return None
        return runresult_from_dict(artifact.content["result"])

    def skeleton(
        self,
        trace_digest: str,
        target_seconds: float,
        compute: Callable[[], SkeletonBundle],
    ) -> SkeletonBundle:
        """Memoized skeleton construction.

        On a hit, the signature is loaded from the store and the
        program is regenerated from it (deterministic, cheap); the
        compression search — the expensive part — never re-runs.
        """
        if not self.enabled:
            return compute()
        skel_key = self.skeleton_key(trace_digest, target_seconds)
        sig_key = self.signature_key(trace_digest, target_seconds)
        skel_art = self.store.get(skel_key)
        if skel_art is not None:
            sig_art = self.store.get(sig_key)
            if sig_art is not None:
                signature = signature_from_dict(sig_art.content["signature"])
                K = float(skel_art.content["K"])
                scaled = scale_signature(signature, K)
                program = skeleton_program(scaled)
                goodness = shortest_good_skeleton(signature)
                return SkeletonBundle(
                    program=program,
                    signature=signature,
                    scaled=scaled,
                    K=K,
                    target_seconds=float(skel_art.content["target_seconds"]),
                    goodness=goodness,
                    flagged=bool(skel_art.content["flagged"]),
                )
        bundle = compute()
        self.store.put(
            sig_key, {"signature": signature_to_dict(bundle.signature)}
        )
        self.store.put(
            skel_key,
            {
                "K": bundle.K,
                "target_seconds": bundle.target_seconds,
                "flagged": bundle.flagged,
                "threshold": bundle.signature.threshold,
                "compression_ratio": bundle.signature.compression_ratio,
                "min_good_seconds": bundle.goodness.min_good_seconds,
                "signature_digest": sig_key.digest,
            },
        )
        return bundle

    def simulated_run(
        self,
        program_params: dict,
        scenario: Scenario,
        seed: int,
        compute: Callable[[], RunResult],
    ) -> RunResult:
        """Memoized simulated run."""
        if not self.enabled:
            return compute()
        key = self.run_key(program_params, scenario, seed)
        artifact = self.store.get(key)
        if artifact is not None:
            return runresult_from_dict(artifact.content["result"])
        result = compute()
        self.store.put(key, {"result": runresult_to_dict(result)})
        return result

    # -- rebuilding from refs (used by parallel workers) ----------------

    def load_skeleton_program(self, skeleton_digest: str):
        """Rebuild a skeleton :class:`Program` from a stored skeleton
        artifact digest, or None if the artifacts are absent."""
        skel_art = self.store.get(skeleton_digest)
        if skel_art is None:
            return None
        sig_art = self.store.get(str(skel_art.content["signature_digest"]))
        if sig_art is None:
            return None
        signature = signature_from_dict(sig_art.content["signature"])
        scaled = scale_signature(signature, float(skel_art.content["K"]))
        return skeleton_program(scaled)
