"""Scan-and-repair (``fsck``) for the artifact store and campaign journals.

The store's read path already refuses to serve torn or bit-rotted
artifacts (a corrupt object reads as a miss), and journal replay
already skips a truncated trailing line — so a damaged cache is never
*wrong*, just slow and noisy. This module is the repair half of that
story, powering the ``repro-skeleton doctor`` CLI:

* corrupt objects (unparseable envelope, content/blob digest mismatch,
  missing blob) are **quarantined** — moved, together with the blobs
  their envelope references, into ``<root>/store/quarantine/`` for
  post-mortem instead of being deleted;
* unreferenced blobs older than the orphan grace period are
  quarantined; stale ``.tmp`` files from crashed writers are removed
  (both respect :data:`~repro.store.store.DEFAULT_ORPHAN_GRACE_SECONDS`
  so a concurrent writer mid-publish is never raced);
* campaign journals (``journal-*.jsonl`` under the cache root) are
  truncated back to their last intact line, dropping the partial
  trailing line a mid-write kill leaves behind;
* an optional byte quota (``max_cache_bytes``) is enforced by LRU
  eviction — reads touch object mtimes, so the least recently *used*
  artifacts go first.

Everything is reported in an :class:`FsckReport`; with ``repair=False``
the scan is a dry run that mutates nothing. Repairs are counted
through the :mod:`repro.obs.metrics` registry (``store.quarantined``,
``store.evicted``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import StoreError
from repro.obs.metrics import get_metrics
from repro.store.store import (
    DEFAULT_ORPHAN_GRACE_SECONDS,
    ArtifactStore,
    _is_tmp,
    _older_than,
)

__all__ = ["FsckReport", "fsck"]


@dataclass
class FsckReport:
    """What one fsck pass found (and, unless dry-run, repaired)."""

    root: str
    repaired: bool = True
    objects_scanned: int = 0
    corrupt_objects: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    orphan_blobs: list[str] = field(default_factory=list)
    tmp_removed: list[str] = field(default_factory=list)
    journals_scanned: int = 0
    journals_repaired: list[str] = field(default_factory=list)
    partial_lines_dropped: int = 0
    evicted: list[str] = field(default_factory=list)
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def issues(self) -> int:
        """Number of problems found (quota eviction is not a problem)."""
        return (
            len(self.corrupt_objects)
            + len(self.orphan_blobs)
            + len(self.tmp_removed)
            + len(self.journals_repaired)
        )

    @property
    def clean(self) -> bool:
        return self.issues == 0

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "repaired": self.repaired,
            "clean": self.clean,
            "objects_scanned": self.objects_scanned,
            "corrupt_objects": list(self.corrupt_objects),
            "quarantined": list(self.quarantined),
            "orphan_blobs": list(self.orphan_blobs),
            "tmp_removed": list(self.tmp_removed),
            "journals_scanned": self.journals_scanned,
            "journals_repaired": list(self.journals_repaired),
            "partial_lines_dropped": self.partial_lines_dropped,
            "evicted": list(self.evicted),
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }

    def render(self) -> str:
        mode = "repaired" if self.repaired else "dry run"
        lines = [f"fsck of {self.root} ({mode})"]
        lines.append(
            f"  objects scanned:   {self.objects_scanned}"
            f" ({len(self.corrupt_objects)} corrupt)"
        )
        for name in self.corrupt_objects:
            lines.append(f"    corrupt: {name}")
        if self.quarantined:
            lines.append(f"  quarantined files: {len(self.quarantined)}")
        if self.orphan_blobs:
            lines.append(f"  orphan blobs:      {len(self.orphan_blobs)}")
        if self.tmp_removed:
            lines.append(f"  stale tmp files:   {len(self.tmp_removed)}")
        lines.append(
            f"  journals scanned:  {self.journals_scanned}"
            f" ({len(self.journals_repaired)} repaired,"
            f" {self.partial_lines_dropped} partial line(s) dropped)"
        )
        if self.evicted:
            lines.append(f"  evicted for quota: {len(self.evicted)}")
        lines.append(
            f"  cache size:        {self.bytes_before} -> {self.bytes_after} bytes"
        )
        lines.append("  status:            " + ("CLEAN" if self.clean else "REPAIRED"
                                                if self.repaired else "ISSUES FOUND"))
        return "\n".join(lines)


def _count_metric(name: str, help_text: str, n: int = 1) -> None:
    if n <= 0:
        return
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(name, help_text).inc(n)


def _quarantine_file(store: ArtifactStore, path: Path, report: FsckReport,
                     repair: bool) -> None:
    """Move ``path`` into the quarantine directory (unique name)."""
    rel = str(path.relative_to(store.root))
    if not repair:
        return
    store._quarantine.mkdir(parents=True, exist_ok=True)
    dest = store._quarantine / path.name
    n = 0
    while dest.exists():
        n += 1
        dest = store._quarantine / f"{path.name}.{n}"
    try:
        os.replace(path, dest)
    except OSError:
        return
    report.quarantined.append(rel)
    _count_metric("store.quarantined", "corrupt store files quarantined")


def _fsck_objects(store: ArtifactStore, report: FsckReport, repair: bool,
                  grace_seconds: float) -> None:
    referenced: set[Path] = set()
    for path in store._object_files():
        report.objects_scanned += 1
        try:
            envelope = store._load_envelope(path)
            blobs = store._verify_envelope(envelope, path)
            referenced.update(blobs.values())
            continue
        except StoreError:
            pass
        report.corrupt_objects.append(str(path.relative_to(store.root)))
        # Quarantine the envelope plus every blob it still references:
        # a digest-mismatched blob must leave the store with its object.
        listed: list[Path] = []
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            for meta in (envelope.get("blobs") or {}).values():
                blob = store.root / str(meta.get("file", ""))
                if blob.is_file():
                    listed.append(blob)
        except (OSError, json.JSONDecodeError, AttributeError):
            pass
        _quarantine_file(store, path, report, repair)
        for blob in listed:
            _quarantine_file(store, blob, report, repair)

    # Orphan blobs (stale + unreferenced) and leftover atomic-write tmps.
    for base in (store._objects, store._blob_dir):
        if not base.exists():
            continue
        for tmp in sorted(base.rglob("*")):
            if tmp.is_file() and _is_tmp(tmp) and _older_than(tmp, grace_seconds):
                report.tmp_removed.append(str(tmp.relative_to(store.root)))
                if repair:
                    try:
                        tmp.unlink()
                    except FileNotFoundError:
                        pass
    if store._blob_dir.exists():
        for blob in sorted(store._blob_dir.glob("*")):
            if not blob.is_file() or blob in referenced or _is_tmp(blob):
                continue
            if not _older_than(blob, grace_seconds):
                continue
            report.orphan_blobs.append(str(blob.relative_to(store.root)))
            _quarantine_file(store, blob, report, repair)


def _fsck_journal(path: Path, report: FsckReport, repair: bool) -> None:
    """Truncate ``path`` back to its last intact JSON line."""
    report.journals_scanned += 1
    try:
        data = path.read_bytes()
    except OSError:
        return
    keep = len(data)
    dropped = 0
    while keep > 0:
        nl = data.rfind(b"\n", 0, keep)
        if nl == keep - 1:
            prev = data.rfind(b"\n", 0, nl)
            line = data[prev + 1:nl].strip()
            if not line:
                keep = prev + 1
                continue
            try:
                json.loads(line)
                break
            except json.JSONDecodeError:
                keep = prev + 1
                dropped += 1
        else:
            # Unterminated tail: the partial line a mid-write kill leaves.
            keep = nl + 1
            dropped += 1
    if keep == len(data):
        return
    report.journals_repaired.append(path.name)
    report.partial_lines_dropped += dropped
    if repair:
        with open(path, "r+b") as fh:
            fh.truncate(keep)


def fsck(
    store: ArtifactStore,
    repair: bool = True,
    max_cache_bytes: Optional[int] = None,
    grace_seconds: float = DEFAULT_ORPHAN_GRACE_SECONDS,
) -> FsckReport:
    """Scan the store and campaign journals; repair unless ``repair`` is
    False (dry run). Returns the :class:`FsckReport`.

    Repair quarantines corrupt objects (with their blobs) and stale
    orphan blobs, removes stale ``.tmp`` files, truncates torn trailing
    journal lines, and — when ``max_cache_bytes`` is set — evicts least
    recently used artifacts until the store fits the quota.
    """
    report = FsckReport(root=str(store.root), repaired=repair)
    report.bytes_before = store.total_bytes()
    _fsck_objects(store, report, repair, grace_seconds)
    for journal in sorted(store.root.glob("journal-*.jsonl")):
        _fsck_journal(journal, report, repair)
    if max_cache_bytes is not None and repair:
        report.evicted = store.gc(max_bytes=max_cache_bytes, order="lru")
        _count_metric(
            "store.evicted", "artifacts evicted by fsck quota",
            len(report.evicted),
        )
    report.bytes_after = store.total_bytes()
    return report
