"""Content-addressed artifact store and pipeline stage memoization.

Two layers (see ``docs/SCALING.md`` for the full contract):

* :mod:`repro.store.store` — :class:`ArtifactStore`: BLAKE2-keyed,
  integrity-verified persistence of pipeline artifacts (traces,
  signatures, skeletons, run results, campaign results) under one
  cache root, with hit/miss/eviction metrics and ``repro-skeleton
  store ls|verify|gc|prune`` CLI maintenance;
* :mod:`repro.store.memo` — :class:`PipelineCache`: memoization
  wrappers for the compress/construct/simulate hot path, used by the
  campaign runner (serial and parallel) so a warm cache re-runs the
  whole pipeline with zero recomputation.
* :mod:`repro.store.fsck` — :func:`fsck` / :class:`FsckReport`:
  scan-and-repair for the cache and campaign journals (quarantine,
  journal truncation, LRU quota), behind the ``repro-skeleton doctor``
  CLI.
"""

from repro.store.fsck import FsckReport, fsck
from repro.store.store import (
    Artifact,
    ArtifactStore,
    CODE_SALT,
    DEFAULT_CACHE_DIR_NAME,
    DEFAULT_ORPHAN_GRACE_SECONDS,
    StoreKey,
    canonical_json,
    content_digest,
    find_project_root,
    resolve_cache_dir,
)
from repro.store.memo import (
    PipelineCache,
    cluster_fingerprint,
    runresult_from_dict,
    runresult_to_dict,
    scenario_fingerprint,
    skeleton_program_params,
    workload_params,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "CODE_SALT",
    "DEFAULT_CACHE_DIR_NAME",
    "DEFAULT_ORPHAN_GRACE_SECONDS",
    "FsckReport",
    "PipelineCache",
    "StoreKey",
    "canonical_json",
    "cluster_fingerprint",
    "content_digest",
    "find_project_root",
    "fsck",
    "resolve_cache_dir",
    "runresult_from_dict",
    "runresult_to_dict",
    "scenario_fingerprint",
    "skeleton_program_params",
    "workload_params",
]
