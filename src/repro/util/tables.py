"""Plain-text table rendering for experiment reports.

The benches print each paper figure as a text table; this module keeps
that formatting in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A simple column-aligned table with an optional title."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.2e}"
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a table as aligned monospace text."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    headers = [str(c) for c in columns]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
