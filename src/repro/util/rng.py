"""Deterministic random-number utilities.

Every stochastic element of the library (compute jitter, workload data
imbalance) draws from a :class:`numpy.random.Generator` derived from an
explicit seed, so any experiment is exactly reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from a base seed and a label path.

    The derivation hashes the labels, so statistically independent
    streams are obtained for e.g. different ranks of the same run
    without the correlation pitfalls of ``base_seed + rank``.
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "little")


def make_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Create a generator seeded by :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(base_seed, *labels))
