"""Shared low-level helpers (no dependencies on other repro packages)."""

from repro.util.timebase import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_duration,
    quantize_us,
)
from repro.util.rng import derive_seed, make_rng
from repro.util.stats import (
    ErrorSummary,
    geometric_mean,
    mean,
    percent_error,
    relative_error,
    summarize_errors,
    weighted_mean,
)
from repro.util.tables import Table, render_table

__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "format_duration",
    "quantize_us",
    "derive_seed",
    "make_rng",
    "ErrorSummary",
    "geometric_mean",
    "mean",
    "percent_error",
    "relative_error",
    "summarize_errors",
    "weighted_mean",
    "Table",
    "render_table",
]
