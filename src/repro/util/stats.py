"""Small statistics helpers used by the prediction and experiment layers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total_w = sum(weights)
    if total_w <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total_w


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_error(predicted: float, actual: float) -> float:
    """|predicted - actual| / actual, the paper's prediction-error metric."""
    if actual <= 0:
        raise ValueError("actual value must be positive")
    return abs(predicted - actual) / actual


def percent_error(predicted: float, actual: float) -> float:
    """Relative error expressed in percent."""
    return 100.0 * relative_error(predicted, actual)


@dataclass(frozen=True)
class ErrorSummary:
    """Min / mean / max of a collection of error values (Figure 7 rows)."""

    minimum: float
    average: float
    maximum: float
    count: int

    def as_row(self) -> tuple[float, float, float]:
        return (self.minimum, self.average, self.maximum)


def summarize_errors(errors: Iterable[float]) -> ErrorSummary:
    """Build an :class:`ErrorSummary` from raw error values."""
    values = list(errors)
    if not values:
        raise ValueError("no error values to summarize")
    return ErrorSummary(
        minimum=min(values),
        average=mean(values),
        maximum=max(values),
        count=len(values),
    )
