"""ASCII bar charts for terminal reports.

The paper presents its results as bar charts; the report renderer uses
these to echo that presentation in plain text alongside the numeric
tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_BAR = "█"
_HALF = "▌"


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one bar per (label -> value)."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    peak = max(values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        frac = value / peak
        n_full = int(frac * width)
        half = (frac * width - n_full) >= 0.5
        bar = _BAR * n_full + (_HALF if half else "")
        lines.append(
            f"{str(label).ljust(label_w)} |{bar.ljust(width)}| "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Bars grouped under headers: {group: {label: value}} — used for
    the per-benchmark figures."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    peak = max(
        (v for sub in groups.values() for v in sub.values()), default=1.0
    ) or 1.0
    label_w = max(
        len(str(k)) for sub in groups.values() for k in sub
    )
    lines = [title] if title else []
    for group, sub in groups.items():
        lines.append(f"{group}:")
        for label, value in sub.items():
            n_full = int(value / peak * width)
            lines.append(
                f"  {str(label).ljust(label_w)} |{(_BAR * n_full).ljust(width)}| "
                f"{value:.2f}{unit}"
            )
    return "\n".join(lines)


def series_summary(values: Sequence[float]) -> str:
    """One-line min/avg/max summary used under charts."""
    if not values:
        raise ValueError("series_summary needs values")
    return (
        f"min {min(values):.2f}  "
        f"avg {sum(values) / len(values):.2f}  "
        f"max {max(values):.2f}"
    )
