"""ASCII bar charts for terminal reports.

The paper presents its results as bar charts; the report renderer uses
these to echo that presentation in plain text alongside the numeric
tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_BAR = "█"
_HALF = "▌"


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one bar per (label -> value)."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    peak = max(values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        frac = value / peak
        n_full = int(frac * width)
        half = (frac * width - n_full) >= 0.5
        bar = _BAR * n_full + (_HALF if half else "")
        lines.append(
            f"{str(label).ljust(label_w)} |{bar.ljust(width)}| "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Bars grouped under headers: {group: {label: value}} — used for
    the per-benchmark figures."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    peak = max(
        (v for sub in groups.values() for v in sub.values()), default=1.0
    ) or 1.0
    label_w = max(
        len(str(k)) for sub in groups.values() for k in sub
    )
    lines = [title] if title else []
    for group, sub in groups.items():
        lines.append(f"{group}:")
        for label, value in sub.items():
            n_full = int(value / peak * width)
            lines.append(
                f"  {str(label).ljust(label_w)} |{(_BAR * n_full).ljust(width)}| "
                f"{value:.2f}{unit}"
            )
    return "\n".join(lines)


#: Glyph cycle for segments of a stacked bar (compute, mpi, ...).
_SEGMENT_GLYPHS = ("█", "░", "▒", "▓")


def segmented_bar_chart(
    title: str,
    rows: Mapping[str, Sequence[tuple[str, float]]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Stacked horizontal bars: one bar per row, one glyph per segment.

    ``rows`` maps a row label to ``[(segment label, value), ...]``;
    segment order is preserved and all rows share one scale (the
    largest row total). Used by the timeline recorder's per-rank
    activity summary, where the segments are compute vs MPI time.
    """
    if not rows:
        raise ValueError("segmented_bar_chart needs at least one row")
    for segments in rows.values():
        if any(v < 0 for _, v in segments):
            raise ValueError("segmented_bar_chart values must be non-negative")
    peak = max(sum(v for _, v in segments) for segments in rows.values()) or 1.0
    label_w = max(len(str(k)) for k in rows)
    seg_labels: list[str] = []
    for segments in rows.values():
        for name, _ in segments:
            if name not in seg_labels:
                seg_labels.append(name)
    lines = [title] if title else []
    legend = "  ".join(
        f"{_SEGMENT_GLYPHS[i % len(_SEGMENT_GLYPHS)]} {name}"
        for i, name in enumerate(seg_labels)
    )
    lines.append(legend)
    for label, segments in rows.items():
        total = sum(v for _, v in segments)
        bar = ""
        for name, value in segments:
            glyph = _SEGMENT_GLYPHS[seg_labels.index(name) % len(_SEGMENT_GLYPHS)]
            bar += glyph * int(round(value / peak * width))
        lines.append(
            f"{str(label).ljust(label_w)} |{bar.ljust(width)}| "
            f"{total:.3f}{unit}"
        )
    return "\n".join(lines)


def series_summary(values: Sequence[float]) -> str:
    """One-line min/avg/max summary used under charts."""
    if not values:
        raise ValueError("series_summary needs values")
    return (
        f"min {min(values):.2f}  "
        f"avg {sum(values) / len(values):.2f}  "
        f"max {max(values):.2f}"
    )
