"""Time units and formatting.

All simulator times are floats in **seconds**. The paper's profiling
library timestamps at microsecond granularity (Linux ``gettimeofday``);
:func:`quantize_us` reproduces that quantisation for trace records.
"""

from __future__ import annotations

#: One second, the base unit of simulated time.
SECOND: float = 1.0
#: One millisecond in seconds.
MILLISECOND: float = 1e-3
#: One microsecond in seconds — the trace timestamp resolution.
MICROSECOND: float = 1e-6


def quantize_us(t: float) -> float:
    """Round a time to microsecond granularity.

    Mirrors the paper's ``gettimeofday``-based tracer: recorded
    timestamps carry at most microsecond resolution, so compute gaps
    derived from them inherit the same quantisation.
    """
    return round(t * 1e6) / 1e6


def format_duration(seconds: float) -> str:
    """Human-readable duration: ``"823 us"``, ``"14.2 ms"``, ``"3.50 s"``,
    ``"2 m 03 s"``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    minutes = int(seconds // 60)
    return f"{minutes} m {seconds - 60 * minutes:02.0f} s"
