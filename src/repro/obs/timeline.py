"""Per-rank activity timelines exported as Chrome trace events.

:class:`TimelineRecorder` is an :class:`~repro.sim.engine.EngineHook`
that reconstructs, for every rank, the alternation the paper's
analysis is built on: **compute** (gaps between user-level MPI calls)
and **blocked-in-MPI** (the recorded call durations). It also captures
point-to-point **message flights** (send time to delivery) and, at a
configurable simulated-time period, sampled **resource utilization**
from the engine's fluid model.

Everything exports to the Chrome trace-event JSON format — the
``{"traceEvents": [...]}`` flavour — which Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly:

* rank activity: complete events (``ph: "X"``) on ``pid 0``, one
  thread track per rank;
* message flights: complete events on ``pid 1``, tracked per source
  rank, named ``src->dst``;
* message causality: flow events (``ph: "s"`` at the send on the
  source rank's track, ``ph: "f"`` at delivery on the destination
  rank's track) so Perfetto draws send→recv arrows between the rank
  spans;
* utilization samples: counter events (``ph: "C"``), one counter track
  per resource.

Timestamps are microseconds of *simulated* time. Span bookkeeping
uses the engine's raw float times (not the tracer's quantised
microseconds), so per-rank ``compute + blocked`` totals reconcile
exactly with ``RunResult.finish_times``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import TraceError
from repro.sim.engine import EngineHook

__all__ = ["ActivitySpan", "FaultSpan", "MessageFlight", "TimelineRecorder"]

#: Span kinds.
COMPUTE = "compute"
MPI = "mpi"


@dataclass(frozen=True)
class ActivitySpan:
    """One contiguous interval of a rank's time."""

    rank: int
    kind: str  # COMPUTE or MPI
    name: str  # "compute" or the MPI call name
    t_start: float
    t_end: float
    args: Optional[dict] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class FaultSpan:
    """One applied fault-plan event (window or delayed message)."""

    kind: str  # e.g. "link_degrade", "rank_stall", "message_drop"
    target: str  # e.g. "node 0", "rank 2", "0->1"
    t_start: float
    t_end: float
    detail: Optional[dict] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class MessageFlight:
    """One point-to-point message from send to delivery."""

    src: int
    dst: int
    nbytes: int
    tag: int
    t_sent: float
    t_delivered: float

    @property
    def flight_time(self) -> float:
        return self.t_delivered - self.t_sent


class TimelineRecorder(EngineHook):
    """Records spans, message flights, and utilization samples.

    Attach to a run via :func:`repro.sim.run_program`'s ``hook=`` (or
    an :class:`~repro.sim.engine.Engine` directly)::

        rec = TimelineRecorder(sample_period=0.05)
        result = run_program(program, cluster, hook=rec)
        rec.write_chrome_trace("run.json")
        print(rec.render_summary())

    ``sample_period`` is in simulated seconds; 0 disables utilization
    sampling. Recording adds zero *simulated* overhead — the run's
    timing and event count are identical with or without the hook.
    """

    def __init__(
        self,
        program_name: str = "",
        scenario_name: str = "",
        sample_period: float = 0.0,
        record_messages: bool = True,
    ):
        if sample_period < 0:
            raise ValueError("sample_period must be >= 0")
        self.program_name = program_name
        self.scenario_name = scenario_name
        self.sample_period = float(sample_period)
        self.record_messages = record_messages
        self.spans: list[ActivitySpan] = []
        self.messages: list[MessageFlight] = []
        #: Applied fault-plan events (see repro.faults).
        self.faults: list[FaultSpan] = []
        #: (t, {resource name: utilization fraction}) samples.
        self.samples: list[tuple[float, dict]] = []
        self.finish_times: tuple[float, ...] = ()
        self._last_end: list[float] = []
        self._done = False

    # -- EngineHook ------------------------------------------------------

    def on_run_start(self, nranks: int, t: float) -> None:
        self.spans = []
        self.messages = []
        self.faults = []
        self.samples = []
        self.finish_times = ()
        self._last_end = [t] * nranks
        self._done = False

    def on_call(
        self, rank: int, name: str, params: dict, t_start: float, t_end: float
    ) -> None:
        last = self._last_end[rank]
        if t_start > last:
            self.spans.append(
                ActivitySpan(rank, COMPUTE, "compute", last, t_start)
            )
        self.spans.append(
            ActivitySpan(rank, MPI, name, t_start, t_end, dict(params))
        )
        if t_end > last:
            self._last_end[rank] = t_end

    def on_message(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        t_sent: float,
        t_delivered: float,
    ) -> None:
        if self.record_messages:
            self.messages.append(
                MessageFlight(src, dst, nbytes, tag, t_sent, t_delivered)
            )

    def on_sample(self, t: float, utilization: Mapping[str, float]) -> None:
        self.samples.append((t, dict(utilization)))

    def on_fault(
        self, kind: str, target: str, t_start: float, t_end: float, detail: dict
    ) -> None:
        self.faults.append(
            FaultSpan(kind, target, t_start, t_end, dict(detail) if detail else None)
        )

    def on_run_end(self, finish_times: Sequence[float]) -> None:
        for rank, finish in enumerate(finish_times):
            last = self._last_end[rank]
            if finish > last:
                self.spans.append(
                    ActivitySpan(rank, COMPUTE, "compute", last, finish)
                )
                self._last_end[rank] = finish
        self.finish_times = tuple(finish_times)
        self._done = True

    # -- derived views ---------------------------------------------------

    def _require_done(self) -> None:
        if not self._done:
            raise TraceError("no completed run has been recorded")

    @property
    def nranks(self) -> int:
        self._require_done()
        return len(self.finish_times)

    def activity_totals(self) -> dict[int, dict[str, float]]:
        """Per-rank ``{"compute": s, "mpi": s}`` span totals.

        For every rank ``compute + mpi`` equals the rank's finish time:
        the spans tile ``[0, finish]`` with no gaps or overlaps.
        """
        self._require_done()
        totals: dict[int, dict[str, float]] = {
            r: {COMPUTE: 0.0, MPI: 0.0} for r in range(self.nranks)
        }
        for span in self.spans:
            totals[span.rank][span.kind] += span.duration
        return totals

    # -- Chrome trace export ---------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The run as a Chrome trace-event JSON object (Perfetto-ready)."""
        self._require_done()
        scale = 1e6  # seconds -> microseconds
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": f"ranks ({self.program_name or 'run'})"},
            },
        ]
        for rank in range(self.nranks):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": rank,
                    "args": {"name": f"rank {rank}"},
                }
            )
        for span in self.spans:
            ev = {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.t_start * scale,
                "dur": span.duration * scale,
                "pid": 0,
                "tid": span.rank,
            }
            if span.args:
                ev["args"] = span.args
            events.append(ev)
        if self.messages:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 0,
                    "args": {"name": "messages"},
                }
            )
            for i, msg in enumerate(self.messages):
                events.append(
                    {
                        "name": f"{msg.src}->{msg.dst}",
                        "cat": "message",
                        "ph": "X",
                        "ts": msg.t_sent * scale,
                        "dur": msg.flight_time * scale,
                        "pid": 1,
                        "tid": msg.src,
                        "args": {"bytes": msg.nbytes, "tag": msg.tag},
                    }
                )
                # Flow events pair each send with its delivery on the
                # rank tracks, so Perfetto draws the causality arrow.
                events.append(
                    {
                        "name": f"{msg.src}->{msg.dst}",
                        "cat": "message",
                        "ph": "s",
                        "id": i,
                        "ts": msg.t_sent * scale,
                        "pid": 0,
                        "tid": msg.src,
                    }
                )
                events.append(
                    {
                        "name": f"{msg.src}->{msg.dst}",
                        "cat": "message",
                        "ph": "f",
                        "bp": "e",
                        "id": i,
                        "ts": msg.t_delivered * scale,
                        "pid": 0,
                        "tid": msg.dst,
                    }
                )
        if self.faults:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 2,
                    "tid": 0,
                    "args": {"name": "faults"},
                }
            )
            # One thread track per fault target, in order of appearance.
            tids: dict[str, int] = {}
            for fs in self.faults:
                tid = tids.setdefault(fs.target, len(tids))
                ev = {
                    "name": f"{fs.kind} {fs.target}",
                    "cat": "fault",
                    "ph": "X",
                    "ts": fs.t_start * scale,
                    "dur": fs.duration * scale,
                    "pid": 2,
                    "tid": tid,
                }
                if fs.detail:
                    ev["args"] = fs.detail
                events.append(ev)
            for target, tid in tids.items():
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 2,
                        "tid": tid,
                        "args": {"name": target},
                    }
                )
        for t, util in self.samples:
            for resource, frac in util.items():
                events.append(
                    {
                        "name": resource,
                        "cat": "utilization",
                        "ph": "C",
                        "ts": t * scale,
                        "pid": 0,
                        "tid": 0,
                        "args": {"utilization": frac},
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "program": self.program_name,
                "scenario": self.scenario_name,
                "nranks": self.nranks,
            },
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
            fh.write("\n")

    # -- terminal rendering ----------------------------------------------

    def render_summary(self, width: int = 40) -> str:
        """Per-rank activity bars plus a message/sample footer."""
        from repro.util.charts import segmented_bar_chart

        self._require_done()
        totals = self.activity_totals()
        rows = {
            f"rank {rank}": [
                ("compute", t[COMPUTE]),
                ("mpi", t[MPI]),
            ]
            for rank, t in totals.items()
        }
        title = "per-rank activity (seconds)"
        if self.program_name:
            title = f"{self.program_name}: {title}"
        lines = [segmented_bar_chart(title, rows, width=width)]
        if self.messages:
            flight = [m.flight_time for m in self.messages]
            lines.append(
                f"messages: {len(self.messages)}  "
                f"mean flight {sum(flight) / len(flight) * 1e6:.1f}us  "
                f"max {max(flight) * 1e6:.1f}us"
            )
        if self.faults:
            kinds: dict[str, int] = {}
            for fs in self.faults:
                kinds[fs.kind] = kinds.get(fs.kind, 0) + 1
            summary = ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
            lines.append(f"fault events: {len(self.faults)} ({summary})")
        if self.samples:
            lines.append(f"utilization samples: {len(self.samples)}")
        return "\n".join(lines)
