"""Unified observability layer: metrics, timelines, instrumentation.

Three pieces, designed in rather than bolted on:

* :mod:`repro.obs.metrics` — a process-wide **metrics registry**
  (counters, gauges, histograms, stage timers). The engine loop, the
  fluid allocator, the message matcher, and every skeleton-construction
  pass report into the active registry; the default registry is
  disabled and costs (near) nothing.
* :mod:`repro.obs.timeline` — a **timeline recorder** engine hook that
  captures per-rank compute/blocked spans, message flights, and
  sampled resource utilization, exporting Chrome-trace-event JSON that
  Perfetto loads directly.
* :mod:`repro.obs.tracing` — **distributed tracing** for the serving
  stack (:mod:`repro.serve`): propagated trace contexts, a per-process
  span recorder (the **flight recorder**, a bounded always-on ring),
  and Perfetto export of serve spans joined by flow events.
* :mod:`repro.obs.log` — **structured JSON logging** with automatic
  trace correlation, replacing bare prints in the serving stack.
* CLI surface — ``repro-skeleton profile``, ``repro-skeleton
  timeline``, ``repro-skeleton trace-dump``, ``call --trace``, and the
  global ``--metrics-out`` flag (see :mod:`repro.cli`).

See ``docs/OBSERVABILITY.md`` for the user guide.
"""

from repro.obs.log import StructuredLogger, get_logger, set_log_stream
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    enabled_metrics,
    get_metrics,
    render_metrics,
    set_metrics,
)
from repro.obs.tracing import (
    FlightRecorder,
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    enabled_tracing,
    get_tracer,
    new_root_context,
    render_span_tree,
    set_tracer,
    spans_to_chrome_trace,
)

# The timeline recorder subclasses EngineHook, and the engine itself
# imports repro.obs.metrics — import it lazily to keep the package
# acyclic regardless of which side is imported first.
_TIMELINE_NAMES = ("ActivitySpan", "FaultSpan", "MessageFlight", "TimelineRecorder")


def __getattr__(name: str):
    if name in _TIMELINE_NAMES:
        from repro.obs import timeline

        return getattr(timeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ActivitySpan",
    "Counter",
    "FaultSpan",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MessageFlight",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Span",
    "StructuredLogger",
    "TimelineRecorder",
    "TraceContext",
    "Tracer",
    "enabled_metrics",
    "enabled_tracing",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "new_root_context",
    "render_metrics",
    "render_span_tree",
    "set_log_stream",
    "set_metrics",
    "set_tracer",
    "spans_to_chrome_trace",
]
