"""Lightweight metrics registry: counters, gauges, histograms, timers.

The registry is the numeric backbone of the observability layer: the
engine loop, the fluid allocator, the message matcher, and every
skeleton-construction pass report into it, and the CLI (``profile``,
``--metrics-out``) and the campaign runner read it back out.

Design constraints, in order:

1. **Near-zero cost when disabled.** The default global registry is
   disabled; a disabled registry hands out a shared null instrument
   whose mutators are empty methods, and exposes ``enabled`` so hot
   loops can hoist a single boolean check instead of even the null
   call. Instrumented code never pays dict lookups when observability
   is off.
2. **No effect on simulation.** Instruments only accumulate Python
   numbers; nothing feeds back into engine state, so a run with
   metrics enabled is bit-identical to one without.
3. **Plain-data snapshots.** ``snapshot()`` returns JSON-ready dicts so
   ``--metrics-out`` and tests need no custom serialisation.

Usage::

    from repro.obs import enabled_metrics, get_metrics

    with enabled_metrics() as m:
        run_program(program, cluster)
        m.counter("engine.messages").value

Instrumentation sites call :func:`get_metrics` at setup time (per run,
per pass) — not at import time — so enabling a registry takes effect
for everything constructed afterwards.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "enabled_metrics",
    "get_metrics",
    "render_metrics",
    "set_metrics",
]

#: Default histogram buckets: exponential, spanning microseconds to
#: minutes (seconds) or single items to millions (counts).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1000.0
)


def _label_key(labels: Mapping[str, object]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (optionally labelled)."""

    __slots__ = ("name", "help", "value", "_children")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0
        self._children: dict[tuple, Counter] = {}

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def labels(self, **labels: object) -> "Counter":
        """Child counter for one label combination (created on demand)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = Counter(self.name, self.help)
            self._children[key] = child
        return child

    def snapshot(self) -> dict:
        out: dict = {"type": "counter", "value": self.value}
        if self._children:
            out["labels"] = {
                "|".join(f"{k}={v}" for k, v in key): child.value
                for key, child in sorted(self._children.items())
            }
        return out


class Gauge:
    """A value that can go up and down (e.g. queue depth, utilization)."""

    __slots__ = ("name", "help", "value", "_children")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0
        self._children: dict[tuple, Gauge] = {}

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def labels(self, **labels: object) -> "Gauge":
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = Gauge(self.name, self.help)
            self._children[key] = child
        return child

    def snapshot(self) -> dict:
        out: dict = {"type": "gauge", "value": self.value}
        if self._children:
            out["labels"] = {
                "|".join(f"{k}={v}" for k, v in key): child.value
                for key, child in sorted(self._children.items())
            }
        return out


class Histogram:
    """Bucketed histogram plus sum/count/min/max.

    Snapshots expose cumulative buckets (count of observations
    ``<= bound``); an implicit +inf bucket catches the rest (``count``
    minus the last bound's cumulative count). Internally each
    observation lands in a single bucket via bisect so ``observe`` is
    cheap enough for per-event call sites.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count",
                 "total", "min", "max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Per-bucket count; cumulated lazily in snapshot(). Values past
        # the last bound land only in the implicit +inf bucket (count).
        i = bisect_left(self.bounds, value)
        if i < len(self.bounds):
            self.bucket_counts[i] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation over the cumulative bucket counts — the
        standard histogram-quantile estimate — with the result clamped
        to the observed ``[min, max]`` so a coarse first/last bucket
        cannot report a value outside what was actually seen. Returns
        ``None`` when nothing has been observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q!r}")
        if not self.count:
            return None
        rank = q * self.count
        cumulative = 0
        lo = self.min  # lower edge of the current bucket
        for bound, n in zip(self.bounds, self.bucket_counts):
            if n:
                if cumulative + n >= rank:
                    fraction = (rank - cumulative) / n
                    value = lo + fraction * (bound - lo)
                    return min(max(value, self.min), self.max)
                cumulative += n
            lo = bound
        # The remaining mass lives in the implicit +inf bucket; its
        # only honest point estimate is the observed maximum.
        return self.max

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": self._cumulative_buckets(),
        }

    def _cumulative_buckets(self) -> dict:
        out: dict = {}
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out[f"{bound:g}"] = running
        return out


class _NullInstrument:
    """Shared do-nothing stand-in handed out by disabled registries.

    Implements the union of the mutator surfaces so any instrument
    handle obtained from a disabled registry is safe to poke.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def quantile(self, q: float) -> None:
        return None

    @property
    def value(self) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}


_NULL = _NullInstrument()


class _Timer:
    """Context manager feeding wall time into a histogram."""

    __slots__ = ("_hist", "_t0", "elapsed")

    def __init__(self, hist):
        self._hist = hist
        self._t0 = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._hist.observe(self.elapsed)


class MetricsRegistry:
    """Named instruments with one shared enabled/disabled switch.

    Instrument getters are idempotent: the first call creates, later
    calls return the same object (the help string of the first call
    wins). Asking a *disabled* registry for an instrument returns the
    shared null instrument, so instrumented code needs no branches of
    its own — though hot loops should hoist ``registry.enabled``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._instruments: dict[str, object] = {}

    # -- instrument factories -------------------------------------------

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str, help: str = ""):
        if not self.enabled:
            return _NULL
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = ""):
        if not self.enabled:
            return _NULL
        return self._get(name, Gauge, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if not self.enabled:
            return _NULL
        return self._get(name, Histogram, help, buckets)

    def timer(self, name: str, help: str = "") -> _Timer:
        """Wall-clock stage timer: ``with m.timer("compress.search"):``.

        Observations land in a histogram named ``<name>_seconds``.
        """
        return _Timer(self.histogram(f"{name}_seconds", help))

    # -- output ----------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as a plain ``{name: data}`` dict."""
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._instruments.items())
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def clear(self) -> None:
        self._instruments.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str):
        return self._instruments[name]


#: The always-disabled registry active by default: instrumentation in
#: library code resolves to null instruments unless a caller opts in.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_active: MetricsRegistry = NULL_REGISTRY


def get_metrics() -> MetricsRegistry:
    """The currently active registry (disabled null one by default)."""
    return _active


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous.

    Passing ``None`` restores the default disabled registry.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


def render_metrics(registry: MetricsRegistry) -> str:
    """Terminal report of a registry: counters/gauges, then timings.

    Histograms whose name ends in ``_seconds`` render as stage timings
    with count/mean/total; other histograms show count and mean.
    """
    from repro.util.tables import render_table

    def _q(inst: dict, key: str, fmt: str) -> str:
        value = inst.get(key)
        return format(value, fmt) if value is not None else "-"

    scalars: list[tuple] = []
    timings: list[tuple] = []
    distributions: list[tuple] = []
    for name, inst in sorted(registry.snapshot().items()):
        kind = inst.get("type")
        if kind in ("counter", "gauge"):
            scalars.append((name, kind, f"{inst['value']:g}"))
        elif name.endswith("_seconds"):
            timings.append(
                (name, inst["count"], f"{inst['mean']:.4f}",
                 _q(inst, "p50", ".4f"), _q(inst, "p95", ".4f"),
                 _q(inst, "p99", ".4f"), f"{inst['sum']:.4f}")
            )
        else:
            distributions.append(
                (name, inst["count"], f"{inst['mean']:.2f}",
                 _q(inst, "p50", ".2f"), _q(inst, "p95", ".2f"),
                 _q(inst, "p99", ".2f"), f"{inst['max']:g}")
            )
    parts: list[str] = []
    if scalars:
        parts.append(render_table("metrics", ("name", "type", "value"), scalars))
    if timings:
        parts.append(
            render_table(
                "stage timings (seconds)",
                ("stage", "count", "mean s", "p50 s", "p95 s", "p99 s",
                 "total s"),
                timings,
            )
        )
    if distributions:
        parts.append(
            render_table(
                "distributions",
                ("name", "count", "mean", "p50", "p95", "p99", "max"),
                distributions,
            )
        )
    if not parts:
        return "no metrics recorded"
    return "\n\n".join(parts)


@contextmanager
def enabled_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Scope with metrics collection on; yields the active registry.

    A fresh enabled registry is created unless one is passed in; the
    previous active registry is restored on exit.
    """
    reg = registry if registry is not None else MetricsRegistry(enabled=True)
    previous = set_metrics(reg)
    try:
        yield reg
    finally:
        set_metrics(previous)
