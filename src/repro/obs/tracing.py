"""Distributed tracing and the flight recorder (``repro.obs``).

A ``predict`` request crosses four layers — the asyncio TCP server,
the verb dispatcher, the (optionally coalescing) prediction service,
and a forked worker — and a slow or failed request must be
reconstructible after the fact from any of them. This module gives
the serving stack span-level visibility on the same design budget as
the metrics registry (:mod:`repro.obs.metrics`): stdlib-only, near
zero cost when disabled, O(1) per span when enabled.

Three pieces:

* :class:`TraceContext` — the propagated identity of a request:
  ``trace_id`` / ``span_id`` / ``parent_id``. Child spans derive
  their ids *deterministically* (BLAKE2b of the parent span id, the
  child name, and a per-span child counter), so two processes that
  agree on a parent context agree on its children. On the wire the
  context travels as a ``trace`` field in the JSON-lines protocol
  (``docs/SERVING.md``); across the fork boundary it rides the worker
  task tuple.
* :class:`Tracer` — the process-wide span factory, installed like a
  metrics registry (:func:`get_tracer` / :func:`set_tracer` /
  :func:`enabled_tracing`). ``tracer.span(...)`` is a context manager
  that opens a child of the ambient (thread-local) current span;
  ``start_span``/``finish`` is the manual form for the asyncio server,
  where interleaved requests share one thread and must not touch the
  ambient stack. A disabled tracer hands out one shared null span.
* :class:`FlightRecorder` — a bounded ring buffer of *completed*
  spans and structured events that is always on while tracing is
  enabled. It answers the ``tracez``/``slowz`` service verbs (recent
  span trees; top-K slowest roots with per-stage breakdown) and is
  dumped as JSON on error replies, worker crash/timeout, and SIGTERM
  drain — the post-hoc record that makes a production problem
  diagnosable without reproducing it.

Span dicts are plain data (``canonical_json``-able); see
``docs/OBSERVABILITY.md`` ("Request tracing & flight recorder").
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from hashlib import blake2b
from typing import Iterator, Mapping, Optional, Sequence

__all__ = [
    "FlightRecorder",
    "NULL_TRACER",
    "Span",
    "TraceContext",
    "Tracer",
    "enabled_tracing",
    "get_tracer",
    "new_root_context",
    "render_span_tree",
    "set_tracer",
    "spans_to_chrome_trace",
]

#: Default flight-recorder capacity (completed spans kept).
DEFAULT_RING = 2048

#: Chrome-trace process lanes for serve spans. Disjoint from the run
#: timeline's pids (0 ranks, 1 messages, 2 faults, 3 wait states), so
#: a serve trace and a run timeline merge into one Perfetto view.
COMPONENT_PIDS = {"server": 4, "service": 5, "worker": 6, "predict": 7}
_OTHER_PID = 8


def _digest(text: str) -> str:
    return blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


# Per-process entropy so concurrently started processes mint disjoint
# root trace ids; overridable (seed) for deterministic tests.
_PROCESS_ENTROPY = os.urandom(8).hex()
_root_counter = 0
_root_lock = threading.Lock()


def new_root_context(seed: Optional[str] = None) -> TraceContext:
    """Mint a fresh root context (no parent).

    Root ids are unique per process by construction (entropy + pid +
    counter); pass ``seed`` to derive a reproducible context instead
    (tests, replay tooling).
    """
    global _root_counter
    if seed is not None:
        trace_id = _digest(f"seed:{seed}")
    else:
        with _root_lock:
            _root_counter += 1
            n = _root_counter
        trace_id = _digest(f"{_PROCESS_ENTROPY}:{os.getpid()}:{n}")
    return TraceContext(trace_id=trace_id, span_id=_digest(f"{trace_id}/0"))


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one request: who am I, who called me."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self, name: str, index: int) -> "TraceContext":
        """Deterministic child context: both sides of a process
        boundary derive the same ids from the same (name, index)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_digest(f"{self.span_id}/{name}/{index}"),
            parent_id=self.span_id,
        )

    def to_dict(self) -> dict:
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out

    @staticmethod
    def from_dict(data: object) -> Optional["TraceContext"]:
        """Parse a wire ``trace`` field; garbage yields ``None`` (an
        untraced request), never an exception."""
        if not isinstance(data, Mapping):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        parent = data.get("parent_id")
        return TraceContext(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent if isinstance(parent, str) else None,
        )


class Span:
    """One in-progress operation; becomes a plain dict when finished.

    Wall-clock timestamps (``time.time``) are the recorded times so
    spans from different processes line up on one axis; duration is
    measured with ``perf_counter`` for sub-millisecond fidelity.
    """

    __slots__ = ("name", "context", "component", "attrs", "events",
                 "status", "ts", "_t0", "_children", "_recorder")

    def __init__(
        self,
        name: str,
        context: TraceContext,
        component: str = "",
        attrs: Optional[dict] = None,
        recorder: Optional["FlightRecorder"] = None,
    ):
        self.name = name
        self.context = context
        self.component = component
        self.attrs = dict(attrs) if attrs else {}
        self.events: list[dict] = []
        self.status = "ok"
        self.ts = time.time()
        self._t0 = time.perf_counter()
        self._children = 0
        self._recorder = recorder

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **fields: object) -> None:
        self.events.append({"name": name, "dt": self.elapsed(), **fields})

    def child_context(self, name: str) -> TraceContext:
        self._children += 1
        return self.context.child(name, self._children)

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def finish(self, status: Optional[str] = None) -> dict:
        """Close the span, record it, and return its dict form.
        Idempotent close is the caller's job (each span ends once)."""
        if status is not None:
            self.status = status
        data = {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "component": self.component,
            "ts": self.ts,
            "dur": self.elapsed(),
            "status": self.status,
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.events:
            data["events"] = list(self.events)
        if self._recorder is not None:
            self._recorder.record(data)
        return data


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers. Also a
    no-op context manager, so ``with tracer.span(...)`` costs one
    method call when tracing is off."""

    __slots__ = ()

    context = None

    def set_attr(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **fields: object) -> None:
        pass

    def finish(self, status: Optional[str] = None) -> dict:
        return {}

    def elapsed(self) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class FlightRecorder:
    """Bounded ring of completed spans + structured events.

    Appends are O(1) (``deque`` with ``maxlen``); everything else —
    tree assembly, top-K, dumps — is on-demand and scans at most the
    ring. ``dropped_spans`` counts what the ring forgot, so a dump is
    honest about truncation.
    """

    def __init__(self, capacity: int = DEFAULT_RING,
                 dump_path: Optional[str] = None):
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self.capacity = int(capacity)
        self.dump_path = dump_path
        self._spans: deque = deque(maxlen=self.capacity)
        self._events: deque = deque(maxlen=self.capacity)
        self.n_spans = 0
        self.n_events = 0
        self.n_dumps = 0
        self._dump_lock = threading.Lock()

    # -- recording (hot path) -------------------------------------------

    def record(self, span: dict) -> None:
        self._spans.append(span)
        self.n_spans += 1

    def record_remote(self, spans: Sequence[dict]) -> None:
        """Adopt completed spans shipped from another process (serve
        workers ship theirs back with each result)."""
        for span in spans:
            if isinstance(span, dict):
                self.record(span)

    def record_event(self, name: str, **fields: object) -> None:
        self._events.append({"name": name, "ts": time.time(), **fields})
        self.n_events += 1

    # -- queries (tracez / slowz) ---------------------------------------

    @property
    def dropped_spans(self) -> int:
        return max(0, self.n_spans - len(self._spans))

    def spans(self) -> list[dict]:
        """All retained spans, oldest first."""
        return list(self._spans)

    def recent(self, limit: int = 64) -> list[dict]:
        """The newest ``limit`` spans, newest first."""
        spans = list(self._spans)
        return spans[::-1][: max(0, int(limit))]

    def trace_spans(self, trace_id: str) -> list[dict]:
        """Every retained span of one trace, oldest first."""
        return [s for s in self._spans if s.get("trace_id") == trace_id]

    def span_tree(self, trace_id: str) -> list[dict]:
        """The trace's spans as a parent→children forest (a span whose
        parent fell out of the ring, or lives in the client, roots its
        own tree)."""
        return build_span_forest(self.trace_spans(trace_id))

    def slowest(self, k: int = 10) -> list[dict]:
        """Top-K slowest *root* requests with a per-stage breakdown.

        A root is a span with no retained parent. Stages aggregate the
        root's descendants by span name (total seconds + count), so a
        slow request answers "where did the time go" at a glance.
        """
        spans = list(self._spans)
        by_id = {s["span_id"]: s for s in spans}
        children: dict[str, list[dict]] = {}
        for s in spans:
            parent = s.get("parent_id")
            if parent in by_id:
                children.setdefault(parent, []).append(s)
        roots = [s for s in spans if s.get("parent_id") not in by_id]
        roots.sort(key=lambda s: s.get("dur", 0.0), reverse=True)
        out = []
        for root in roots[: max(0, int(k))]:
            stages: dict[str, dict] = {}
            stack = list(children.get(root["span_id"], ()))
            while stack:
                s = stack.pop()
                st = stages.setdefault(
                    s["name"], {"seconds": 0.0, "count": 0}
                )
                st["seconds"] += s.get("dur", 0.0)
                st["count"] += 1
                stack.extend(children.get(s["span_id"], ()))
            out.append({
                "span": root,
                "seconds": root.get("dur", 0.0),
                "stages": {
                    name: stages[name] for name in sorted(stages)
                },
            })
        return out

    def snapshot(self, limit: int = 64) -> dict:
        """The ``tracez`` reply body: recent spans + events + loss."""
        return {
            "spans": self.recent(limit),
            "events": list(self._events)[::-1][: max(0, int(limit))],
            "recorded_spans": self.n_spans,
            "dropped_spans": self.dropped_spans,
            "capacity": self.capacity,
        }

    # -- dumps -----------------------------------------------------------

    def dump(self, reason: str) -> dict:
        """The full retained state as one JSON-ready dict."""
        return {
            "reason": reason,
            "written_unix": time.time(),
            "capacity": self.capacity,
            "recorded_spans": self.n_spans,
            "dropped_spans": self.dropped_spans,
            "spans": self.spans(),
            "events": list(self._events),
        }

    def maybe_dump(self, reason: str) -> Optional[str]:
        """Write the dump to ``dump_path`` if one is configured.

        Best-effort and never raises: the flight recorder must not be
        able to take the serving path down. Returns the path written,
        or ``None``.
        """
        path = self.dump_path
        if not path:
            return None
        try:
            with self._dump_lock:
                tmp = f"{path}.tmp{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(self.dump(reason), fh, indent=1)
                    fh.write("\n")
                os.replace(tmp, path)
                self.n_dumps += 1
        except OSError:
            return None
        from repro.obs.metrics import get_metrics

        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "obs.flight_dumps", "flight-recorder dumps written"
            ).labels(reason=reason).inc()
        return path


class _SpanScope:
    """``with tracer.span(...)`` — pushes the span onto the tracer's
    thread-local ambient stack so nested instrumentation (e.g.
    ``compute_prediction`` stages) parents correctly without plumbing
    a context through every signature."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self._span)
        if exc_type is not None and self._span.status == "ok":
            self._span.set_attr("error", f"{exc_type.__name__}: {exc}")
            self._span.finish("error")
        else:
            self._span.finish()


class Tracer:
    """Process-wide span factory + its flight recorder.

    Mirrors :class:`~repro.obs.metrics.MetricsRegistry`: the default
    active tracer is disabled and hands out one shared null span, so
    instrumented code pays a module-global read and an attribute check
    when tracing is off (hot loops hoist ``tracer.enabled``).
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: int = DEFAULT_RING,
        dump_path: Optional[str] = None,
    ):
        self.enabled = bool(enabled)
        self.recorder = FlightRecorder(capacity, dump_path=dump_path)
        self._ambient = threading.local()

    # -- ambient (thread-local) span stack -------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._ambient, "stack", None)
        if stack is None:
            stack = self._ambient.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._ambient, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def current(self) -> Optional[Span]:
        """The innermost open ambient span of *this thread* (or None)."""
        stack = getattr(self._ambient, "stack", None)
        return stack[-1] if stack else None

    # -- span creation ---------------------------------------------------

    def _derive(self, name: str, parent) -> TraceContext:
        if isinstance(parent, Span):
            return parent.child_context(name)
        if isinstance(parent, TraceContext):
            # A wire/cross-process parent has no live child counter;
            # salt with the recorder's running span count so sibling
            # children of the same remote context stay distinct.
            return parent.child(name, self.recorder.n_spans + 1)
        ambient = self.current()
        if ambient is not None:
            return ambient.child_context(name)
        ctx = new_root_context()
        return TraceContext(ctx.trace_id, ctx.span_id)

    def start_span(
        self,
        name: str,
        parent=None,
        component: str = "",
        attrs: Optional[dict] = None,
    ):
        """Manual span (caller must ``finish()``); does not touch the
        ambient stack — the form the asyncio server uses, where
        interleaved requests share one thread."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(
            name,
            self._derive(name, parent),
            component=component,
            attrs=attrs,
            recorder=self.recorder,
        )

    def span(
        self,
        name: str,
        parent=None,
        component: str = "",
        attrs: Optional[dict] = None,
    ):
        """Context-manager span, parented to ``parent`` or the ambient
        current span; finishes (and records) on exit."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanScope(self, self.start_span(
            name, parent=parent, component=component, attrs=attrs
        ))


#: The always-disabled tracer active by default.
NULL_TRACER = Tracer(enabled=False, capacity=1)

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently active tracer (disabled null one by default)."""
    return _active


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the active one; returns the previous.
    Passing ``None`` restores the default disabled tracer."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def enabled_tracing(
    tracer: Optional[Tracer] = None,
    capacity: int = DEFAULT_RING,
    dump_path: Optional[str] = None,
) -> Iterator[Tracer]:
    """Scope with tracing on; yields the active tracer and restores
    the previous one on exit (mirror of ``enabled_metrics``)."""
    t = tracer if tracer is not None else Tracer(
        enabled=True, capacity=capacity, dump_path=dump_path
    )
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)


# -- presentation helpers (CLI `call --trace`, `trace-dump`) ------------


def build_span_forest(spans: Sequence[dict]) -> list[dict]:
    """Nest flat span dicts into ``{"span": ..., "children": [...]}``
    trees. Spans whose parent is absent (client-side root, or rotated
    out of the ring) become roots. Children sort by start time."""
    by_id = {s["span_id"]: {"span": s, "children": []} for s in spans}
    roots = []
    for s in sorted(spans, key=lambda s: s.get("ts", 0.0)):
        node = by_id[s["span_id"]]
        parent = s.get("parent_id")
        if parent in by_id and parent != s["span_id"]:
            by_id[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def render_span_tree(spans: Sequence[dict]) -> str:
    """Terminal rendering of a span forest::

        server.request [server] 102.4ms ok  trace=1f2e...
          service.predict [service] 101.9ms ok
            worker.compute [worker] 99.1ms timeout
    """
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        s = node["span"]
        dur = s.get("dur", 0.0) * 1e3
        status = s.get("status", "ok")
        head = f"{'  ' * depth}{s['name']} [{s.get('component') or '-'}]"
        line = f"{head} {dur:.1f}ms {status}"
        if depth == 0:
            line += f"  trace={s.get('trace_id', '?')}"
        coalesced = (s.get("attrs") or {}).get("coalesced")
        if coalesced:
            line += " (coalesced)"
        lines.append(line)
        for child in node["children"]:
            walk(child, depth + 1)

    for root in build_span_forest(spans):
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


def spans_to_chrome_trace(spans: Sequence[dict]) -> dict:
    """Serve spans as Chrome trace events, Perfetto-loadable.

    One process lane per component (pid 4 server, 5 service, 6 worker,
    7 predict — disjoint from the run timeline's pids 0–3, so both
    exports merge into one Perfetto view), one thread track per trace,
    and flow events (``ph s/f``, the same idiom the run timeline uses
    for message causality) joining each parent span to its children
    across lanes.
    """
    scale = 1e6
    t0 = min((s.get("ts", 0.0) for s in spans), default=0.0)
    events: list[dict] = []
    trace_tids: dict[str, int] = {}
    used_pids: dict[int, str] = {}
    by_id = {s["span_id"]: s for s in spans}

    def pid_of(span: dict) -> int:
        pid = COMPONENT_PIDS.get(span.get("component"), _OTHER_PID)
        used_pids.setdefault(
            pid, str(span.get("component") or "other")
        )
        return pid

    for s in spans:
        tid = trace_tids.setdefault(s.get("trace_id", "?"), len(trace_tids))
        ev = {
            "name": s["name"],
            "cat": s.get("component") or "span",
            "ph": "X",
            "ts": (s.get("ts", 0.0) - t0) * scale,
            "dur": s.get("dur", 0.0) * scale,
            "pid": pid_of(s),
            "tid": tid,
            "args": {
                "trace_id": s.get("trace_id"),
                "span_id": s.get("span_id"),
                "status": s.get("status"),
                **(s.get("attrs") or {}),
            },
        }
        events.append(ev)
        parent = by_id.get(s.get("parent_id"))
        if parent is not None and pid_of(parent) != pid_of(s):
            flow_id = int(s["span_id"][:8], 16)
            events.append({
                "name": f"{parent['name']}->{s['name']}",
                "cat": "span-flow",
                "ph": "s",
                "id": flow_id,
                "ts": (parent.get("ts", 0.0) - t0) * scale,
                "pid": pid_of(parent),
                "tid": tid,
            })
            events.append({
                "name": f"{parent['name']}->{s['name']}",
                "cat": "span-flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": (s.get("ts", 0.0) - t0) * scale,
                "pid": pid_of(s),
                "tid": tid,
            })
    for pid, name in sorted(used_pids.items()):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"serve {name}"},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"n_spans": len(spans), "n_traces": len(trace_tids)},
    }
