"""Structured JSON logging with trace correlation (``repro.obs``).

The serving stack logs *events*, not prose: one JSON object per line,
machine-greppable, and automatically stamped with the ambient
``trace_id``/``span_id`` from :mod:`repro.obs.tracing` so a log line
and the flight-recorder span it happened under join on one key.

Line shape (field order is fixed so logs diff cleanly)::

    {"ts": 1754650000.123, "level": "info", "component": "serve.server",
     "event": "drain", "msg": "draining ...", "trace_id": "...", ...}

Design notes:

* stdlib-only and synchronous — a lifecycle event every few seconds,
  not a hot path (the per-request access log is opt-in);
* lines go to one process-wide stream (default ``sys.stderr``,
  swappable via :func:`set_log_stream` for tests and capture);
* never raises: a closed stream or unserialisable field degrades to
  ``repr`` / silent drop — logging must not take the server down.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Optional, TextIO

__all__ = [
    "StructuredLogger",
    "get_log_stream",
    "get_logger",
    "set_log_stream",
]

_stream: Optional[TextIO] = None  # None -> sys.stderr at emit time
_stream_lock = threading.Lock()


def set_log_stream(stream: Optional[TextIO]) -> Optional[TextIO]:
    """Redirect all structured logs (``None`` restores stderr);
    returns the previous stream setting."""
    global _stream
    previous = _stream
    _stream = stream
    return previous


def get_log_stream() -> TextIO:
    return _stream if _stream is not None else sys.stderr


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


class StructuredLogger:
    """One component's JSON-lines logger (``get_logger("serve.pool")``)."""

    __slots__ = ("component",)

    def __init__(self, component: str):
        self.component = component

    def log(self, level: str, event: str, msg: str = "", **fields) -> None:
        from repro.obs.tracing import get_tracer

        record: dict = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        if msg:
            record["msg"] = msg
        span = get_tracer().current()
        if span is not None and span.context is not None:
            record["trace_id"] = span.context.trace_id
            record["span_id"] = span.context.span_id
        for key, value in fields.items():
            record[key] = _jsonable(value)
        try:
            line = json.dumps(record, separators=(", ", ": "))
        except (TypeError, ValueError):
            return
        try:
            with _stream_lock:
                stream = get_log_stream()
                stream.write(line + "\n")
                stream.flush()
        except (OSError, ValueError):
            pass  # closed/broken stream: drop, never raise

    def info(self, event: str, msg: str = "", **fields) -> None:
        self.log("info", event, msg, **fields)

    def warning(self, event: str, msg: str = "", **fields) -> None:
        self.log("warning", event, msg, **fields)

    def error(self, event: str, msg: str = "", **fields) -> None:
        self.log("error", event, msg, **fields)


def get_logger(component: str) -> StructuredLogger:
    return StructuredLogger(component)
