"""Streaming wait-state classification of simulated runs.

:class:`DiagnosisCollector` extends the timeline recorder with the
time-resolved breakdown the Scalasca/Vampir literature builds its
diagnostics on: every second of every rank's execution is assigned to
exactly one of four top-level categories

* **compute** — gaps between user-level MPI calls (plus the trailing
  gap to the rank's finish time);
* **wait** — the part of a blocking point-to-point call spent waiting
  for the peer, classified **late-sender** (the receiver blocked
  before the sender sent) or **late-receiver** (a rendezvous sender
  blocked before the receiver posted);
* **transfer** — the remainder of point-to-point calls: handshakes,
  local copies, and actual data movement, split by protocol
  (**eager** / **rendezvous**);
* **collective** — time inside collective calls; the portion every
  rank spends waiting for the *last* rank to enter the same collective
  instance is additionally classified **collective-imbalance wait**
  (a sub-category: it refines, not double-counts, collective time).

Conservation invariant
----------------------

For every rank, ``compute + wait + transfer + collective`` reconciles
exactly with the rank's ``RunResult`` finish time — the categories are
a partition of the same spans whose tiling the timeline recorder
already guarantees, so nothing is lost or counted twice.

Classification uses the engine's dependency edges (``on_edge``): each
point-to-point delivery reports who sent when, when the matching
receive was posted, and which protocol moved the bytes. A blocking
call released by a delivery at its end time is split into the wait up
to the releasing gate (send time or receive-post time) and transfer
after it.

During the run the hook only *streams* the edges (the timeline base
class already records the spans); classification is derived lazily on
first query and cached, so attaching the collector perturbs the run
itself no more than plain timeline recording
(``benchmarks/bench_diagnose_overhead.py`` pins the budget).
"""

from __future__ import annotations

from operator import itemgetter
from typing import NamedTuple, Optional, Sequence

from repro.obs.metrics import get_metrics
from repro.obs.timeline import COMPUTE, TimelineRecorder
from repro.sim.ops import COLLECTIVE_TAG_BASE, CollectiveOp, MPI_CALL_NAMES

__all__ = [
    "COLLECTIVE_CALLS",
    "DependencyEdge",
    "DiagnosisCollector",
    "LATE_RECEIVER",
    "LATE_SENDER",
    "COLLECTIVE_WAIT",
    "WaitSpan",
]

#: User-level call names that are collectives.
COLLECTIVE_CALLS = frozenset(
    name for cls, name in MPI_CALL_NAMES.items() if issubclass(cls, CollectiveOp)
)

#: Wait-state kinds (Scalasca taxonomy).
LATE_SENDER = "late-sender"
LATE_RECEIVER = "late-receiver"
COLLECTIVE_WAIT = "collective-wait"

#: Leaf categories of the per-rank breakdown; their sum is the rank's
#: finish time (``collective_wait`` is a refinement of ``collective``
#: and excluded from the sum).
LEAF_CATEGORIES = (
    "compute",
    "wait_late_sender",
    "wait_late_receiver",
    "transfer_eager",
    "transfer_rendezvous",
    "collective",
)


class DependencyEdge(NamedTuple):
    """One delivered point-to-point message, as a DAG edge.

    ``t_recv_posted`` is NaN when the message was delivered before any
    matching receive existed (the receiver never blocked on it).
    Edges with ``tag >= COLLECTIVE_TAG_BASE`` belong to a collective
    decomposition. A named tuple, not a dataclass: one is built per
    delivered message, on the engine's hot path.
    """

    src: int
    dst: int
    nbytes: int
    tag: int
    t_sent: float
    t_recv_posted: float
    t_delivered: float
    eager: bool

    @property
    def is_collective(self) -> bool:
        return self.tag >= COLLECTIVE_TAG_BASE

    @property
    def flight_time(self) -> float:
        return self.t_delivered - self.t_sent


class WaitSpan(NamedTuple):
    """One classified interval of waiting on one rank."""

    rank: int
    kind: str  # LATE_SENDER, LATE_RECEIVER, or COLLECTIVE_WAIT
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class DiagnosisCollector(TimelineRecorder):
    """Timeline recorder + streaming wait-state classifier.

    Attach like any hook::

        col = DiagnosisCollector(program_name=program.name)
        result = run_program(program, cluster, scenario, hook=col)
        print(col.render_breakdown())
        col.write_chrome_trace("run.json")  # + wait-state tracks

    The collector inherits every timeline feature (spans, message
    flights, utilization samples, fault spans, Chrome-trace export)
    and adds :attr:`edges`, :attr:`wait_spans`, :meth:`breakdown`,
    :meth:`detailed_breakdown`, and :meth:`wait_state_totals`.
    Recording adds zero *simulated* overhead.
    """

    def __init__(
        self,
        program_name: str = "",
        scenario_name: str = "",
        sample_period: float = 0.0,
        record_messages: bool = True,
    ):
        super().__init__(
            program_name=program_name,
            scenario_name=scenario_name,
            sample_period=sample_period,
            record_messages=record_messages,
        )
        # Edges accumulate as plain tuples (the engine delivers
        # thousands per run; a tuple literal is frame-free where a
        # NamedTuple constructor is not) and convert lazily on first
        # access through the `edges` / `wait_spans` properties.
        # Classification itself is also lazy: the hook only *streams*
        # the dependency edges during the run — everything the timeline
        # recorder doesn't already capture — and derives the breakdown
        # from spans + edges on first query. That keeps the hook's
        # perturbation of the run itself near zero (pinned by
        # ``benchmarks/bench_diagnose_overhead.py``).
        self._raw_edges: list[tuple] = []
        self._raw_waits: list[tuple] = []
        self._edges_cache: Optional[list[DependencyEdge]] = None
        self._waits_cache: Optional[list[WaitSpan]] = None
        self._rank_edges: list[list[tuple]] = []
        self._cats: Optional[list[dict]] = None
        self._coll_wait: list[float] = []

    @property
    def edges(self) -> list[DependencyEdge]:
        """Every delivered message as a dependency edge, in delivery
        order."""
        if self._edges_cache is None:
            self._edges_cache = [
                DependencyEdge._make(e) for e in self._raw_edges
            ]
        return self._edges_cache

    @property
    def wait_spans(self) -> list[WaitSpan]:
        """Classified wait intervals, sorted by (rank, start, kind)."""
        self._classify()
        if self._waits_cache is None:
            self._waits_cache = [WaitSpan._make(w) for w in self._raw_waits]
        return self._waits_cache

    # -- EngineHook ------------------------------------------------------

    def on_run_start(self, nranks: int, t: float) -> None:
        super().on_run_start(nranks, t)
        self._raw_edges = []
        self._raw_waits = []
        self._edges_cache = None
        self._waits_cache = None
        self._rank_edges = [[] for _ in range(nranks)]
        self._cats = None
        self._coll_wait = [0.0] * nranks

    def on_edge(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        t_sent: float,
        t_recv_posted: float,
        t_delivered: float,
        eager: bool,
    ) -> None:
        # One shared tuple per delivery (DependencyEdge field order).
        edge = (src, dst, nbytes, tag, t_sent, t_recv_posted, t_delivered,
                eager)
        self._raw_edges.append(edge)
        # A delivery can release the receiver always, and the sender
        # only under rendezvous (eager sends complete at the local copy).
        self._rank_edges[dst].append(edge)
        if not eager:
            self._rank_edges[src].append(edge)

    def on_run_end(self, finish_times: Sequence[float]) -> None:
        super().on_run_end(finish_times)
        self._cats = None
        self._waits_cache = None
        metrics = get_metrics()
        if metrics.enabled:
            self._classify()
            metrics.counter("diagnose.runs", "diagnosed runs completed").inc()
            totals = self.wait_state_totals()
            waits = metrics.counter(
                "diagnose.wait_seconds", "classified wait time by kind"
            )
            for kind, seconds in totals.items():
                if seconds > 0:
                    waits.labels(kind=kind).inc(seconds)
            metrics.counter(
                "diagnose.edges", "dependency edges observed"
            ).inc(len(self._raw_edges))

    # -- classification ---------------------------------------------------

    def _classify(self) -> None:
        """Derive the breakdown from recorded spans + edges (lazy).

        Runs once per completed run, on first query. The timeline
        recorder guarantees every rank's spans tile ``[0, finish]``, so
        assigning every span to exactly one leaf category preserves the
        conservation invariant by construction.
        """
        if self._cats is not None:
            return
        self._require_done()
        nranks = self.nranks
        cats_list = [
            {leaf: 0.0 for leaf in LEAF_CATEGORIES} for _ in range(nranks)
        ]
        coll_wait = [0.0] * nranks
        coll_seq: list[dict] = [{} for _ in range(nranks)]
        coll_instances: dict = {}
        rank_edges = self._rank_edges
        ptrs = [0] * nranks
        waits: list[tuple] = []
        for span in self.spans:
            rank = span.rank
            t_start = span.t_start
            t_end = span.t_end
            dur = t_end - t_start
            cats = cats_list[rank]
            if span.kind == COMPUTE:
                cats["compute"] += dur
                continue
            # Pending edges at this call: every delivery that involved
            # this rank since its previous call, up to this call's
            # completion (per-rank edge lists are in delivery order).
            edges = rank_edges[rank]
            i = ptrs[rank]
            n = len(edges)
            begin = i
            while i < n and edges[i][6] <= t_end:
                i += 1
            ptrs[rank] = i
            name = span.name
            if name in COLLECTIVE_CALLS:
                cats["collective"] += dur
                group = span.args.get("group") if span.args else None
                comm_key = tuple(group) if group is not None else None
                seqs = coll_seq[rank]
                seq = seqs.get(comm_key, 0)
                seqs[comm_key] = seq + 1
                coll_instances.setdefault((comm_key, seq), []).append(
                    (rank, t_start, t_end)
                )
                continue
            if dur <= 0.0:
                continue
            # Point-to-point blocking call: the releasing edge is one
            # delivered exactly at the call's end (delivery and call
            # completion happen at the same engine timestamp). When
            # several complete together (Waitall, Sendrecv) the binding
            # dependency is the one that implies the longest wait.
            wait = 0.0
            kind = None
            eager_protocol = True
            for j in range(begin, i):
                edge = edges[j]
                if edge[6] != t_end:  # t_delivered
                    continue
                if edge[1] == rank:  # dst
                    gate = edge[4]  # t_sent
                    edge_kind = LATE_SENDER
                else:
                    gate = edge[5]  # t_recv_posted
                    edge_kind = LATE_RECEIVER
                    if gate != gate:  # NaN: receiver already posted
                        gate = t_start
                edge_wait = gate - t_start
                if edge_wait < 0.0:
                    edge_wait = 0.0
                elif edge_wait > dur:
                    edge_wait = dur
                if kind is None or edge_wait > wait:
                    wait = edge_wait
                    kind = edge_kind
                    eager_protocol = edge[7]
            if wait > 0.0 and kind is not None:
                if kind == LATE_SENDER:
                    cats["wait_late_sender"] += wait
                else:
                    cats["wait_late_receiver"] += wait
                waits.append((rank, kind, t_start, t_start + wait))
            transfer = dur - wait
            if transfer > 0.0:
                if eager_protocol:
                    cats["transfer_eager"] += transfer
                else:
                    cats["transfer_rendezvous"] += transfer
        # Collective imbalance: within each collective instance (same
        # communicator, same per-rank sequence number), every rank that
        # entered before the last one waited for it.
        for entries in coll_instances.values():
            if len(entries) < 2:
                continue
            last_enter = max(t0 for _, t0, _ in entries)
            for rank, t0, t1 in entries:
                w = min(last_enter, t1) - t0
                if w > 0.0:
                    coll_wait[rank] += w
                    waits.append((rank, COLLECTIVE_WAIT, t0, t0 + w))
        # Raw tuples are (rank, kind, t_start, t_end); sort like the
        # public view: by (rank, t_start, kind).
        waits.sort(key=itemgetter(0, 2, 1))
        self._raw_waits = waits
        self._waits_cache = None
        self._coll_wait = coll_wait
        self._cats = cats_list

    # -- derived views ---------------------------------------------------

    def detailed_breakdown(self) -> dict[int, dict[str, float]]:
        """Per-rank leaf categories plus the ``collective_wait``
        refinement. The leaves (without ``collective_wait``) sum to the
        rank's finish time."""
        self._classify()
        out: dict[int, dict[str, float]] = {}
        for rank in range(self.nranks):
            cats = dict(self._cats[rank])
            cats["collective_wait"] = self._coll_wait[rank]
            out[rank] = cats
        return out

    def breakdown(self) -> dict[int, dict[str, float]]:
        """Per-rank top-level categories.

        Conservation: ``compute + wait + transfer + collective`` equals
        the rank's ``RunResult`` finish time.
        """
        self._classify()
        out: dict[int, dict[str, float]] = {}
        for rank in range(self.nranks):
            c = self._cats[rank]
            out[rank] = {
                "compute": c["compute"],
                "wait": c["wait_late_sender"] + c["wait_late_receiver"],
                "transfer": c["transfer_eager"] + c["transfer_rendezvous"],
                "collective": c["collective"],
            }
        return out

    def wait_state_totals(self) -> dict[str, float]:
        """Total classified wait seconds across ranks, by kind."""
        totals = {LATE_SENDER: 0.0, LATE_RECEIVER: 0.0, COLLECTIVE_WAIT: 0.0}
        for ws in self.wait_spans:
            totals[ws.kind] += ws.duration
        return totals

    # -- Chrome trace export ---------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Timeline export plus wait-state spans (``pid 3``) and a
        ``waiting ranks`` counter track."""
        doc = super().to_chrome_trace()
        if not self.wait_spans:
            return doc
        scale = 1e6
        events = doc["traceEvents"]
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 3,
                "tid": 0,
                "args": {"name": "wait states"},
            }
        )
        ranks = sorted({ws.rank for ws in self.wait_spans})
        for rank in ranks:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 3,
                    "tid": rank,
                    "args": {"name": f"rank {rank} waits"},
                }
            )
        for ws in self.wait_spans:
            events.append(
                {
                    "name": ws.kind,
                    "cat": "wait",
                    "ph": "X",
                    "ts": ws.t_start * scale,
                    "dur": ws.duration * scale,
                    "pid": 3,
                    "tid": ws.rank,
                }
            )
        # How many ranks sit in a classified wait state over time.
        deltas: list[tuple[float, int]] = []
        for ws in self.wait_spans:
            deltas.append((ws.t_start, 1))
            deltas.append((ws.t_end, -1))
        deltas.sort()
        count = 0
        previous: Optional[float] = None
        for t, d in deltas:
            if previous is not None and t > previous:
                events.append(
                    {
                        "name": "waiting ranks",
                        "cat": "wait",
                        "ph": "C",
                        "ts": previous * scale,
                        "pid": 3,
                        "tid": 0,
                        "args": {"ranks": count},
                    }
                )
            count += d
            previous = t
        if previous is not None:
            events.append(
                {
                    "name": "waiting ranks",
                    "cat": "wait",
                    "ph": "C",
                    "ts": previous * scale,
                    "pid": 3,
                    "tid": 0,
                    "args": {"ranks": count},
                }
            )
        return doc

    # -- terminal rendering ----------------------------------------------

    def render_breakdown(self) -> str:
        """Per-rank category table plus wait-state totals."""
        from repro.util.tables import render_table

        self._require_done()
        breakdown = self.breakdown()
        detail = self.detailed_breakdown()
        rows = []
        for rank in range(self.nranks):
            b = breakdown[rank]
            rows.append(
                [
                    f"rank {rank}",
                    f"{b['compute']:.4f}",
                    f"{b['wait']:.4f}",
                    f"{b['transfer']:.4f}",
                    f"{b['collective']:.4f}",
                    f"{detail[rank]['collective_wait']:.4f}",
                    f"{self.finish_times[rank]:.4f}",
                ]
            )
        title = "time-resolved breakdown (seconds)"
        if self.program_name:
            title = f"{self.program_name}: {title}"
        table = render_table(
            title,
            ["rank", "compute", "wait", "transfer", "collective",
             "(coll wait)", "finish"],
            rows,
        )
        totals = self.wait_state_totals()
        footer = "  ".join(
            f"{kind}: {seconds:.4f}s" for kind, seconds in totals.items()
        )
        return f"{table}\nwait states: {footer}"
