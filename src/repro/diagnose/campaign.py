"""Campaign-level divergence reports.

Bridges :mod:`repro.diagnose` and :mod:`repro.experiments`: after a
campaign has run, :func:`campaign_divergence` re-derives each
benchmark's program and skeleton from the runner's pipeline cache
(warm hits — nothing is re-traced or re-built), replays the
*identical* campaign runs with a diagnosis collector attached (same
seeds via :func:`repro.util.rng.derive_seed`), and explains every
per-scenario prediction. The explained error therefore equals
``ExperimentResults.skeleton_error`` for the same cell.

Reports are persisted into the content-addressed store under the
``diagnosis`` stage (listed by ``repro-skeleton store ls``), so
re-running ``experiment --diagnose`` is free once warm.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.errors import SkeletonQualityWarning
from repro.store.memo import workload_params
from repro.util.rng import derive_seed
from repro.workloads import get_program

from repro.diagnose.explain import DivergenceReport, explain_divergence

__all__ = ["campaign_divergence", "render_campaign_divergence"]


def campaign_divergence(
    runner,
    results,
    *,
    target: Optional[float] = None,
    scenario_names: Optional[Sequence[str]] = None,
    persist: bool = True,
) -> dict[str, dict[str, DivergenceReport]]:
    """Per-benchmark, per-scenario divergence reports for one campaign.

    ``runner`` is the :class:`~repro.experiments.ExperimentRunner`
    that produced (or loaded) ``results``; ``target`` selects the
    skeleton size (default: the campaign's first target). Returns
    ``{bench: {scenario: DivergenceReport}}`` for every completed
    benchmark.
    """
    cfg = runner.config
    env = cfg.environment_seed
    pipeline = runner.pipeline
    if target is None:
        target = results.targets()[0]
    scenarios = [
        s for s in runner.scenarios
        if scenario_names is None or s.name in scenario_names
    ]
    reports: dict[str, dict[str, DivergenceReport]] = {}
    for bench in results.benchmarks():
        app = results.apps[bench]
        skel = results.skeletons[bench][f"{target:g}"]
        program = get_program(bench, cfg.klass, cfg.nprocs, cfg.workload_seed)
        app_params = workload_params(
            bench, cfg.klass, cfg.nprocs, cfg.workload_seed
        )
        bundle = None  # rebuilt lazily, only on a cold diagnosis cell
        per_bench: dict[str, DivergenceReport] = {}
        for scen in scenarios:
            key = runner.store.key(
                "diagnosis",
                {
                    "config": cfg.key(),
                    "bench": bench,
                    "target": target,
                    "scenario": scen.name,
                },
            )
            if persist:
                artifact = runner.store.get(key)
                if artifact is not None:
                    per_bench[scen.name] = DivergenceReport.from_dict(
                        artifact.content
                    )
                    continue
            if bundle is None:
                from repro.core.construct import build_skeleton
                from repro.trace.tracer import trace_program

                trace, _ded = pipeline.traced_run(
                    app_params,
                    lambda: trace_program(program, runner.cluster),
                )
                trace_digest = pipeline.trace_key(app_params).digest

                def _build(trace=trace, target=target):
                    with warnings.catch_warnings():
                        warnings.simplefilter(
                            "ignore", SkeletonQualityWarning
                        )
                        return build_skeleton(trace, target_seconds=target)

                bundle = pipeline.skeleton(trace_digest, target, _build)
            report = explain_divergence(
                program,
                bundle.program,
                runner.cluster,
                scen,
                app_dedicated_seconds=app["dedicated"],
                skeleton_dedicated_seconds=skel["dedicated"],
                app_seed=derive_seed(env, "app", bench, scen.name),
                probe_seed=derive_seed(env, "skel", bench, target, scen.name),
            )
            if persist:
                runner.store.put(key, report.to_dict())
            per_bench[scen.name] = report
        reports[bench] = per_bench
    return reports


def render_campaign_divergence(
    reports: dict[str, dict[str, DivergenceReport]]
) -> str:
    """One terminal table over all (benchmark, scenario) cells."""
    from repro.util.tables import render_table

    rows = []
    for bench, per_bench in reports.items():
        for scenario, rep in per_bench.items():
            rows.append(
                [
                    bench,
                    scenario,
                    f"{rep.predicted_seconds:.3f}",
                    f"{rep.actual_seconds:.3f}",
                    f"{rep.error_percent:.1f}%",
                    rep.dominant_contribution(),
                    f"{rep.contributions[rep.dominant_contribution()]:+.4f}",
                ]
            )
    return render_table(
        "per-scenario divergence (skeleton prediction vs reality)",
        ["bench", "scenario", "predicted", "actual", "err", "dominant",
         "seconds"],
        rows,
    )
