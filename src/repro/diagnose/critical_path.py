"""Critical-path extraction over the engine's dependency DAG.

The critical path of a run is the chain of activity that determines
the makespan: start at the last-finishing rank's finish time and walk
backwards; inside a rank, time flows through its (gap-free) activity
spans; an MPI span that was released by a message delivery hands the
chain to the message's flight and then to the sender (for incoming
edges) or to the receive post (for outgoing rendezvous edges, whose
sender was gated on the receiver).

The extracted path tiles ``[0, makespan]`` with no gaps or overlaps,
so ``CriticalPath.length == makespan`` exactly — optimising anything
*off* this path cannot shorten the run.

Attribution: each path segment carries the rank, the span kind and
name, and (via :meth:`CriticalPath.by_location`) the call-level trace
location (``MPI_Call@rankN`` — traces record no source files, so the
call name + rank *is* the source location in this model).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.errors import TraceError
from repro.obs.timeline import MPI

__all__ = ["CriticalPath", "PathSegment", "extract_critical_path"]

#: Segment kind for time on the wire (between ranks).
MESSAGE = "message"


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path.

    ``kind`` is ``"compute"``, ``"mpi"``, or ``"message"``; message
    segments are attributed to the *sending* rank and named
    ``src->dst``.
    """

    rank: int
    kind: str
    name: str
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class CriticalPath:
    """The extracted path, in chronological order."""

    segments: tuple[PathSegment, ...]
    makespan: float

    @property
    def length(self) -> float:
        """Sum of segment durations; equals :attr:`makespan`."""
        return sum(s.duration for s in self.segments)

    def by_op(self) -> dict[str, float]:
        """Critical-path seconds per operation name (``compute``, the
        MPI call names, and ``message`` for wire time)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            key = MESSAGE if seg.kind == MESSAGE else seg.name
            out[key] = out.get(key, 0.0) + seg.duration
        return out

    def by_rank(self) -> dict[int, float]:
        """Critical-path seconds per rank (message time charged to the
        sender)."""
        out: dict[int, float] = {}
        for seg in self.segments:
            out[seg.rank] = out.get(seg.rank, 0.0) + seg.duration
        return out

    def by_location(self) -> dict[str, float]:
        """Critical-path seconds per trace location: the call name at
        the rank it executed on (``MPI_Send@rank2``), wire time as
        ``wire src->dst``."""
        out: dict[str, float] = {}
        for seg in self.segments:
            if seg.kind == MESSAGE:
                key = f"wire {seg.name}"
            else:
                key = f"{seg.name}@rank{seg.rank}"
            out[key] = out.get(key, 0.0) + seg.duration
        return out

    def to_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "length": self.length,
            "n_segments": len(self.segments),
            "by_op": self.by_op(),
            "by_rank": {str(r): s for r, s in self.by_rank().items()},
            "top_locations": dict(
                sorted(
                    self.by_location().items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )[:10]
            ),
        }

    def render(self, top: int = 8) -> str:
        """Terminal table of the heaviest critical-path contributors."""
        from repro.util.tables import render_table

        ranked = sorted(
            self.by_location().items(), key=lambda kv: (-kv[1], kv[0])
        )
        rows = [
            [loc, f"{seconds:.4f}", f"{100.0 * seconds / self.makespan:.1f}%"]
            for loc, seconds in ranked[:top]
        ]
        table = render_table(
            f"critical path ({self.makespan:.4f}s, "
            f"{len(self.segments)} segments)",
            ["location", "seconds", "share"],
            rows,
        )
        return table


def extract_critical_path(collector) -> CriticalPath:
    """Extract the critical path from a completed
    :class:`~repro.diagnose.collector.DiagnosisCollector`."""
    collector._require_done()
    finish = collector.finish_times
    nranks = len(finish)
    makespan = max(finish)

    spans_by_rank: list[list] = [[] for _ in range(nranks)]
    for span in collector.spans:
        if span.duration > 0:
            spans_by_rank[span.rank].append(span)
    starts: list[list[float]] = []
    for spans in spans_by_rank:
        spans.sort(key=lambda s: s.t_start)
        starts.append([s.t_start for s in spans])

    incoming: list[list] = [[] for _ in range(nranks)]
    outgoing: list[list] = [[] for _ in range(nranks)]
    for edge in collector.edges:
        incoming[edge.dst].append(edge)
        if not edge.eager:
            outgoing[edge.src].append(edge)
    in_td: list[list[float]] = []
    out_td: list[list[float]] = []
    for edges in incoming:
        edges.sort(key=lambda e: e.t_delivered)
        in_td.append([e.t_delivered for e in edges])
    for edges in outgoing:
        edges.sort(key=lambda e: e.t_delivered)
        out_td.append([e.t_delivered for e in edges])

    def latest_edge(edges, tds, lo_t, hi_t):
        """Latest edge with ``lo_t < t_delivered <= hi_t``, or None."""
        hi = bisect_right(tds, hi_t) - 1
        if hi < 0 or tds[hi] <= lo_t:
            return None
        return edges[hi]

    # Start at the rank that finishes last (first such rank on ties).
    rank = max(range(nranks), key=lambda r: (finish[r], -r))
    t = makespan
    segments: list[PathSegment] = []
    max_steps = 4 * (len(collector.spans) + len(collector.edges)) + 16

    for _ in range(max_steps):
        if t <= 0.0:
            break
        idx = bisect_left(starts[rank], t) - 1
        if idx < 0:
            # Before the rank's first span: a start-of-run gap (only
            # reachable through zero-time jumps); attribute as compute.
            segments.append(PathSegment(rank, "compute", "compute", 0.0, t))
            t = 0.0
            break
        span = spans_by_rank[rank][idx]
        best = None  # (t_delivered, incoming?, edge, jump_rank, jump_t)
        if span.kind == MPI:
            e = latest_edge(incoming[rank], in_td[rank], span.t_start, t)
            if e is not None and e.t_sent < t:
                best = (e.t_delivered, True, e, e.src, e.t_sent)
            e = latest_edge(outgoing[rank], out_td[rank], span.t_start, t)
            if (
                e is not None
                and not math.isnan(e.t_recv_posted)
                and e.t_recv_posted < t
                and (best is None or e.t_delivered > best[0])
            ):
                best = (e.t_delivered, False, e, e.dst, e.t_recv_posted)
        if best is None:
            segments.append(
                PathSegment(rank, span.kind, span.name, span.t_start, t)
            )
            t = span.t_start
            continue
        td, _is_in, edge, jump_rank, jump_t = best
        if td < t:
            segments.append(PathSegment(rank, span.kind, span.name, td, t))
        if jump_t < td:
            segments.append(
                PathSegment(
                    edge.src, MESSAGE, f"{edge.src}->{edge.dst}", jump_t, td
                )
            )
        rank, t = jump_rank, jump_t
    else:
        raise TraceError(
            "critical-path walk did not converge "
            f"(t={t}, rank={rank}, {len(segments)} segments)"
        )

    segments.reverse()
    return CriticalPath(segments=tuple(segments), makespan=makespan)
