"""Prediction-error decomposition: *why* was the skeleton wrong?

The paper's predictor multiplies the skeleton's probed time under a
scenario by the measured dedicated-time ratio ``K``. When the
prediction misses, the error must come from execution phases whose
time does **not** scale by ``K`` between skeleton and application.
:func:`explain_divergence` runs both programs under the same scenario
with a :class:`~repro.diagnose.collector.DiagnosisCollector`, takes
the makespan rank's time-resolved breakdown on each side, and assigns
each category's scaling residual ``K·skeleton − app`` to a named
contribution:

======================  ================================================
contribution            category whose residual it is
======================  ================================================
``contention_skew``     compute (CPU contention hit the two runs
                        differently than ``K`` assumes)
``p2p_wait_skew``       blocked wait (late-sender + late-receiver)
``unscaled_latency``    eager transfer — per-message latency and copy
                        costs, the paper's known unscalable error source
``protocol_switch``     rendezvous transfer — message-size scaling moved
                        traffic across the eager/rendezvous boundary
``collective_imbalance``  collective time (incl. imbalance waits)
======================  ================================================

Because each side's categories sum exactly to its elapsed time, the
contributions sum to the total signed prediction error
``predicted − actual`` — the decomposition is complete, not a sample.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.contention import DEDICATED, Scenario
from repro.errors import ReproError
from repro.predict.metrics import prediction_error_percent
from repro.sim.program import Program, run_program
from repro.util.rng import derive_seed

from repro.diagnose.collector import DiagnosisCollector
from repro.diagnose.critical_path import extract_critical_path

__all__ = [
    "CONTRIBUTIONS",
    "DivergenceReport",
    "diagnose_run",
    "explain_divergence",
]

#: Contribution name -> the breakdown leaves it aggregates.
CONTRIBUTIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("contention_skew", ("compute",)),
    ("p2p_wait_skew", ("wait_late_sender", "wait_late_receiver")),
    ("unscaled_latency", ("transfer_eager",)),
    ("protocol_switch", ("transfer_rendezvous",)),
    ("collective_imbalance", ("collective",)),
)


def diagnose_run(
    program: Program,
    cluster,
    scenario: Scenario = DEDICATED,
    *,
    seed: int = 0,
    placement=None,
    sample_period: float = 0.0,
):
    """Run ``program`` with a :class:`DiagnosisCollector` attached;
    return ``(collector, RunResult)``."""
    collector = DiagnosisCollector(
        program_name=program.name,
        scenario_name=scenario.name,
        sample_period=sample_period,
    )
    result = run_program(
        program, cluster, scenario, hook=collector,
        placement=placement, seed=seed,
    )
    return collector, result


def _makespan_leaves(collector: DiagnosisCollector) -> dict[str, float]:
    """Leaf categories of the rank that determines the makespan."""
    finish = collector.finish_times
    rank = max(range(len(finish)), key=lambda r: (finish[r], -r))
    return dict(collector.detailed_breakdown()[rank])


@dataclass
class DivergenceReport:
    """One explained prediction for one (app, skeleton, scenario)."""

    app_name: str
    skeleton_name: str
    scenario_name: str
    ratio: float
    probe_seconds: float
    predicted_seconds: float
    actual_seconds: float
    #: Signed error (``predicted - actual``); contributions sum to it.
    error_seconds: float
    #: The paper's metric: ``|predicted - actual| / actual × 100``.
    error_percent: float
    #: Named contributions, in :data:`CONTRIBUTIONS` order.
    contributions: dict = field(default_factory=dict)
    #: Makespan-rank leaf breakdowns (app as measured; skeleton raw,
    #: i.e. *before* scaling by ``ratio``).
    app_phases: dict = field(default_factory=dict)
    skeleton_phases: dict = field(default_factory=dict)
    #: Cross-rank wait-state totals of the app run.
    app_wait_states: dict = field(default_factory=dict)
    #: Critical-path summary of the app run (None when skipped).
    app_critical_path: Optional[dict] = None

    def dominant_contribution(self) -> str:
        """The contribution with the largest magnitude."""
        return max(
            self.contributions.items(), key=lambda kv: (abs(kv[1]), kv[0])
        )[0]

    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "skeleton": self.skeleton_name,
            "scenario": self.scenario_name,
            "ratio": self.ratio,
            "probe_seconds": self.probe_seconds,
            "predicted_seconds": self.predicted_seconds,
            "actual_seconds": self.actual_seconds,
            "error_seconds": self.error_seconds,
            "error_percent": self.error_percent,
            "contributions": self.contributions,
            "app_phases": self.app_phases,
            "skeleton_phases": self.skeleton_phases,
            "app_wait_states": self.app_wait_states,
            "app_critical_path": self.app_critical_path,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @staticmethod
    def from_dict(obj: dict) -> "DivergenceReport":
        return DivergenceReport(
            app_name=obj["app"],
            skeleton_name=obj["skeleton"],
            scenario_name=obj["scenario"],
            ratio=obj["ratio"],
            probe_seconds=obj["probe_seconds"],
            predicted_seconds=obj["predicted_seconds"],
            actual_seconds=obj["actual_seconds"],
            error_seconds=obj["error_seconds"],
            error_percent=obj["error_percent"],
            contributions=obj["contributions"],
            app_phases=obj["app_phases"],
            skeleton_phases=obj["skeleton_phases"],
            app_wait_states=obj.get("app_wait_states", {}),
            app_critical_path=obj.get("app_critical_path"),
        )

    def render(self) -> str:
        """Terminal table: the error and its named contributions."""
        from repro.util.tables import render_table

        rows = []
        for name, _leaves in CONTRIBUTIONS:
            seconds = self.contributions.get(name, 0.0)
            share = (
                100.0 * seconds / self.error_seconds
                if self.error_seconds else 0.0
            )
            rows.append([name, f"{seconds:+.4f}", f"{share:.0f}%"])
        rows.append(["total", f"{self.error_seconds:+.4f}", "100%"])
        table = render_table(
            f"{self.app_name} vs {self.skeleton_name} "
            f"under {self.scenario_name}",
            ["contribution", "seconds", "share"],
            rows,
        )
        head = (
            f"predicted {self.predicted_seconds:.4f}s  "
            f"actual {self.actual_seconds:.4f}s  "
            f"error {self.error_percent:.1f}%  "
            f"(ratio K={self.ratio:.2f}, probe {self.probe_seconds:.4f}s)"
        )
        return f"{head}\n{table}"


def explain_divergence(
    app_program: Program,
    skeleton_program: Program,
    cluster,
    scenario: Scenario,
    *,
    app_dedicated_seconds: Optional[float] = None,
    skeleton_dedicated_seconds: Optional[float] = None,
    app_seed: int = 0,
    probe_seed: Optional[int] = None,
    placement=None,
    include_critical_path: bool = True,
) -> DivergenceReport:
    """Run app and skeleton under ``scenario`` and decompose the
    prediction error into named contributions.

    The dedicated times (for the scaling ratio ``K``) are measured
    when not supplied. ``app_seed`` picks the environment sample the
    application experiences; ``probe_seed`` defaults to the
    predictor's convention ``derive_seed(app_seed, "probe", scenario)``
    so the probe never sees the app's exact contention timeline.
    """
    if app_dedicated_seconds is None:
        app_dedicated_seconds = run_program(
            app_program, cluster, DEDICATED, placement=placement
        ).elapsed
    if skeleton_dedicated_seconds is None:
        skeleton_dedicated_seconds = run_program(
            skeleton_program, cluster, DEDICATED, placement=placement
        ).elapsed
    if app_dedicated_seconds <= 0 or skeleton_dedicated_seconds <= 0:
        raise ReproError("dedicated times must be positive")
    ratio = app_dedicated_seconds / skeleton_dedicated_seconds
    if probe_seed is None:
        probe_seed = derive_seed(app_seed, "probe", scenario.name)

    app_col, app_res = diagnose_run(
        app_program, cluster, scenario, seed=app_seed, placement=placement
    )
    skel_col, skel_res = diagnose_run(
        skeleton_program, cluster, scenario,
        seed=probe_seed, placement=placement,
    )

    app_leaves = _makespan_leaves(app_col)
    skel_leaves = _makespan_leaves(skel_col)
    contributions = {
        name: sum(
            ratio * skel_leaves[leaf] - app_leaves[leaf] for leaf in leaves
        )
        for name, leaves in CONTRIBUTIONS
    }

    predicted = ratio * skel_res.elapsed
    actual = app_res.elapsed
    critical = (
        extract_critical_path(app_col).to_dict()
        if include_critical_path
        else None
    )
    return DivergenceReport(
        app_name=app_program.name,
        skeleton_name=skeleton_program.name,
        scenario_name=scenario.name,
        ratio=ratio,
        probe_seconds=skel_res.elapsed,
        predicted_seconds=predicted,
        actual_seconds=actual,
        error_seconds=predicted - actual,
        error_percent=prediction_error_percent(predicted, actual),
        contributions=contributions,
        app_phases=app_leaves,
        skeleton_phases=skel_leaves,
        app_wait_states=app_col.wait_state_totals(),
        app_critical_path=critical,
    )
