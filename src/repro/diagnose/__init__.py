"""Time-resolved diagnosis of simulated runs and their predictions.

Three layers on top of the observability stack (PR 1):

* :mod:`repro.diagnose.collector` — a streaming
  :class:`DiagnosisCollector` engine hook: per-rank time-resolved
  breakdown (compute / wait / transfer / collective) with
  Scalasca-style wait-state classification (late-sender,
  late-receiver, collective-imbalance wait). The per-rank category
  sums reconcile exactly with ``RunResult`` finish times.
* :mod:`repro.diagnose.critical_path` — critical-path extraction over
  the engine's dependency DAG; the path tiles ``[0, makespan]`` so its
  length equals the makespan.
* :mod:`repro.diagnose.explain` — a divergence explainer that runs
  app and skeleton under the same scenario and decomposes the
  prediction error into named contributions (unscaled latency,
  collective imbalance, protocol switch, contention skew); campaign
  integration lives in :mod:`repro.diagnose.campaign`.

CLI: ``repro-skeleton diagnose`` and ``repro-skeleton experiment
--diagnose``. See ``docs/OBSERVABILITY.md`` ("Diagnosis").
"""

from repro.diagnose.collector import (
    COLLECTIVE_CALLS,
    COLLECTIVE_WAIT,
    DependencyEdge,
    DiagnosisCollector,
    LATE_RECEIVER,
    LATE_SENDER,
    WaitSpan,
)
from repro.diagnose.critical_path import (
    CriticalPath,
    PathSegment,
    extract_critical_path,
)
from repro.diagnose.explain import (
    CONTRIBUTIONS,
    DivergenceReport,
    diagnose_run,
    explain_divergence,
)
from repro.diagnose.campaign import (
    campaign_divergence,
    render_campaign_divergence,
)

__all__ = [
    "COLLECTIVE_CALLS",
    "COLLECTIVE_WAIT",
    "CONTRIBUTIONS",
    "CriticalPath",
    "DependencyEdge",
    "DiagnosisCollector",
    "DivergenceReport",
    "LATE_RECEIVER",
    "LATE_SENDER",
    "PathSegment",
    "WaitSpan",
    "campaign_divergence",
    "diagnose_run",
    "explain_divergence",
    "extract_critical_path",
    "render_campaign_divergence",
]
