"""Skeleton-based execution-time prediction (paper §4.2).

"For each application, the execution time was predicted for each
resource sharing scenario and each skeleton as the product of the
skeleton execution time and the corresponding measured scaling ratio.
The measured scaling ratio is similar to the scaling factor except
that actual skeleton execution time on a dedicated testbed is used."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.contention import DEDICATED, Scenario
from repro.cluster.topology import Cluster
from repro.errors import ReproError
from repro.sim.program import Program, run_program


class SkeletonPredictor:
    """Predicts an application's time under sharing from its skeleton.

    Construction measures the skeleton on the dedicated testbed to
    establish the measured scaling ratio; :meth:`predict` then runs the
    skeleton under a sharing scenario (the cheap probe) and multiplies.
    """

    def __init__(
        self,
        skeleton: Program,
        app_dedicated_seconds: float,
        cluster: Cluster,
        placement: Optional[Sequence[int]] = None,
        method: str = "skeleton",
        seed: int = 0,
    ):
        if app_dedicated_seconds <= 0:
            raise ReproError("application dedicated time must be positive")
        self.skeleton = skeleton
        self.cluster = cluster
        self.placement = placement
        self.method = method
        self.seed = seed
        self.app_dedicated_seconds = app_dedicated_seconds
        result = run_program(
            skeleton, cluster, DEDICATED, placement=placement, seed=seed
        )
        self.skeleton_dedicated_seconds = result.elapsed
        if self.skeleton_dedicated_seconds <= 0:
            raise ReproError("skeleton executed in zero time")
        #: The measured scaling ratio.
        self.ratio = app_dedicated_seconds / self.skeleton_dedicated_seconds

    def probe(self, scenario: Scenario, seed: Optional[int] = None) -> float:
        """Run the skeleton under ``scenario``; return its elapsed time.

        ``seed`` selects the environment sample the probe observes; by
        default it derives from the predictor's seed and the scenario,
        so the probe never sees the very same contention timeline the
        application will (just as a real probe run would not).
        """
        from repro.util.rng import derive_seed

        if seed is None:
            seed = derive_seed(self.seed, "probe", scenario.name)
        result = run_program(
            self.skeleton, self.cluster, scenario,
            placement=self.placement, seed=seed,
        )
        return result.elapsed

    def predict(self, scenario: Scenario, seed: Optional[int] = None):
        """Predict the application's execution time under ``scenario``."""
        from repro.predict.metrics import Prediction

        probe_seconds = self.probe(scenario, seed=seed)
        return Prediction(
            program_name=self.skeleton.name,
            scenario_name=scenario.name,
            method=self.method,
            predicted_seconds=probe_seconds * self.ratio,
            probe_seconds=probe_seconds,
            scaling_ratio=self.ratio,
        )
