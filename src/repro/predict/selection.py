"""Skeleton-driven resource selection — the paper's motivating use
case (§1): "a group of candidate node sets is identified for execution
... and the final choice is made by comparing the execution time of
the application skeleton on each node set."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.contention import Scenario
from repro.cluster.topology import Cluster
from repro.errors import ReproError
from repro.sim.program import Program, run_program


@dataclass(frozen=True)
class CandidateResult:
    """Skeleton timing on one candidate placement."""

    label: str
    placement: tuple[int, ...]
    skeleton_seconds: float


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a skeleton-based node selection."""

    best: CandidateResult
    ranking: tuple[CandidateResult, ...]


def select_nodes(
    skeleton: Program,
    cluster: Cluster,
    candidates: Sequence[Sequence[int]],
    scenario: Optional[Scenario] = None,
    labels: Optional[Sequence[str]] = None,
) -> SelectionResult:
    """Time the skeleton on each candidate placement; pick the fastest.

    ``candidates`` are rank→node placements (each of the skeleton's
    rank count). ``scenario`` is the cluster's current sharing state —
    the point of the method is that the skeleton *feels* that state
    without any resource-monitoring infrastructure.
    """
    from repro.cluster.contention import DEDICATED

    if not candidates:
        raise ReproError("no candidate placements")
    scenario = scenario or DEDICATED
    results = []
    for i, placement in enumerate(candidates):
        label = labels[i] if labels else f"candidate-{i}"
        run = run_program(
            skeleton, cluster, scenario, placement=list(placement)
        )
        results.append(
            CandidateResult(
                label=label,
                placement=tuple(placement),
                skeleton_seconds=run.elapsed,
            )
        )
    ranking = tuple(sorted(results, key=lambda r: r.skeleton_seconds))
    return SelectionResult(best=ranking[0], ranking=ranking)
