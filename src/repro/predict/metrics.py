"""Prediction records and error metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.stats import percent_error


@dataclass(frozen=True)
class Prediction:
    """One execution-time prediction for one scenario."""

    program_name: str
    scenario_name: str
    method: str              # "skeleton[10s]" / "class-s" / "average"
    predicted_seconds: float
    probe_seconds: float     # what the probe (skeleton) measured
    scaling_ratio: float     # measured ratio applied to the probe time

    def error_percent(self, actual_seconds: float) -> float:
        """Percent error against a measured application time."""
        return prediction_error_percent(self.predicted_seconds, actual_seconds)


def prediction_error_percent(predicted: float, actual: float) -> float:
    """The paper's error metric: |predicted - actual| / actual × 100."""
    return percent_error(predicted, actual)
