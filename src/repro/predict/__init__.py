"""Skeleton-based performance prediction and the paper's comparison
baselines (sections 4.2, 4.5)."""

from repro.predict.metrics import Prediction, prediction_error_percent
from repro.predict.online import (
    compute_prediction,
    is_warm,
    normalize_request,
    request_key,
)
from repro.predict.predictor import SkeletonPredictor
from repro.predict.baselines import average_prediction_errors, ClassSPredictor
from repro.predict.selection import select_nodes
from repro.predict.validation import (
    ValidationCell,
    ValidationReport,
    validate_skeletons,
)

__all__ = [
    "Prediction",
    "prediction_error_percent",
    "SkeletonPredictor",
    "average_prediction_errors",
    "ClassSPredictor",
    "compute_prediction",
    "is_warm",
    "normalize_request",
    "request_key",
    "select_nodes",
    "ValidationCell",
    "ValidationReport",
    "validate_skeletons",
]
