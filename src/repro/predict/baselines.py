"""The paper's §4.5 comparison baselines.

*Average Prediction*: the mean slowdown of the whole benchmark suite
under a scenario predicts every program's time in that scenario — the
strawman that works only if all programs degrade alike (they do not,
which is the paper's argument for application-specific skeletons).

*Class S Prediction*: the Class S (tiny-input) version of a benchmark
is used as a hand-made skeleton for its Class B version — the strawman
showing that running an application on a very small input does not
reproduce its execution behaviour at realistic scale.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.cluster.contention import Scenario
from repro.cluster.topology import Cluster
from repro.errors import ReproError
from repro.predict.metrics import Prediction, prediction_error_percent
from repro.predict.predictor import SkeletonPredictor
from repro.sim.program import Program


def average_prediction_errors(
    dedicated: Mapping[str, float],
    under_scenario: Mapping[str, float],
) -> dict[str, float]:
    """Percent errors of Average Prediction for one scenario.

    ``dedicated[b]`` / ``under_scenario[b]`` are measured times of each
    suite program. The suite-mean slowdown predicts each program as
    ``dedicated[b] * mean_slowdown``; returns per-program percent
    errors.
    """
    if set(dedicated) != set(under_scenario):
        raise ReproError("dedicated/scenario program sets differ")
    if not dedicated:
        raise ReproError("empty suite")
    slowdowns = {
        name: under_scenario[name] / dedicated[name] for name in dedicated
    }
    mean_slowdown = sum(slowdowns.values()) / len(slowdowns)
    return {
        name: prediction_error_percent(
            dedicated[name] * mean_slowdown, under_scenario[name]
        )
        for name in dedicated
    }


class ClassSPredictor(SkeletonPredictor):
    """Class S benchmark used as the performance skeleton.

    Identical prediction mechanics to :class:`SkeletonPredictor` — the
    Class S program plays the skeleton role, the measured scaling ratio
    is Class B dedicated time over Class S dedicated time.
    """

    def __init__(
        self,
        class_s_program: Program,
        app_dedicated_seconds: float,
        cluster: Cluster,
        placement: Optional[Sequence[int]] = None,
    ):
        super().__init__(
            skeleton=class_s_program,
            app_dedicated_seconds=app_dedicated_seconds,
            cluster=cluster,
            placement=placement,
            method="class-s",
        )
