"""One-shot, store-backed skeleton prediction (the serving hot path).

The paper's end product is the prediction ``T_app(scenario) ≈
T_skel(scenario) × R``. This module packages that computation as a
single pure function over a *normalized request* — workload identity,
skeleton target, scenario name, environment seed — memoized stage by
stage through a :class:`~repro.store.memo.PipelineCache`:

* the traced dedicated run, the signature/skeleton pair, the
  skeleton's dedicated run, and the scenario probe each hit the
  content-addressed store when warm, so a fully warm request touches
  no simulation at all;
* every float is produced by exactly the operations
  :class:`~repro.predict.predictor.SkeletonPredictor` performs, so the
  payload is **byte-identical** (canonical JSON) whether computed by
  the offline ``repro-skeleton predict`` CLI, a serve worker process,
  or the online service (``tests/test_serve.py`` pins this).

Both the CLI (``predict --json``) and :mod:`repro.serve` call
:func:`compute_prediction`; neither keeps a private prediction path.
"""

from __future__ import annotations

import warnings
from typing import Mapping, MutableMapping, Optional

from repro.cluster.contention import DEDICATED
from repro.cluster.scenarios import resolve_scenario
from repro.cluster.topology import Cluster
from repro.core.construct import build_skeleton
from repro.errors import ServeError, SkeletonQualityWarning
from repro.obs.tracing import get_tracer
from repro.sim.program import run_program
from repro.store.memo import (
    PipelineCache,
    skeleton_program_params,
    workload_params,
)
from repro.store.store import canonical_json, content_digest
from repro.trace.tracer import trace_program
from repro.util.rng import derive_seed
from repro.workloads import available_benchmarks, get_program

__all__ = [
    "compute_prediction",
    "is_warm",
    "normalize_request",
    "request_key",
]


def normalize_request(
    bench: str,
    klass: str = "S",
    nprocs: int = 4,
    workload_seed: int = 12345,
    target: float = 5.0,
    scenario: str = "cpu-one-node",
    env_seed: int = 0,
) -> dict:
    """Validate and canonicalize one prediction request.

    The returned dict is the request's *identity*: two requests with
    equal normalized forms coalesce into one computation in the
    service (:func:`request_key` hashes this dict).
    """
    if bench not in available_benchmarks():
        raise ServeError(
            f"unknown benchmark {bench!r}; "
            f"choose from {list(available_benchmarks())}"
        )
    if nprocs < 1:
        raise ServeError("nprocs must be >= 1")
    target = float(target)
    if not target > 0:
        raise ServeError("target must be > 0 seconds")
    # Resolve eagerly so an unknown scenario fails at admission, not
    # in a worker; only the *name* participates in request identity.
    resolve_scenario(str(scenario))
    return {
        "bench": str(bench),
        "klass": str(klass),
        "nprocs": int(nprocs),
        "workload_seed": int(workload_seed),
        "target": target,
        "scenario": str(scenario),
        "env_seed": int(env_seed),
    }


def request_key(params: Mapping) -> str:
    """Digest identifying one normalized request (single-flight key)."""
    return content_digest(canonical_json(dict(params)))


def is_warm(params: Mapping, cache: PipelineCache) -> bool:
    """Whether every artifact a request needs is already in the store.

    Warm requests are answered inline from the
    :class:`PipelineCache` (no simulation, no worker dispatch); cold
    ones go to the service's worker pool. Presence checks only — the
    read path still integrity-verifies, so a corrupt artifact simply
    turns the request cold at compute time.
    """
    bench, klass = params["bench"], params["klass"]
    nprocs, wl_seed = int(params["nprocs"]), int(params["workload_seed"])
    target = float(params["target"])
    env_seed = int(params["env_seed"])
    scenario = resolve_scenario(str(params["scenario"]))
    app_params = workload_params(bench, klass, nprocs, wl_seed)
    trace_key = cache.trace_key(app_params)
    trace_digest = trace_key.digest
    skel_params = skeleton_program_params(
        cache.skeleton_key(trace_digest, target).digest
    )
    probe_seed = derive_seed(env_seed, "probe", scenario.name)
    keys = (
        trace_key,
        cache.skeleton_key(trace_digest, target),
        cache.signature_key(trace_digest, target),
        cache.run_key(skel_params, DEDICATED, env_seed),
        cache.run_key(skel_params, scenario, probe_seed),
    )
    return all(cache.store.contains(k) for k in keys)


def compute_prediction(
    params: Mapping,
    cache: PipelineCache,
    cluster: Cluster,
    bundle_cache: Optional[MutableMapping] = None,
) -> dict:
    """Compute (or reconstruct from the store) one prediction payload.

    ``params`` is a :func:`normalize_request` dict. ``bundle_cache``,
    when given, is a mapping (typically the registry's LRU) consulted
    by skeleton digest before deserialising the signature from the
    store — the in-memory fast path for repeat aliases.

    The float arithmetic mirrors
    :class:`~repro.predict.predictor.SkeletonPredictor` exactly:
    ``ratio = T_app_ded / T_skel_ded`` then ``predicted = probe ×
    ratio``, with the probe seed derived as ``derive_seed(env_seed,
    "probe", scenario.name)``.

    With tracing enabled the computation runs under an ambient
    ``predict.compute`` span with one child span per pipeline stage
    (``predict.traced_run`` / ``predict.skeleton`` /
    ``predict.skel_dedicated`` / ``predict.probe``) — visible in
    ``slowz``, ``call --trace``, and flight-recorder dumps. The spans
    never touch the payload: bytes stay identical with tracing on.
    """
    with get_tracer().span(
        "predict.compute",
        component="predict",
        attrs={
            "bench": str(params.get("bench", "?")),
            "scenario": str(params.get("scenario", "?")),
        },
    ):
        return _compute_payload(params, cache, cluster, bundle_cache)


def _compute_payload(
    params: Mapping,
    cache: PipelineCache,
    cluster: Cluster,
    bundle_cache: Optional[MutableMapping] = None,
) -> dict:
    tracer = get_tracer()
    bench = params["bench"]
    klass = params["klass"]
    nprocs = int(params["nprocs"])
    wl_seed = int(params["workload_seed"])
    target = float(params["target"])
    env_seed = int(params["env_seed"])
    scenario = resolve_scenario(str(params["scenario"]))

    app_params = workload_params(bench, klass, nprocs, wl_seed)
    trace_digest = cache.trace_key(app_params).digest
    skel_digest = cache.skeleton_key(trace_digest, target).digest

    # The trace blob is large (one record per traced event) but only
    # skeleton *construction* consumes it; a warm request needs just
    # the dedicated RunResult from the envelope. Deserialize lazily so
    # the hot path never pays for records it will not read.
    traced: dict = {}

    def _traced_run():
        if not traced:
            with tracer.span("predict.traced_run", component="predict"):
                program = get_program(bench, klass, nprocs, wl_seed)
                traced["trace"], traced["dedicated"] = cache.traced_run(
                    app_params, lambda: trace_program(program, cluster)
                )
        return traced["trace"], traced["dedicated"]

    dedicated = cache.traced_run_result(app_params)
    if dedicated is None:
        _, dedicated = _traced_run()

    bundle = None
    if bundle_cache is not None:
        bundle = bundle_cache.get(skel_digest)
    if bundle is None:
        def _build():
            trace, _ = _traced_run()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", SkeletonQualityWarning)
                return build_skeleton(trace, target_seconds=target)

        with tracer.span("predict.skeleton", component="predict"):
            bundle = cache.skeleton(trace_digest, target, _build)
        if bundle_cache is not None:
            bundle_cache[skel_digest] = bundle

    skel_params = skeleton_program_params(skel_digest)
    with tracer.span("predict.skel_dedicated", component="predict"):
        skel_ded = cache.simulated_run(
            skel_params, DEDICATED, env_seed,
            lambda: run_program(
                bundle.program, cluster, DEDICATED, seed=env_seed
            ),
        )
    if skel_ded.elapsed <= 0:
        raise ServeError("skeleton executed in zero time")
    ratio = dedicated.elapsed / skel_ded.elapsed
    probe_seed = derive_seed(env_seed, "probe", scenario.name)
    with tracer.span("predict.probe", component="predict"):
        probe = cache.simulated_run(
            skel_params, scenario, probe_seed,
            lambda: run_program(
                bundle.program, cluster, scenario, seed=probe_seed
            ),
        )
    return {
        "workload": {
            "bench": bench,
            "klass": klass,
            "nprocs": nprocs,
            "seed": wl_seed,
        },
        "scenario": scenario.name,
        "target": target,
        "env_seed": env_seed,
        "app_dedicated_seconds": dedicated.elapsed,
        "skeleton_dedicated_seconds": skel_ded.elapsed,
        "scaling_ratio": ratio,
        "probe_seconds": probe.elapsed,
        "predicted_seconds": probe.elapsed * ratio,
        "K": bundle.K,
        "threshold": bundle.signature.threshold,
        "compression_ratio": bundle.signature.compression_ratio,
        "min_good_seconds": bundle.goodness.min_good_seconds,
        "flagged": bundle.flagged,
        "trace_digest": trace_digest,
        "skeleton_digest": skel_digest,
    }
