"""One-call skeleton validation for adopters.

`ExperimentRunner` reproduces the paper's campaign; this module is the
lightweight user-facing equivalent: given *your* program, validate how
well its skeletons predict across scenarios and sizes, and get a
rendered report. This is what a downstream user runs before trusting a
skeleton in production scheduling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.contention import Scenario
from repro.cluster.scenarios import paper_scenarios
from repro.cluster.topology import Cluster
from repro.core.construct import build_skeleton
from repro.errors import ReproError, SkeletonQualityWarning
from repro.predict.predictor import SkeletonPredictor
from repro.sim.program import Program, run_program
from repro.trace.tracer import trace_program
from repro.util.rng import derive_seed
from repro.util.tables import Table


@dataclass(frozen=True)
class ValidationCell:
    """One (skeleton size × scenario) validation measurement."""

    target_seconds: float
    scenario_name: str
    predicted_seconds: float
    actual_seconds: float
    error_percent: float
    flagged: bool


@dataclass
class ValidationReport:
    """All cells of a skeleton validation plus summary accessors."""

    program_name: str
    app_dedicated_seconds: float
    cells: list[ValidationCell] = field(default_factory=list)

    def average_error(self) -> float:
        if not self.cells:
            raise ReproError("empty validation report")
        return sum(c.error_percent for c in self.cells) / len(self.cells)

    def worst(self) -> ValidationCell:
        return max(self.cells, key=lambda c: c.error_percent)

    def by_target(self, target_seconds: float) -> list[ValidationCell]:
        return [c for c in self.cells if c.target_seconds == target_seconds]

    def render(self) -> str:
        targets = sorted({c.target_seconds for c in self.cells}, reverse=True)
        scenarios = list(dict.fromkeys(c.scenario_name for c in self.cells))
        table = Table(
            title=f"Skeleton validation — {self.program_name} "
            f"(dedicated {self.app_dedicated_seconds:.2f}s)",
            columns=["scenario"] + [f"{t:g}s err%" for t in targets],
        )
        lookup = {
            (c.scenario_name, c.target_seconds): c for c in self.cells
        }
        for scen in scenarios:
            row = [scen]
            for t in targets:
                cell = lookup[(scen, t)]
                mark = "*" if cell.flagged else ""
                row.append(f"{cell.error_percent:.1f}{mark}")
            table.add_row(*row)
        note = "(* = below the estimated shortest good skeleton)"
        return table.render() + "\n" + note


def validate_skeletons(
    program: Program,
    cluster: Cluster,
    targets: Sequence[float] = (5.0, 1.0),
    scenarios: Optional[Sequence[Scenario]] = None,
    seed: int = 0,
) -> ValidationReport:
    """Build skeletons of each target size and score their predictions
    against real runs under each scenario."""
    if not targets:
        raise ReproError("no skeleton targets given")
    if scenarios is None:
        scenarios = paper_scenarios(cluster.nnodes)

    trace, dedicated = trace_program(program, cluster)
    report = ValidationReport(
        program_name=program.name,
        app_dedicated_seconds=dedicated.elapsed,
    )
    actuals = {
        scen.name: run_program(
            program, cluster, scen, seed=derive_seed(seed, "actual", scen.name)
        ).elapsed
        for scen in scenarios
    }
    for target in targets:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SkeletonQualityWarning)
            bundle = build_skeleton(trace, target_seconds=target)
        predictor = SkeletonPredictor(
            bundle.program, dedicated.elapsed, cluster, seed=seed
        )
        for scen in scenarios:
            prediction = predictor.predict(scen)
            actual = actuals[scen.name]
            report.cells.append(
                ValidationCell(
                    target_seconds=target,
                    scenario_name=scen.name,
                    predicted_seconds=prediction.predicted_seconds,
                    actual_seconds=actual,
                    error_percent=prediction.error_percent(actual),
                    flagged=bundle.flagged,
                )
            )
    return report
