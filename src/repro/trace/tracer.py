"""The tracing engine hook and the one-call trace helper."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.contention import DEDICATED, Scenario
from repro.cluster.topology import Cluster
from repro.errors import TraceError
from repro.sim.engine import Engine, EngineHook, RunResult, SimConfig
from repro.sim.program import Program
from repro.trace.records import Trace, TraceRecord
from repro.util.timebase import quantize_us


class Tracer(EngineHook):
    """Collects per-rank :class:`TraceRecord` streams during a run.

    Timestamps are quantised to microseconds, mirroring the
    ``gettimeofday`` resolution of the paper's profiling library.
    """

    def __init__(self, program_name: str = "", scenario_name: str = ""):
        self.program_name = program_name
        self.scenario_name = scenario_name
        self._records: list[list[TraceRecord]] = []
        self._trace: Optional[Trace] = None

    def on_run_start(self, nranks: int, t: float) -> None:
        self._records = [[] for _ in range(nranks)]
        self._trace = None

    def on_call(
        self, rank: int, name: str, params: dict, t_start: float, t_end: float
    ) -> None:
        self._records[rank].append(
            TraceRecord(
                call=name,
                params=dict(params),
                t_start=quantize_us(t_start),
                t_end=max(quantize_us(t_start), quantize_us(t_end)),
            )
        )

    def on_run_end(self, finish_times: Sequence[float]) -> None:
        self._trace = Trace(
            program_name=self.program_name,
            scenario_name=self.scenario_name,
            nranks=len(self._records),
            records=self._records,
            finish_times=[quantize_us(t) for t in finish_times],
        )

    @property
    def trace(self) -> Trace:
        if self._trace is None:
            raise TraceError("no completed run has been traced")
        return self._trace


def trace_program(
    program: Program,
    cluster: Cluster,
    scenario: Scenario = DEDICATED,
    placement: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> tuple[Trace, RunResult]:
    """Run ``program`` with tracing enabled; return (trace, run result).

    Trace collection adds zero simulated-time overhead, consistent with
    the paper's observation that trace generation costs well under 1%
    of execution time (validated by ``benchmarks/bench_trace_overhead``
    against an untraced run).
    """
    tracer = Tracer(program_name=program.name, scenario_name=scenario.name)
    engine = Engine(
        cluster,
        scenario=scenario,
        hook=tracer,
        config=SimConfig(placement=placement, seed=seed),
    )
    result = engine.run(program)
    return tracer.trace, result
