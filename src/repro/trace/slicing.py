"""Trace slicing utilities.

The paper (§2): "skeleton execution is very different from actually
executing the application for a short time. The skeleton should
capture the total execution of an application in a short time while
the beginning part of an application is typically not representative
of the entire application."

Slicing a trace to a time window makes that claim testable: a
"prefix probe" (the first τ seconds of the application) can be
compared head-to-head against a τ-second skeleton
(``benchmarks/bench_prefix_probe.py``).
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.trace.records import Trace, TraceRecord


def slice_time(trace: Trace, t_start: float, t_end: float) -> Trace:
    """Records whose call interval lies inside [t_start, t_end], with
    timestamps rebased to the window start.

    Calls straddling the window edge are clipped to it (their recorded
    duration shrinks accordingly), mirroring what a profiler attached
    for only that window would log.
    """
    if t_end <= t_start:
        raise TraceError("empty slice window")
    out = Trace(
        program_name=f"{trace.program_name}[{t_start:g}:{t_end:g}]",
        scenario_name=trace.scenario_name,
        nranks=trace.nranks,
        records=[[] for _ in range(trace.nranks)],
        finish_times=[
            max(0.0, min(t, t_end) - t_start) for t in trace.finish_times
        ],
    )
    for rank in range(trace.nranks):
        for rec in trace.records[rank]:
            if rec.t_end <= t_start or rec.t_start >= t_end:
                continue
            start = max(rec.t_start, t_start) - t_start
            end = min(rec.t_end, t_end) - t_start
            out.records[rank].append(
                TraceRecord(
                    call=rec.call,
                    params=dict(rec.params),
                    t_start=start,
                    t_end=end,
                )
            )
    return out


def slice_ranks(trace: Trace, ranks: list[int]) -> Trace:
    """A trace containing only the given ranks (renumbered densely).

    Peers referenced in call parameters are remapped where possible;
    records whose peer falls outside the kept set keep their original
    peer id (callers analysing sliced traces should treat those as
    external endpoints).
    """
    if not ranks:
        raise TraceError("must keep at least one rank")
    for r in ranks:
        if not 0 <= r < trace.nranks:
            raise TraceError(f"rank {r} out of range")
    mapping = {old: new for new, old in enumerate(ranks)}
    out = Trace(
        program_name=f"{trace.program_name}[ranks={ranks}]",
        scenario_name=trace.scenario_name,
        nranks=len(ranks),
        records=[[] for _ in ranks],
        finish_times=[trace.finish_times[r] for r in ranks]
        if trace.finish_times
        else [],
    )
    for old in ranks:
        for rec in trace.records[old]:
            params = dict(rec.params)
            if "peer" in params and params["peer"] in mapping:
                params["peer"] = mapping[params["peer"]]
            if "source" in params and params["source"] in mapping:
                params["source"] = mapping[params["source"]]
            out.records[mapping[old]].append(
                TraceRecord(
                    call=rec.call,
                    params=params,
                    t_start=rec.t_start,
                    t_end=rec.t_end,
                )
            )
    return out
