"""Trace similarity metrics.

Quantifies how alike two executions are at the communication-profile
level — used to validate that a skeleton's behaviour resembles its
application's beyond the Figure 2 time split (same call mix, similar
traffic distribution), and generally useful for regression-checking
workload models.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.errors import TraceError
from repro.trace.records import Trace


def _call_mix(trace: Trace) -> dict[str, float]:
    counts: Counter[str] = Counter()
    for recs in trace.records:
        for rec in recs:
            counts[rec.call] += 1
    total = sum(counts.values())
    if total == 0:
        raise TraceError("trace has no calls")
    return {call: n / total for call, n in counts.items()}


def call_mix_distance(a: Trace, b: Trace) -> float:
    """Total-variation distance between call-type distributions
    (0 = identical mix, 1 = disjoint)."""
    mix_a, mix_b = _call_mix(a), _call_mix(b)
    keys = set(mix_a) | set(mix_b)
    return 0.5 * sum(abs(mix_a.get(k, 0) - mix_b.get(k, 0)) for k in keys)


def _volume_profile(trace: Trace) -> dict[str, float]:
    volumes: Counter[str] = Counter()
    for recs in trace.records:
        for rec in recs:
            volumes[rec.call] += rec.nbytes
    total = sum(volumes.values())
    return (
        {call: v / total for call, v in volumes.items()} if total else {}
    )


def traffic_profile_distance(a: Trace, b: Trace) -> float:
    """Total-variation distance between per-call traffic-volume
    shares."""
    prof_a, prof_b = _volume_profile(a), _volume_profile(b)
    if not prof_a and not prof_b:
        return 0.0
    keys = set(prof_a) | set(prof_b)
    return 0.5 * sum(
        abs(prof_a.get(k, 0) - prof_b.get(k, 0)) for k in keys
    )


def activity_distance(a: Trace, b: Trace) -> float:
    """Absolute difference of the MPI-time fractions (the Figure 2
    quantity), in [0, 1]."""
    from repro.trace.analysis import activity_breakdown

    return abs(
        activity_breakdown(a).mpi_fraction
        - activity_breakdown(b).mpi_fraction
    )


def skeleton_similarity(app: Trace, skeleton: Trace) -> dict[str, float]:
    """Bundle of all similarity measures, as the validation report uses
    them. All values in [0, 1]; lower = more similar."""
    return {
        "call_mix": call_mix_distance(app, skeleton),
        "traffic_profile": traffic_profile_distance(app, skeleton),
        "activity": activity_distance(app, skeleton),
    }
