"""Execution tracing: the simulated equivalent of the paper's PMPI
profiling library (section 3.1).

Each MPI call is recorded per rank with its parameters and start/end
times at microsecond granularity; compute time is the gap between the
end of one call and the start of the next. No source modification is
needed — the tracer is an engine hook.
"""

from repro.trace.records import Trace, TraceRecord, validate_trace
from repro.trace.tracer import Tracer, trace_program
from repro.trace.io import (
    SalvageReport,
    read_trace,
    read_trace_salvage,
    write_trace,
)
from repro.trace.analysis import (
    ActivityBreakdown,
    activity_breakdown,
    imbalance_ratio,
    message_size_histogram,
    rank_breakdowns,
    trace_stats,
)
from repro.trace.similarity import (
    activity_distance,
    call_mix_distance,
    skeleton_similarity,
    traffic_profile_distance,
)

__all__ = [
    "Trace",
    "TraceRecord",
    "Tracer",
    "trace_program",
    "read_trace",
    "read_trace_salvage",
    "SalvageReport",
    "validate_trace",
    "write_trace",
    "ActivityBreakdown",
    "activity_breakdown",
    "imbalance_ratio",
    "message_size_histogram",
    "rank_breakdowns",
    "trace_stats",
    "activity_distance",
    "call_mix_distance",
    "skeleton_similarity",
    "traffic_profile_distance",
]
